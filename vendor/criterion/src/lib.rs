//! Offline stand-in for the subset of `criterion` the workspace uses.
//!
//! Keeps `cargo bench` working without network access: each benchmark
//! runs its routine `sample_size` times around a short warm-up and prints
//! mean/min/max wall-clock times. No statistical analysis, plots, or
//! baseline storage — the numbers are indicative, the harness contract
//! (`criterion_group!` / `criterion_main!`, `bench_function`,
//! `benchmark_group`, `bench_with_input`) is the part that matters.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// A benchmark identifier, e.g. a parameterized size.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering as the parameter itself.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id `function_name/parameter`.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives timing for one benchmark routine.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample after a warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.timings = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }
}

fn report(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().unwrap();
    let max = timings.iter().max().unwrap();
    println!(
        "{label:<48} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        timings.len()
    );
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    report(label, &bencher.timings);
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Criterion {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<I: Display>(&mut self, id: I, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, f);
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: Display, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        f: impl FnOnce(&mut Bencher, &T),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("probe", |b| {
                b.iter(|| calls += 1);
            });
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, n| {
            b.iter(|| n * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
