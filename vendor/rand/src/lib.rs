//! Offline stand-in for the subset of `rand` 0.8 the workspace uses.
//!
//! Backed by SplitMix64 — statistically fine for synthetic scenes and
//! tests, deterministic per seed, and dependency-free. The API mirrors
//! `rand::{Rng, SeedableRng}` and `rand::rngs::StdRng` closely enough that
//! swapping the real crate back in is a one-line manifest change.

use std::ops::Range;

/// Types that can be sampled uniformly from a [`Range`].
pub trait SampleUniform: Sized {
    /// Draws a value in `range` from `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                // 53 bits of mantissa are plenty for both f32 and f64.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                range.start + (unit as $t) * (range.end - range.start)
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

/// The random-number-generator interface.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// A bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic SplitMix64 generator standing in for `rand`'s StdRng.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&f));
            let u = rng.gen_range(3u32..9);
            assert!((3..9).contains(&u));
            let i = rng.gen_range(-4i32..-1);
            assert!((-4..-1).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<f64> = (0..512).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(draws.iter().any(|&v| v < 0.25));
        assert!(draws.iter().any(|&v| v > 0.75));
    }
}
