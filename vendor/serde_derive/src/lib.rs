//! Offline stand-in for `serde_derive`.
//!
//! The reproduction's container has no access to crates.io, and nothing in
//! the workspace performs generic serde serialization (the one JSON
//! consumer, `presp-soc::config`, uses a hand-rolled parser). The derive
//! macros therefore expand to nothing: `#[derive(Serialize, Deserialize)]`
//! stays valid on every type without pulling in the real framework.
//! The `serde` helper attribute is registered so field annotations like
//! `#[serde(default)]` parse; they are ignored like the derive bodies.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
