//! Offline stand-in for `serde`.
//!
//! Provides the two names the workspace imports — `Serialize` and
//! `Deserialize` — in both the trait and derive-macro namespaces, so
//! `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` keep compiling without network
//! access. The derives expand to nothing; no crate in the workspace relies
//! on generic serde serialization (JSON handling in `presp-soc::config` is
//! hand-rolled).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
