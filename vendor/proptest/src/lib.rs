//! Offline stand-in for the subset of `proptest` the workspace uses.
//!
//! Implements the `proptest!` macro, `Strategy` (ranges, tuples,
//! `collection::vec`, `bool::ANY`, `prop_map`), the `prop_assert*` /
//! `prop_assume!` macros and a deterministic case runner. No shrinking:
//! a failing case reports its seed so it can be replayed, which is enough
//! for a CI property gate. Seeds are derived from the test name, so runs
//! are reproducible across machines and invocations.

use std::ops::Range;

/// Deterministic SplitMix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map: f,
        }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A half-open element-count range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The result of [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;
}

/// Runs one property: generates cases until `config.cases` pass, panicking
/// on the first failure with the seed that reproduces it.
pub fn run_proptest<F>(config: &ProptestConfig, test_path: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // FNV-1a over the test path keeps seeds stable across runs/machines.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 64;
    while passed < config.cases {
        let seed = base ^ (u64::from(passed) << 32) ^ rejected;
        let mut rng = TestRng::new(seed);
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_path}: too many rejected cases ({rejected}); weaken prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_path}: property failed after {passed} passing cases (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_proptest(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), prop_rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    outcome
                },
            );
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(pair < 19);
            let _ = flag;
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::run_proptest(&ProptestConfig::with_cases(8), "determinism_probe", |rng| {
                out.push((0u64..1000).generate(rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_seed() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
