/root/repo/target/debug/examples/wami_pipeline-def8d32a348c74db.d: examples/wami_pipeline.rs

/root/repo/target/debug/examples/wami_pipeline-def8d32a348c74db: examples/wami_pipeline.rs

examples/wami_pipeline.rs:
