/root/repo/target/debug/examples/wami_pipeline-98fecf840b411ec0.d: examples/wami_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libwami_pipeline-98fecf840b411ec0.rmeta: examples/wami_pipeline.rs Cargo.toml

examples/wami_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
