/root/repo/target/debug/examples/fault_injection-3a7197b68bc73fbf.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-3a7197b68bc73fbf.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
