/root/repo/target/debug/examples/flow_explorer-355db5c5a6a35d18.d: examples/flow_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libflow_explorer-355db5c5a6a35d18.rmeta: examples/flow_explorer.rs Cargo.toml

examples/flow_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
