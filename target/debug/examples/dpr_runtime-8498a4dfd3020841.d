/root/repo/target/debug/examples/dpr_runtime-8498a4dfd3020841.d: examples/dpr_runtime.rs

/root/repo/target/debug/examples/dpr_runtime-8498a4dfd3020841: examples/dpr_runtime.rs

examples/dpr_runtime.rs:
