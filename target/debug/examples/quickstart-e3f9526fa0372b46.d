/root/repo/target/debug/examples/quickstart-e3f9526fa0372b46.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e3f9526fa0372b46: examples/quickstart.rs

examples/quickstart.rs:
