/root/repo/target/debug/examples/fault_injection-5696d1713e6f73a1.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-5696d1713e6f73a1: examples/fault_injection.rs

examples/fault_injection.rs:
