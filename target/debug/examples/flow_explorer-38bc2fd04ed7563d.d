/root/repo/target/debug/examples/flow_explorer-38bc2fd04ed7563d.d: examples/flow_explorer.rs

/root/repo/target/debug/examples/flow_explorer-38bc2fd04ed7563d: examples/flow_explorer.rs

examples/flow_explorer.rs:
