/root/repo/target/debug/examples/dpr_runtime-6575d86a9b2f0e4b.d: examples/dpr_runtime.rs Cargo.toml

/root/repo/target/debug/examples/libdpr_runtime-6575d86a9b2f0e4b.rmeta: examples/dpr_runtime.rs Cargo.toml

examples/dpr_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
