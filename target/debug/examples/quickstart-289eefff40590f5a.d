/root/repo/target/debug/examples/quickstart-289eefff40590f5a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-289eefff40590f5a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
