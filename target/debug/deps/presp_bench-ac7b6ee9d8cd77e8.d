/root/repo/target/debug/deps/presp_bench-ac7b6ee9d8cd77e8.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_bench-ac7b6ee9d8cd77e8.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
