/root/repo/target/debug/deps/presp_cad-3b2781f896c26156.d: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs

/root/repo/target/debug/deps/presp_cad-3b2781f896c26156: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs

crates/cad/src/lib.rs:
crates/cad/src/error.rs:
crates/cad/src/flow.rs:
crates/cad/src/host.rs:
crates/cad/src/model.rs:
crates/cad/src/place.rs:
crates/cad/src/spec.rs:
crates/cad/src/synth.rs:
