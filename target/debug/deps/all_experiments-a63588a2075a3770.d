/root/repo/target/debug/deps/all_experiments-a63588a2075a3770.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-a63588a2075a3770: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
