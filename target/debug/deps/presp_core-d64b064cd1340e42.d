/root/repo/target/debug/deps/presp_core-d64b064cd1340e42.d: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_core-d64b064cd1340e42.rmeta: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/design.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/platform.rs:
crates/core/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
