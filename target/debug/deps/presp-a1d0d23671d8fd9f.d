/root/repo/target/debug/deps/presp-a1d0d23671d8fd9f.d: src/bin/presp.rs Cargo.toml

/root/repo/target/debug/deps/libpresp-a1d0d23671d8fd9f.rmeta: src/bin/presp.rs Cargo.toml

src/bin/presp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
