/root/repo/target/debug/deps/presp_fpga-35ba7ca1ea01d1ee.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_fpga-35ba7ca1ea01d1ee.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs Cargo.toml

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/config_memory.rs:
crates/fpga/src/error.rs:
crates/fpga/src/fabric.rs:
crates/fpga/src/fault.rs:
crates/fpga/src/frame.rs:
crates/fpga/src/icap.rs:
crates/fpga/src/part.rs:
crates/fpga/src/pblock.rs:
crates/fpga/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
