/root/repo/target/debug/deps/presp_soc-181e71ef880b4c30.d: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_soc-181e71ef880b4c30.rmeta: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs Cargo.toml

crates/soc/src/lib.rs:
crates/soc/src/config.rs:
crates/soc/src/dfxc.rs:
crates/soc/src/energy.rs:
crates/soc/src/error.rs:
crates/soc/src/json.rs:
crates/soc/src/noc.rs:
crates/soc/src/sim.rs:
crates/soc/src/tile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
