/root/repo/target/debug/deps/full_flow-2a3b8e4004a7f33d.d: tests/full_flow.rs

/root/repo/target/debug/deps/full_flow-2a3b8e4004a7f33d: tests/full_flow.rs

tests/full_flow.rs:
