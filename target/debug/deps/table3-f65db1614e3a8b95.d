/root/repo/target/debug/deps/table3-f65db1614e3a8b95.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-f65db1614e3a8b95: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
