/root/repo/target/debug/deps/presp_bench-6685327039dce08a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_bench-6685327039dce08a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
