/root/repo/target/debug/deps/fig3-0a77c7d952a2eea3.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-0a77c7d952a2eea3: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
