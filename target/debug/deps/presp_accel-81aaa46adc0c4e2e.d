/root/repo/target/debug/deps/presp_accel-81aaa46adc0c4e2e.d: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_accel-81aaa46adc0c4e2e.rmeta: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs Cargo.toml

crates/accel/src/lib.rs:
crates/accel/src/catalog.rs:
crates/accel/src/error.rs:
crates/accel/src/latency.rs:
crates/accel/src/op.rs:
crates/accel/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
