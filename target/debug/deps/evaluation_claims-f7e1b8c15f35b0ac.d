/root/repo/target/debug/deps/evaluation_claims-f7e1b8c15f35b0ac.d: tests/evaluation_claims.rs Cargo.toml

/root/repo/target/debug/deps/libevaluation_claims-f7e1b8c15f35b0ac.rmeta: tests/evaluation_claims.rs Cargo.toml

tests/evaluation_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
