/root/repo/target/debug/deps/dpr_protocol-90ad99a3dd68d4fc.d: tests/dpr_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libdpr_protocol-90ad99a3dd68d4fc.rmeta: tests/dpr_protocol.rs Cargo.toml

tests/dpr_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
