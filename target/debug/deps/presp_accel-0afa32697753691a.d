/root/repo/target/debug/deps/presp_accel-0afa32697753691a.d: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

/root/repo/target/debug/deps/presp_accel-0afa32697753691a: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

crates/accel/src/lib.rs:
crates/accel/src/catalog.rs:
crates/accel/src/error.rs:
crates/accel/src/latency.rs:
crates/accel/src/op.rs:
crates/accel/src/power.rs:
