/root/repo/target/debug/deps/fig4-abf05222513387fc.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-abf05222513387fc: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
