/root/repo/target/debug/deps/presp_runtime-7a66032c18560aee.d: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_runtime-7a66032c18560aee.rmeta: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/app.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/error.rs:
crates/runtime/src/manager.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
