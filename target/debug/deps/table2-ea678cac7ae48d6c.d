/root/repo/target/debug/deps/table2-ea678cac7ae48d6c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ea678cac7ae48d6c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
