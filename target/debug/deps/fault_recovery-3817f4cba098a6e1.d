/root/repo/target/debug/deps/fault_recovery-3817f4cba098a6e1.d: tests/fault_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfault_recovery-3817f4cba098a6e1.rmeta: tests/fault_recovery.rs Cargo.toml

tests/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
