/root/repo/target/debug/deps/table6-ee9c94879a55622f.d: crates/bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-ee9c94879a55622f: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
