/root/repo/target/debug/deps/presp-4d030c0f8ad2ab46.d: src/bin/presp.rs

/root/repo/target/debug/deps/presp-4d030c0f8ad2ab46: src/bin/presp.rs

src/bin/presp.rs:
