/root/repo/target/debug/deps/presp_bench-a76f5ef9d5f1d357.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libpresp_bench-a76f5ef9d5f1d357.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/libpresp_bench-a76f5ef9d5f1d357.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/render.rs:
