/root/repo/target/debug/deps/presp_core-b5a4de54541fa747.d: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

/root/repo/target/debug/deps/presp_core-b5a4de54541fa747: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

crates/core/src/lib.rs:
crates/core/src/design.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/platform.rs:
crates/core/src/strategy.rs:
