/root/repo/target/debug/deps/presp_soc-6099a66a7390d9c0.d: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

/root/repo/target/debug/deps/libpresp_soc-6099a66a7390d9c0.rlib: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

/root/repo/target/debug/deps/libpresp_soc-6099a66a7390d9c0.rmeta: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

crates/soc/src/lib.rs:
crates/soc/src/config.rs:
crates/soc/src/dfxc.rs:
crates/soc/src/energy.rs:
crates/soc/src/error.rs:
crates/soc/src/json.rs:
crates/soc/src/noc.rs:
crates/soc/src/sim.rs:
crates/soc/src/tile.rs:
