/root/repo/target/debug/deps/presp-38fdca9b366a439a.d: src/bin/presp.rs

/root/repo/target/debug/deps/presp-38fdca9b366a439a: src/bin/presp.rs

src/bin/presp.rs:
