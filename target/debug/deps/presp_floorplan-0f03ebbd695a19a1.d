/root/repo/target/debug/deps/presp_floorplan-0f03ebbd695a19a1.d: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

/root/repo/target/debug/deps/presp_floorplan-0f03ebbd695a19a1: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

crates/floorplan/src/lib.rs:
crates/floorplan/src/error.rs:
crates/floorplan/src/planner.rs:
