/root/repo/target/debug/deps/wami_equivalence-17ff72045f9be6e1.d: tests/wami_equivalence.rs

/root/repo/target/debug/deps/wami_equivalence-17ff72045f9be6e1: tests/wami_equivalence.rs

tests/wami_equivalence.rs:
