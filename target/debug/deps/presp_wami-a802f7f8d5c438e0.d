/root/repo/target/debug/deps/presp_wami-a802f7f8d5c438e0.d: crates/wami/src/lib.rs crates/wami/src/change_detection.rs crates/wami/src/debayer.rs crates/wami/src/error.rs crates/wami/src/frames.rs crates/wami/src/gradient.rs crates/wami/src/graph.rs crates/wami/src/grayscale.rs crates/wami/src/image.rs crates/wami/src/lucas_kanade.rs crates/wami/src/matrix.rs crates/wami/src/pipeline.rs crates/wami/src/warp.rs

/root/repo/target/debug/deps/libpresp_wami-a802f7f8d5c438e0.rlib: crates/wami/src/lib.rs crates/wami/src/change_detection.rs crates/wami/src/debayer.rs crates/wami/src/error.rs crates/wami/src/frames.rs crates/wami/src/gradient.rs crates/wami/src/graph.rs crates/wami/src/grayscale.rs crates/wami/src/image.rs crates/wami/src/lucas_kanade.rs crates/wami/src/matrix.rs crates/wami/src/pipeline.rs crates/wami/src/warp.rs

/root/repo/target/debug/deps/libpresp_wami-a802f7f8d5c438e0.rmeta: crates/wami/src/lib.rs crates/wami/src/change_detection.rs crates/wami/src/debayer.rs crates/wami/src/error.rs crates/wami/src/frames.rs crates/wami/src/gradient.rs crates/wami/src/graph.rs crates/wami/src/grayscale.rs crates/wami/src/image.rs crates/wami/src/lucas_kanade.rs crates/wami/src/matrix.rs crates/wami/src/pipeline.rs crates/wami/src/warp.rs

crates/wami/src/lib.rs:
crates/wami/src/change_detection.rs:
crates/wami/src/debayer.rs:
crates/wami/src/error.rs:
crates/wami/src/frames.rs:
crates/wami/src/gradient.rs:
crates/wami/src/graph.rs:
crates/wami/src/grayscale.rs:
crates/wami/src/image.rs:
crates/wami/src/lucas_kanade.rs:
crates/wami/src/matrix.rs:
crates/wami/src/pipeline.rs:
crates/wami/src/warp.rs:
