/root/repo/target/debug/deps/presp-b0a4030e4ee39237.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpresp-b0a4030e4ee39237.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
