/root/repo/target/debug/deps/presp_soc-0320b22abee75e5d.d: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

/root/repo/target/debug/deps/presp_soc-0320b22abee75e5d: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

crates/soc/src/lib.rs:
crates/soc/src/config.rs:
crates/soc/src/dfxc.rs:
crates/soc/src/energy.rs:
crates/soc/src/error.rs:
crates/soc/src/json.rs:
crates/soc/src/noc.rs:
crates/soc/src/sim.rs:
crates/soc/src/tile.rs:
