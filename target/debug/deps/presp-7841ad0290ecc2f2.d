/root/repo/target/debug/deps/presp-7841ad0290ecc2f2.d: src/bin/presp.rs Cargo.toml

/root/repo/target/debug/deps/libpresp-7841ad0290ecc2f2.rmeta: src/bin/presp.rs Cargo.toml

src/bin/presp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
