/root/repo/target/debug/deps/presp_core-103e0fdda4d93ade.d: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

/root/repo/target/debug/deps/libpresp_core-103e0fdda4d93ade.rlib: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

/root/repo/target/debug/deps/libpresp_core-103e0fdda4d93ade.rmeta: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

crates/core/src/lib.rs:
crates/core/src/design.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/platform.rs:
crates/core/src/strategy.rs:
