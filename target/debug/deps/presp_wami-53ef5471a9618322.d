/root/repo/target/debug/deps/presp_wami-53ef5471a9618322.d: crates/wami/src/lib.rs crates/wami/src/change_detection.rs crates/wami/src/debayer.rs crates/wami/src/error.rs crates/wami/src/frames.rs crates/wami/src/gradient.rs crates/wami/src/graph.rs crates/wami/src/grayscale.rs crates/wami/src/image.rs crates/wami/src/lucas_kanade.rs crates/wami/src/matrix.rs crates/wami/src/pipeline.rs crates/wami/src/warp.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_wami-53ef5471a9618322.rmeta: crates/wami/src/lib.rs crates/wami/src/change_detection.rs crates/wami/src/debayer.rs crates/wami/src/error.rs crates/wami/src/frames.rs crates/wami/src/gradient.rs crates/wami/src/graph.rs crates/wami/src/grayscale.rs crates/wami/src/image.rs crates/wami/src/lucas_kanade.rs crates/wami/src/matrix.rs crates/wami/src/pipeline.rs crates/wami/src/warp.rs Cargo.toml

crates/wami/src/lib.rs:
crates/wami/src/change_detection.rs:
crates/wami/src/debayer.rs:
crates/wami/src/error.rs:
crates/wami/src/frames.rs:
crates/wami/src/gradient.rs:
crates/wami/src/graph.rs:
crates/wami/src/grayscale.rs:
crates/wami/src/image.rs:
crates/wami/src/lucas_kanade.rs:
crates/wami/src/matrix.rs:
crates/wami/src/pipeline.rs:
crates/wami/src/warp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
