/root/repo/target/debug/deps/all_experiments-ab0aed64d5898998.d: crates/bench/src/bin/all_experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-ab0aed64d5898998.rmeta: crates/bench/src/bin/all_experiments.rs Cargo.toml

crates/bench/src/bin/all_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
