/root/repo/target/debug/deps/presp_floorplan-6aa5d9f51af9460b.d: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_floorplan-6aa5d9f51af9460b.rmeta: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs Cargo.toml

crates/floorplan/src/lib.rs:
crates/floorplan/src/error.rs:
crates/floorplan/src/planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
