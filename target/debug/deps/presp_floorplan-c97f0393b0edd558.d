/root/repo/target/debug/deps/presp_floorplan-c97f0393b0edd558.d: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

/root/repo/target/debug/deps/libpresp_floorplan-c97f0393b0edd558.rlib: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

/root/repo/target/debug/deps/libpresp_floorplan-c97f0393b0edd558.rmeta: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

crates/floorplan/src/lib.rs:
crates/floorplan/src/error.rs:
crates/floorplan/src/planner.rs:
