/root/repo/target/debug/deps/evaluation_claims-d446fe4de08d3cbe.d: tests/evaluation_claims.rs

/root/repo/target/debug/deps/evaluation_claims-d446fe4de08d3cbe: tests/evaluation_claims.rs

tests/evaluation_claims.rs:
