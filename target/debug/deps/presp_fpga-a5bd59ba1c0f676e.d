/root/repo/target/debug/deps/presp_fpga-a5bd59ba1c0f676e.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs

/root/repo/target/debug/deps/libpresp_fpga-a5bd59ba1c0f676e.rlib: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs

/root/repo/target/debug/deps/libpresp_fpga-a5bd59ba1c0f676e.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/config_memory.rs:
crates/fpga/src/error.rs:
crates/fpga/src/fabric.rs:
crates/fpga/src/fault.rs:
crates/fpga/src/frame.rs:
crates/fpga/src/icap.rs:
crates/fpga/src/part.rs:
crates/fpga/src/pblock.rs:
crates/fpga/src/resources.rs:
