/root/repo/target/debug/deps/presp_runtime-00d59367ece3a9b6.d: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

/root/repo/target/debug/deps/presp_runtime-00d59367ece3a9b6: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

crates/runtime/src/lib.rs:
crates/runtime/src/app.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/error.rs:
crates/runtime/src/manager.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/threaded.rs:
