/root/repo/target/debug/deps/table4-f5d7aab5249f1a11.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-f5d7aab5249f1a11: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
