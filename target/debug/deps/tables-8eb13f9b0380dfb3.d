/root/repo/target/debug/deps/tables-8eb13f9b0380dfb3.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-8eb13f9b0380dfb3.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
