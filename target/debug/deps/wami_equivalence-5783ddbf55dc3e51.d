/root/repo/target/debug/deps/wami_equivalence-5783ddbf55dc3e51.d: tests/wami_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libwami_equivalence-5783ddbf55dc3e51.rmeta: tests/wami_equivalence.rs Cargo.toml

tests/wami_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
