/root/repo/target/debug/deps/presp_accel-c720108e683e621d.d: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

/root/repo/target/debug/deps/libpresp_accel-c720108e683e621d.rlib: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

/root/repo/target/debug/deps/libpresp_accel-c720108e683e621d.rmeta: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

crates/accel/src/lib.rs:
crates/accel/src/catalog.rs:
crates/accel/src/error.rs:
crates/accel/src/latency.rs:
crates/accel/src/op.rs:
crates/accel/src/power.rs:
