/root/repo/target/debug/deps/table5-4592fc02021f89e6.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-4592fc02021f89e6: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
