/root/repo/target/debug/deps/ablations-b43c42df22d793a3.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-b43c42df22d793a3.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
