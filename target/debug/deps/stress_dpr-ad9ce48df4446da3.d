/root/repo/target/debug/deps/stress_dpr-ad9ce48df4446da3.d: tests/stress_dpr.rs

/root/repo/target/debug/deps/stress_dpr-ad9ce48df4446da3: tests/stress_dpr.rs

tests/stress_dpr.rs:
