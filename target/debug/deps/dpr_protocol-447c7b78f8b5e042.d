/root/repo/target/debug/deps/dpr_protocol-447c7b78f8b5e042.d: tests/dpr_protocol.rs

/root/repo/target/debug/deps/dpr_protocol-447c7b78f8b5e042: tests/dpr_protocol.rs

tests/dpr_protocol.rs:
