/root/repo/target/debug/deps/presp-cff91f85c1880c27.d: src/lib.rs

/root/repo/target/debug/deps/presp-cff91f85c1880c27: src/lib.rs

src/lib.rs:
