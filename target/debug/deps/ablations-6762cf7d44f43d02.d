/root/repo/target/debug/deps/ablations-6762cf7d44f43d02.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-6762cf7d44f43d02: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
