/root/repo/target/debug/deps/kernels-ecad9bb5c1491030.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-ecad9bb5c1491030.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
