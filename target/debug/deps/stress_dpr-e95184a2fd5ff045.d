/root/repo/target/debug/deps/stress_dpr-e95184a2fd5ff045.d: tests/stress_dpr.rs Cargo.toml

/root/repo/target/debug/deps/libstress_dpr-e95184a2fd5ff045.rmeta: tests/stress_dpr.rs Cargo.toml

tests/stress_dpr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
