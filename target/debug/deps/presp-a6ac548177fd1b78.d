/root/repo/target/debug/deps/presp-a6ac548177fd1b78.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpresp-a6ac548177fd1b78.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
