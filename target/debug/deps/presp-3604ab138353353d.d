/root/repo/target/debug/deps/presp-3604ab138353353d.d: src/lib.rs

/root/repo/target/debug/deps/libpresp-3604ab138353353d.rlib: src/lib.rs

/root/repo/target/debug/deps/libpresp-3604ab138353353d.rmeta: src/lib.rs

src/lib.rs:
