/root/repo/target/debug/deps/fault_recovery-bc2b2c926f154fb9.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-bc2b2c926f154fb9: tests/fault_recovery.rs

tests/fault_recovery.rs:
