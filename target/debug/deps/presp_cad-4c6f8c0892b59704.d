/root/repo/target/debug/deps/presp_cad-4c6f8c0892b59704.d: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libpresp_cad-4c6f8c0892b59704.rmeta: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs Cargo.toml

crates/cad/src/lib.rs:
crates/cad/src/error.rs:
crates/cad/src/flow.rs:
crates/cad/src/host.rs:
crates/cad/src/model.rs:
crates/cad/src/place.rs:
crates/cad/src/spec.rs:
crates/cad/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
