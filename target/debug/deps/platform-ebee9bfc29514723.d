/root/repo/target/debug/deps/platform-ebee9bfc29514723.d: crates/bench/benches/platform.rs Cargo.toml

/root/repo/target/debug/deps/libplatform-ebee9bfc29514723.rmeta: crates/bench/benches/platform.rs Cargo.toml

crates/bench/benches/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
