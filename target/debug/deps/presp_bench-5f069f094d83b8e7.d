/root/repo/target/debug/deps/presp_bench-5f069f094d83b8e7.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

/root/repo/target/debug/deps/presp_bench-5f069f094d83b8e7: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/render.rs:
