/root/repo/target/debug/deps/table1-ba761f5de8cd134d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-ba761f5de8cd134d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
