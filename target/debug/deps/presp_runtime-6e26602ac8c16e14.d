/root/repo/target/debug/deps/presp_runtime-6e26602ac8c16e14.d: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

/root/repo/target/debug/deps/libpresp_runtime-6e26602ac8c16e14.rlib: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

/root/repo/target/debug/deps/libpresp_runtime-6e26602ac8c16e14.rmeta: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

crates/runtime/src/lib.rs:
crates/runtime/src/app.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/error.rs:
crates/runtime/src/manager.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/threaded.rs:
