/root/repo/target/release/deps/presp-344b837b97061735.d: src/bin/presp.rs

/root/repo/target/release/deps/presp-344b837b97061735: src/bin/presp.rs

src/bin/presp.rs:
