/root/repo/target/release/deps/presp_soc-3df3a4a662ef0c82.d: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

/root/repo/target/release/deps/libpresp_soc-3df3a4a662ef0c82.rlib: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

/root/repo/target/release/deps/libpresp_soc-3df3a4a662ef0c82.rmeta: crates/soc/src/lib.rs crates/soc/src/config.rs crates/soc/src/dfxc.rs crates/soc/src/energy.rs crates/soc/src/error.rs crates/soc/src/json.rs crates/soc/src/noc.rs crates/soc/src/sim.rs crates/soc/src/tile.rs

crates/soc/src/lib.rs:
crates/soc/src/config.rs:
crates/soc/src/dfxc.rs:
crates/soc/src/energy.rs:
crates/soc/src/error.rs:
crates/soc/src/json.rs:
crates/soc/src/noc.rs:
crates/soc/src/sim.rs:
crates/soc/src/tile.rs:
