/root/repo/target/release/deps/presp_floorplan-548b277f6baa7f0e.d: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

/root/repo/target/release/deps/libpresp_floorplan-548b277f6baa7f0e.rlib: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

/root/repo/target/release/deps/libpresp_floorplan-548b277f6baa7f0e.rmeta: crates/floorplan/src/lib.rs crates/floorplan/src/error.rs crates/floorplan/src/planner.rs

crates/floorplan/src/lib.rs:
crates/floorplan/src/error.rs:
crates/floorplan/src/planner.rs:
