/root/repo/target/release/deps/presp_bench-cd8a4532755cea3e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libpresp_bench-cd8a4532755cea3e.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

/root/repo/target/release/deps/libpresp_bench-cd8a4532755cea3e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/render.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/render.rs:
