/root/repo/target/release/deps/presp_cad-c7cc53f388d8ad23.d: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs

/root/repo/target/release/deps/libpresp_cad-c7cc53f388d8ad23.rlib: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs

/root/repo/target/release/deps/libpresp_cad-c7cc53f388d8ad23.rmeta: crates/cad/src/lib.rs crates/cad/src/error.rs crates/cad/src/flow.rs crates/cad/src/host.rs crates/cad/src/model.rs crates/cad/src/place.rs crates/cad/src/spec.rs crates/cad/src/synth.rs

crates/cad/src/lib.rs:
crates/cad/src/error.rs:
crates/cad/src/flow.rs:
crates/cad/src/host.rs:
crates/cad/src/model.rs:
crates/cad/src/place.rs:
crates/cad/src/spec.rs:
crates/cad/src/synth.rs:
