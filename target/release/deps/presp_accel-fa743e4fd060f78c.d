/root/repo/target/release/deps/presp_accel-fa743e4fd060f78c.d: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

/root/repo/target/release/deps/libpresp_accel-fa743e4fd060f78c.rlib: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

/root/repo/target/release/deps/libpresp_accel-fa743e4fd060f78c.rmeta: crates/accel/src/lib.rs crates/accel/src/catalog.rs crates/accel/src/error.rs crates/accel/src/latency.rs crates/accel/src/op.rs crates/accel/src/power.rs

crates/accel/src/lib.rs:
crates/accel/src/catalog.rs:
crates/accel/src/error.rs:
crates/accel/src/latency.rs:
crates/accel/src/op.rs:
crates/accel/src/power.rs:
