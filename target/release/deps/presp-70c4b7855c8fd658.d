/root/repo/target/release/deps/presp-70c4b7855c8fd658.d: src/lib.rs

/root/repo/target/release/deps/libpresp-70c4b7855c8fd658.rlib: src/lib.rs

/root/repo/target/release/deps/libpresp-70c4b7855c8fd658.rmeta: src/lib.rs

src/lib.rs:
