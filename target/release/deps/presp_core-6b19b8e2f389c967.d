/root/repo/target/release/deps/presp_core-6b19b8e2f389c967.d: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

/root/repo/target/release/deps/libpresp_core-6b19b8e2f389c967.rlib: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

/root/repo/target/release/deps/libpresp_core-6b19b8e2f389c967.rmeta: crates/core/src/lib.rs crates/core/src/design.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/platform.rs crates/core/src/strategy.rs

crates/core/src/lib.rs:
crates/core/src/design.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/platform.rs:
crates/core/src/strategy.rs:
