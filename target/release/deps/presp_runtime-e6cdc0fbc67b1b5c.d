/root/repo/target/release/deps/presp_runtime-e6cdc0fbc67b1b5c.d: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

/root/repo/target/release/deps/libpresp_runtime-e6cdc0fbc67b1b5c.rlib: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

/root/repo/target/release/deps/libpresp_runtime-e6cdc0fbc67b1b5c.rmeta: crates/runtime/src/lib.rs crates/runtime/src/app.rs crates/runtime/src/driver.rs crates/runtime/src/error.rs crates/runtime/src/manager.rs crates/runtime/src/registry.rs crates/runtime/src/threaded.rs

crates/runtime/src/lib.rs:
crates/runtime/src/app.rs:
crates/runtime/src/driver.rs:
crates/runtime/src/error.rs:
crates/runtime/src/manager.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/threaded.rs:
