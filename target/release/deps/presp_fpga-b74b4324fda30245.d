/root/repo/target/release/deps/presp_fpga-b74b4324fda30245.d: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs

/root/repo/target/release/deps/libpresp_fpga-b74b4324fda30245.rlib: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs

/root/repo/target/release/deps/libpresp_fpga-b74b4324fda30245.rmeta: crates/fpga/src/lib.rs crates/fpga/src/bitstream.rs crates/fpga/src/config_memory.rs crates/fpga/src/error.rs crates/fpga/src/fabric.rs crates/fpga/src/fault.rs crates/fpga/src/frame.rs crates/fpga/src/icap.rs crates/fpga/src/part.rs crates/fpga/src/pblock.rs crates/fpga/src/resources.rs

crates/fpga/src/lib.rs:
crates/fpga/src/bitstream.rs:
crates/fpga/src/config_memory.rs:
crates/fpga/src/error.rs:
crates/fpga/src/fabric.rs:
crates/fpga/src/fault.rs:
crates/fpga/src/frame.rs:
crates/fpga/src/icap.rs:
crates/fpga/src/part.rs:
crates/fpga/src/pblock.rs:
crates/fpga/src/resources.rs:
