/root/repo/target/release/examples/dpr_runtime-22a2bbaae005d27f.d: examples/dpr_runtime.rs

/root/repo/target/release/examples/dpr_runtime-22a2bbaae005d27f: examples/dpr_runtime.rs

examples/dpr_runtime.rs:
