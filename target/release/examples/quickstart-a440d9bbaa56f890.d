/root/repo/target/release/examples/quickstart-a440d9bbaa56f890.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a440d9bbaa56f890: examples/quickstart.rs

examples/quickstart.rs:
