/root/repo/target/release/examples/fault_injection-319ed4a254ef420d.d: examples/fault_injection.rs

/root/repo/target/release/examples/fault_injection-319ed4a254ef420d: examples/fault_injection.rs

examples/fault_injection.rs:
