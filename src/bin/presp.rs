//! The PR-ESP command-line front-end — the analogue of the paper's "single
//! make target" that turns an SoC configuration into full and partial
//! bitstreams.
//!
//! ```text
//! presp designs                      list the built-in paper designs
//! presp classify <design>            size metrics, class and strategy
//! presp flow <design> [--no-compress]  run the full flow, print the report
//! presp config <design>              dump the SoC configuration as JSON
//! ```

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::strategy::choose_strategy;
use std::process::ExitCode;

fn builtin(name: &str) -> Option<SocDesign> {
    let design = match name {
        "soc_1" => SocDesign::characterization_soc1(),
        "soc_2" => SocDesign::characterization_soc2(),
        "soc_3" => SocDesign::characterization_soc3(),
        "soc_4" => SocDesign::characterization_soc4(),
        "soc_a" => SocDesign::wami_table4("soc_a", &[4, 8, 10, 9]),
        "soc_b" => SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]),
        "soc_c" => SocDesign::wami_table4("soc_c", &[7, 11, 8, 2]),
        "soc_d" => SocDesign::wami_table4("soc_d", &[4, 5, 9, 2]),
        "soc_x" => SocDesign::wami_soc_x(),
        "soc_y" => SocDesign::wami_soc_y(),
        "soc_z" => SocDesign::wami_soc_z(),
        _ => return None,
    };
    Some(design.expect("built-in designs are valid"))
}

const DESIGNS: [&str; 11] = [
    "soc_1", "soc_2", "soc_3", "soc_4", "soc_a", "soc_b", "soc_c", "soc_d", "soc_x", "soc_y",
    "soc_z",
];

fn usage() -> ExitCode {
    eprintln!("usage: presp <designs|classify|flow|config> [design] [--no-compress]");
    eprintln!("       designs: {}", DESIGNS.join(", "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };

    match command.as_str() {
        "designs" => {
            for name in DESIGNS {
                let d = builtin(name).expect("listed designs exist");
                let spec = d.to_spec().expect("built-ins are buildable");
                let (kappa, alpha, gamma) = spec.size_metrics();
                println!(
                    "{name:<6} {} tiles={} rms={} κ={:.3} α_av={:.3} γ={:.2}",
                    d.part,
                    d.config.rows() * d.config.cols(),
                    spec.reconfigurable().len(),
                    kappa,
                    alpha,
                    gamma
                );
            }
            ExitCode::SUCCESS
        }
        "classify" | "flow" | "config" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(design) = builtin(name) else {
                eprintln!("unknown design '{name}' — try `presp designs`");
                return ExitCode::FAILURE;
            };
            match command.as_str() {
                "config" => {
                    println!("{}", design.config.to_json());
                    ExitCode::SUCCESS
                }
                "classify" => {
                    let spec = design.to_spec().expect("built-ins are buildable");
                    let (kappa, alpha, gamma) = spec.size_metrics();
                    match choose_strategy(&spec) {
                        Ok((class, strategy)) => {
                            println!("κ = {kappa:.3}, α_av = {alpha:.3}, γ = {gamma:.2}");
                            println!("{class} → {strategy}");
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("classification failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                _ => {
                    let compressed = !args.iter().any(|a| a == "--no-compress");
                    let flow = PrEspFlow::new().with_compression(compressed);
                    match flow.run(&design) {
                        Ok(out) => {
                            println!("design:     {}", design.name);
                            println!("class:      {}", out.class);
                            println!("strategy:   {}", out.strategy);
                            println!("synthesis:  {}", out.report.synth.wall);
                            if let Some(t) = out.report.pnr.t_static {
                                println!("t_static:   {t}");
                            }
                            if let Some(o) = out.report.pnr.max_omega {
                                println!("max Omega:  {o}");
                            }
                            println!(
                                "total:      {}  (monolithic: {})",
                                out.report.total, out.monolithic.total
                            );
                            println!(
                                "full bitstream: {} KB",
                                out.full_bitstream.size_bytes() / 1024
                            );
                            for info in &out.partial_bitstreams {
                                println!(
                                    "  pbs {:<10} {:<24} {:>6} KB",
                                    info.region,
                                    info.kind.name(),
                                    info.bitstream.size_bytes() / 1024
                                );
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("flow failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        _ => usage(),
    }
}
