//! The PR-ESP command-line front-end — the analogue of the paper's "single
//! make target" that turns an SoC configuration into full and partial
//! bitstreams, plus the declarative scenario runner that does the same
//! for runtime experiments.
//!
//! ```text
//! presp designs [--json]               list the built-in paper designs
//! presp classify <design> [--json]     size metrics, class and strategy
//! presp flow <design> [--no-compress] [--json]  run the full flow
//! presp config <design>                dump the SoC configuration as JSON
//! presp test <path>... [--json] [--junit <file>] [--report <file>]
//!            [--trace-dir <dir>]       run declarative scenario files
//! ```
//!
//! Exit codes: `0` success, `1` operational failure (unknown design,
//! failed flow, failed scenario assertion), `2` usage or load error.
//! `--json` emits the same machine-readable documents the bench
//! binaries produce (`presp_events::json` pretty form, snake_case keys).

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::strategy::choose_strategy;
use presp::events::json::JsonValue;
use presp_scenario::report::ReportEntry;
use presp_scenario::runner;
use std::path::PathBuf;
use std::process::ExitCode;

fn builtin(name: &str) -> Option<SocDesign> {
    let design = match name {
        "soc_1" => SocDesign::characterization_soc1(),
        "soc_2" => SocDesign::characterization_soc2(),
        "soc_3" => SocDesign::characterization_soc3(),
        "soc_4" => SocDesign::characterization_soc4(),
        "soc_a" => SocDesign::wami_table4("soc_a", &[4, 8, 10, 9]),
        "soc_b" => SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]),
        "soc_c" => SocDesign::wami_table4("soc_c", &[7, 11, 8, 2]),
        "soc_d" => SocDesign::wami_table4("soc_d", &[4, 5, 9, 2]),
        "soc_x" => SocDesign::wami_soc_x(),
        "soc_y" => SocDesign::wami_soc_y(),
        "soc_z" => SocDesign::wami_soc_z(),
        _ => return None,
    };
    Some(design.expect("built-in designs are valid"))
}

const DESIGNS: [&str; 11] = [
    "soc_1", "soc_2", "soc_3", "soc_4", "soc_a", "soc_b", "soc_c", "soc_d", "soc_x", "soc_y",
    "soc_z",
];

fn usage() -> ExitCode {
    eprintln!("usage: presp <command> [args]");
    eprintln!("  designs [--json]                      list the built-in paper designs");
    eprintln!("  classify <design> [--json]            size metrics, class and strategy");
    eprintln!("  flow <design> [--no-compress] [--json]  run the full flow");
    eprintln!("  config <design>                       dump the SoC configuration as JSON");
    eprintln!("  test <path>... [--json] [--junit <file>] [--report <file>] [--trace-dir <dir>]");
    eprintln!("                                        run declarative scenario files");
    eprintln!("  designs: {}", DESIGNS.join(", "));
    ExitCode::from(2)
}

// JSON helpers in the bench `export` style (snake_case keys, pretty
// printing, trailing newline on emit).
fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn int(v: u64) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn emit(doc: &JsonValue) {
    println!("{}", doc.pretty());
}

fn design_row(name: &str) -> JsonValue {
    let d = builtin(name).expect("listed designs exist");
    let spec = d.to_spec().expect("built-ins are buildable");
    let (kappa, alpha, gamma) = spec.size_metrics();
    obj(vec![
        ("design", s(name)),
        ("part", s(&d.part.to_string())),
        ("tiles", int((d.config.rows() * d.config.cols()) as u64)),
        (
            "reconfigurable_tiles",
            int(spec.reconfigurable().len() as u64),
        ),
        ("kappa_pct", num(kappa)),
        ("alpha_av_pct", num(alpha)),
        ("gamma", num(gamma)),
    ])
}

fn cmd_designs(json: bool) -> ExitCode {
    if json {
        emit(&JsonValue::Array(
            DESIGNS.iter().map(|name| design_row(name)).collect(),
        ));
        return ExitCode::SUCCESS;
    }
    for name in DESIGNS {
        let d = builtin(name).expect("listed designs exist");
        let spec = d.to_spec().expect("built-ins are buildable");
        let (kappa, alpha, gamma) = spec.size_metrics();
        println!(
            "{name:<6} {} tiles={} rms={} κ={:.3} α_av={:.3} γ={:.2}",
            d.part,
            d.config.rows() * d.config.cols(),
            spec.reconfigurable().len(),
            kappa,
            alpha,
            gamma
        );
    }
    ExitCode::SUCCESS
}

fn cmd_classify(design: &SocDesign, json: bool) -> ExitCode {
    let spec = design.to_spec().expect("built-ins are buildable");
    let (kappa, alpha, gamma) = spec.size_metrics();
    match choose_strategy(&spec) {
        Ok((class, strategy)) => {
            if json {
                emit(&obj(vec![
                    ("design", s(&design.name)),
                    ("kappa_pct", num(kappa)),
                    ("alpha_av_pct", num(alpha)),
                    ("gamma", num(gamma)),
                    ("class", s(&class.to_string())),
                    ("strategy", s(&strategy.to_string())),
                ]));
            } else {
                println!("κ = {kappa:.3}, α_av = {alpha:.3}, γ = {gamma:.2}");
                println!("{class} → {strategy}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("classification failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_flow(design: &SocDesign, compressed: bool, json: bool) -> ExitCode {
    let flow = PrEspFlow::new().with_compression(compressed);
    match flow.run(design) {
        Ok(out) => {
            if json {
                let pbs: Vec<JsonValue> = out
                    .partial_bitstreams
                    .iter()
                    .map(|info| {
                        obj(vec![
                            ("region", s(&info.region)),
                            ("kind", s(&info.kind.name())),
                            ("size_bytes", int(info.bitstream.size_bytes() as u64)),
                        ])
                    })
                    .collect();
                emit(&obj(vec![
                    ("design", s(&design.name)),
                    ("class", s(&out.class.to_string())),
                    ("strategy", s(&out.strategy.to_string())),
                    ("synth_min", num(out.report.synth.wall.0)),
                    (
                        "t_static_min",
                        out.report
                            .pnr
                            .t_static
                            .map_or(JsonValue::Null, |t| num(t.0)),
                    ),
                    (
                        "max_omega_min",
                        out.report
                            .pnr
                            .max_omega
                            .map_or(JsonValue::Null, |o| num(o.0)),
                    ),
                    ("total_min", num(out.report.total.0)),
                    ("monolithic_total_min", num(out.monolithic.total.0)),
                    (
                        "full_bitstream_bytes",
                        int(out.full_bitstream.size_bytes() as u64),
                    ),
                    ("partial_bitstreams", JsonValue::Array(pbs)),
                ]));
                return ExitCode::SUCCESS;
            }
            println!("design:     {}", design.name);
            println!("class:      {}", out.class);
            println!("strategy:   {}", out.strategy);
            println!("synthesis:  {}", out.report.synth.wall);
            if let Some(t) = out.report.pnr.t_static {
                println!("t_static:   {t}");
            }
            if let Some(o) = out.report.pnr.max_omega {
                println!("max Omega:  {o}");
            }
            println!(
                "total:      {}  (monolithic: {})",
                out.report.total, out.monolithic.total
            );
            println!(
                "full bitstream: {} KB",
                out.full_bitstream.size_bytes() / 1024
            );
            for info in &out.partial_bitstreams {
                println!(
                    "  pbs {:<10} {:<24} {:>6} KB",
                    info.region,
                    info.kind.name(),
                    info.bitstream.size_bytes() / 1024
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("flow failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `presp test`: runs scenario files/directories, prints a verdict per
/// scenario (or the JSON report under `--json`), writes the requested
/// artifacts, and exits `0` (all passed), `1` (assertion failures) or
/// `2` (usage/load errors).
fn cmd_test(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut json = false;
    let mut junit_path: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--junit" | "--report" | "--trace-dir" => {
                let Some(value) = it.next() else {
                    eprintln!("{arg} requires a path argument");
                    return usage();
                };
                let slot = match arg.as_str() {
                    "--junit" => &mut junit_path,
                    "--report" => &mut report_path,
                    _ => &mut trace_dir,
                };
                *slot = Some(PathBuf::from(value));
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}' for presp test");
                return usage();
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        eprintln!("presp test requires at least one scenario file or directory");
        return usage();
    }

    let outcome = match runner::run_paths(&paths) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &report_path {
        if let Err(e) = std::fs::write(path, outcome.report_json()) {
            eprintln!("cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &junit_path {
        if let Err(e) = std::fs::write(path, outcome.junit_xml()) {
            eprintln!("cannot write JUnit XML {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &trace_dir {
        if let Err(e) = outcome.write_traces(dir) {
            eprintln!("cannot write traces under {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", outcome.report_json());
    } else {
        for entry in &outcome.entries {
            match entry {
                ReportEntry::LoadFailed { file, error } => {
                    println!("LOAD FAIL {file}: {error}");
                }
                ReportEntry::Ran { file, verdict } => {
                    let mark = if verdict.passed() { "pass" } else { "FAIL" };
                    println!(
                        "{mark} {name} ({file}, {runs} runs)",
                        name = verdict.spec.name,
                        runs = verdict.observations.runs.len()
                    );
                    for r in verdict.results.iter().filter(|r| !r.passed) {
                        println!(
                            "     {}: {} (replay seed {})",
                            r.check, r.detail, r.replay_seed
                        );
                    }
                }
            }
        }
        let total = outcome.entries.len();
        let passed = outcome.entries.iter().filter(|e| e.passed()).count();
        println!("{passed}/{total} scenarios passed");
    }
    if outcome.all_passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let json = args.iter().any(|a| a == "--json");

    match command.as_str() {
        "designs" => cmd_designs(json),
        "test" => cmd_test(&args[1..]),
        "classify" | "flow" | "config" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let Some(design) = builtin(name) else {
                eprintln!("unknown design '{name}' — try `presp designs`");
                return ExitCode::FAILURE;
            };
            match command.as_str() {
                "config" => {
                    println!("{}", design.config.to_json());
                    ExitCode::SUCCESS
                }
                "classify" => cmd_classify(&design, json),
                _ => {
                    let compressed = !args.iter().any(|a| a == "--no-compress");
                    cmd_flow(&design, compressed, json)
                }
            }
        }
        _ => usage(),
    }
}
