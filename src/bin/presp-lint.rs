//! `presp-lint`: workspace source discipline, enforced mechanically.
//!
//! Five properties of this codebase are architectural, not stylistic,
//! and none is expressible as a rustc/clippy lint:
//!
//! 1. **Sync discipline** — `crates/runtime` must route every
//!    synchronization primitive through its `sync` facade module so the
//!    identical protocol code runs under `std::sync` in production and
//!    under the `presp-check` model checker in CI. A direct `std::sync` /
//!    `std::thread` import anywhere else in the crate would silently
//!    exempt that code from model checking.
//!
//! 2. **Determinism** — the simulation crates (`soc`, `cad`, `events`,
//!    `fpga`) operate on virtual time; wall-clock reads or real sleeps
//!    (`SystemTime::now`, `Instant::now`, `thread::sleep`) would make
//!    results irreproducible and break schedule replay.
//!
//! 3. **Configuration-memory doorway** — inside `crates/fpga`, frames and
//!    their ECC shadow may only be mutated through `ConfigMemory`'s
//!    methods. A direct `frames.insert(...)` elsewhere would bypass the
//!    ECC refresh and silently defeat the SEU scrubber.
//!
//! 4. **Tile-shard doorway** — inside `crates/runtime`, per-tile shard
//!    state (`TileState`) is named only by its definition, the protocol
//!    functions, and the two managers that own shards (the deterministic
//!    `manager` and the multi-worker `scheduler`). Any other module
//!    touching a shard directly would bypass the scheduler's per-tile
//!    FIFO, the commit-order gate, and the `tile_state` → `core` lock
//!    order the model checker verifies.
//!
//! 5. **Trace-sink doorway** — the shared trace sink mutex is acquired
//!    only inside `crates/events/src/sink.rs` (`record_to`, `snapshot`,
//!    `drain`), which recover from poisoning via
//!    `PoisonError::into_inner`. A raw `sink.lock(` anywhere else would
//!    reintroduce the unwrap-on-poison crash the doorway exists to
//!    prevent, and would bypass the sharded sink's seq-ordered merge.
//!
//! The lint is a plain substring scanner over non-comment, non-test
//! source lines: deliberately dumb, zero dependencies, and fast enough to
//! run on every CI build. `#[cfg(test)] mod …` regions are skipped (tests
//! may use OS threads and real time); a line can opt out explicitly with
//! a `presp-lint: allow` marker and a written justification.
//!
//! Exit status: 0 when clean, 1 with one `file:line: message` per finding.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule: forbidden substrings within a directory subtree.
struct Rule {
    /// Subtree the rule applies to, relative to the workspace root.
    root: &'static str,
    /// File names exempt from this rule (the designated doorway).
    exempt_files: &'static [&'static str],
    /// Substrings that must not appear in effective source lines.
    forbidden: &'static [&'static str],
    /// Human explanation attached to findings.
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        root: "crates/runtime/src",
        exempt_files: &["sync.rs"],
        forbidden: &["std::sync", "std::thread", "parking_lot", "crossbeam"],
        why: "runtime code must use the crate::sync facade (model-checkability)",
    },
    Rule {
        root: "crates/soc/src",
        exempt_files: &[],
        forbidden: &["SystemTime::now", "Instant::now", "thread::sleep"],
        why: "simulation crates are virtual-time only (determinism)",
    },
    Rule {
        root: "crates/cad/src",
        exempt_files: &[],
        forbidden: &["SystemTime::now", "Instant::now", "thread::sleep"],
        why: "simulation crates are virtual-time only (determinism)",
    },
    Rule {
        root: "crates/events/src",
        exempt_files: &[],
        forbidden: &["SystemTime::now", "Instant::now", "thread::sleep"],
        why: "simulation crates are virtual-time only (determinism)",
    },
    Rule {
        root: "crates/fpga/src",
        exempt_files: &[],
        forbidden: &["SystemTime::now", "Instant::now", "thread::sleep"],
        why: "simulation crates are virtual-time only (determinism)",
    },
    Rule {
        root: "crates/fpga/src",
        exempt_files: &["config_memory.rs"],
        forbidden: &[
            "frames.insert(",
            "frames.remove(",
            "frames.get_mut(",
            "ecc.insert(",
            "ecc.remove(",
        ],
        why: "configuration frames and their ECC shadow mutate only through \
              the ConfigMemory doorway (SEU-scrubbing integrity)",
    },
    Rule {
        root: "crates/runtime/src",
        exempt_files: &["tile.rs", "manager.rs", "scheduler.rs", "protocol.rs"],
        forbidden: &["TileState"],
        why: "per-tile shard state is touched only through the scheduler/\
              manager doorway (per-tile FIFO, commit gate, and the \
              tile_state → core lock order)",
    },
    Rule {
        root: "crates",
        exempt_files: &["sink.rs"],
        forbidden: &["sink.lock("],
        why: "trace sinks are read only through the presp_events::sink \
              doorway (snapshot/drain recover from poisoning; raw locks \
              bypass the seq-ordered merge)",
    },
    Rule {
        // The lint's own pattern literals would match (strings are not
        // stripped), so the scanner binary is its own doorway here.
        root: "src",
        exempt_files: &["presp-lint.rs"],
        forbidden: &["sink.lock("],
        why: "trace sinks are read only through the presp_events::sink \
              doorway (snapshot/drain recover from poisoning; raw locks \
              bypass the seq-ordered merge)",
    },
    Rule {
        root: "tests",
        exempt_files: &[],
        forbidden: &["sink.lock("],
        why: "trace sinks are read only through the presp_events::sink \
              doorway (snapshot/drain recover from poisoning; raw locks \
              bypass the seq-ordered merge)",
    },
    Rule {
        root: "examples",
        exempt_files: &[],
        forbidden: &["sink.lock("],
        why: "trace sinks are read only through the presp_events::sink \
              doorway (snapshot/drain recover from poisoning; raw locks \
              bypass the seq-ordered merge)",
    },
];

/// A single violation.
struct Finding {
    file: PathBuf,
    line: usize,
    pattern: &'static str,
    why: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: forbidden `{}` — {}",
            self.file.display(),
            self.line,
            self.pattern,
            self.why
        )
    }
}

/// Strips `//` comments and (statefully) `/* … */` block comments.
/// `in_block` carries block-comment state across lines. String literals
/// are not parsed — a forbidden pattern inside a string would still be
/// flagged, which is acceptable for a discipline lint (use an allow
/// marker if it ever matters).
fn effective_line(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if bytes[i..].starts_with(b"*/") {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
        } else if bytes[i..].starts_with(b"/*") {
            *in_block = true;
            i += 2;
        } else if bytes[i..].starts_with(b"//") {
            break; // line comment: rest of line is commentary
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Scans one file against one rule.
fn scan_file(path: &Path, rule: &Rule, findings: &mut Vec<Finding>) {
    let Ok(source) = std::fs::read_to_string(path) else {
        return;
    };
    let mut in_block = false;
    let mut pending_cfg_test = false;
    for (idx, raw) in source.lines().enumerate() {
        // Tests legitimately use OS threads / real time: once the
        // conventional trailing `#[cfg(test)] mod …` begins, stop.
        let trimmed = raw.trim();
        if trimmed == "#[cfg(test)]" {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                break;
            }
            if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        if raw.contains("presp-lint: allow") {
            // Opt-out marker: the justification lives next to the code.
            let _ = effective_line(raw, &mut in_block); // keep block state
            continue;
        }
        let effective = effective_line(raw, &mut in_block);
        for pattern in rule.forbidden {
            if effective.contains(pattern) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line: idx + 1,
                    pattern,
                    why: rule.why,
                });
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    // Run from the workspace root (CI) or any subdirectory (walk up to
    // the directory containing `crates/`).
    let mut root = std::env::current_dir().expect("current dir");
    while !root.join("crates").is_dir() {
        if !root.pop() {
            eprintln!("presp-lint: workspace root (containing crates/) not found");
            std::process::exit(2);
        }
    }
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for rule in RULES {
        let subtree = root.join(rule.root);
        let mut files = Vec::new();
        rust_files(&subtree, &mut files);
        for file in files {
            let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if rule.exempt_files.contains(&name) {
                continue;
            }
            scanned += 1;
            scan_file(&file, rule, &mut findings);
        }
    }
    if findings.is_empty() {
        println!("presp-lint: {scanned} files clean");
    } else {
        for finding in &findings {
            eprintln!("{finding}");
        }
        eprintln!(
            "presp-lint: {} finding(s) in {scanned} files",
            findings.len()
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped() {
        let mut in_block = false;
        assert_eq!(
            effective_line("let x = 1; // std::thread::spawn", &mut in_block),
            "let x = 1; "
        );
        assert_eq!(effective_line("a /* std::sync */ b", &mut in_block), "a  b");
        assert!(!in_block);
        assert_eq!(effective_line("x /* open", &mut in_block), "x ");
        assert!(in_block, "block comment state carries across lines");
        assert_eq!(effective_line("std::sync */ y", &mut in_block), " y");
        assert!(!in_block);
    }

    #[test]
    fn cfg_test_region_and_allow_marker_are_skipped() {
        let dir = std::env::temp_dir().join("presp-lint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("sample.rs");
        std::fs::write(
            &file,
            "use std::thread; // presp-lint: allow — doorway test\n\
             use std::sync::Mutex;\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use std::thread;\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        scan_file(&file, &RULES[0], &mut findings);
        std::fs::remove_file(&file).unwrap();
        assert_eq!(findings.len(), 1, "only the unmarked non-test line");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[0].pattern, "std::sync");
    }
}
