//! `presp-lint`: compatibility wrapper over [`presp_analyze`].
//!
//! The substring scanner that used to live here has been replaced by the
//! token-level analyzer in `crates/analyze`; its five hard-coded doorway
//! and discipline rules are now data in the workspace `analyze.json`
//! manifest, alongside the static lock-order and held-guard hazard passes
//! the old scanner could not express. This binary keeps the historical
//! name and exit-code contract (0 clean, 1 findings) for scripts and CI
//! configs that still invoke `presp-lint`; new callers should prefer
//! `presp-analyze`, which also offers `--json` and `--mutants`.
//!
//! The rewrite also fixes a real bug in the old scanner: its
//! `#[cfg(test)] mod` skipper stopped scanning at the *first* test module
//! and counted braces naively, so a brace inside a string or comment —
//! or any production code after a test module — was silently exempt. The
//! lexer-based region tracker in `presp_analyze::lexer` is immune to both
//! (see `crates/analyze/tests/fixtures/cfg_test_desync.rs`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(presp_analyze::run_cli("presp-lint", &args));
}
