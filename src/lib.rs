//! PR-ESP: an open-source platform for design and programming of partially
//! reconfigurable SoCs — a simulation-based reproduction of the DATE 2023
//! paper by Seyoum, Giri, Chiu, Natter and Carloni.
//!
//! This meta-crate re-exports the whole workspace behind one dependency:
//!
//! * [`fpga`] — FPGA fabric, pblocks, configuration frames, bitstreams,
//!   ICAP.
//! * [`wami`] — the WAMI-App benchmark kernels and synthetic scenes.
//! * [`accel`] — the accelerator catalog with behavioral models.
//! * [`events`] — the virtual-time kernel: clocks, resource timelines and
//!   the structured trace layer every other crate emits through.
//! * [`floorplan`] — FLORA-style automated DPR floorplanning.
//! * [`cad`] — the Vivado-substitute CAD engine and its calibrated runtime
//!   model.
//! * [`soc`] — the ESP-style tile/NoC SoC simulator with DPR support.
//! * [`runtime`] — the DPR runtime manager and the WAMI application
//!   scheduler.
//! * [`check`] — the deterministic concurrency checker (schedule
//!   exploration, happens-before race detection, lock-order analysis)
//!   the runtime's threaded protocol is verified with.
//! * [`core`] — the PR-ESP flow: parse → synthesize → floorplan →
//!   size-driven parallel P&R → bitstreams → deploy.
//! * [`analyze`] — the token-level static analyzer (lock-order graph,
//!   held-guard hazards, doorway rules) driven by `analyze.json`.
//!
//! # Quickstart
//!
//! ```
//! use presp::core::design::SocDesign;
//! use presp::core::flow::PrEspFlow;
//! use presp::core::platform::deploy_wami;
//! use presp::wami::frames::SceneGenerator;
//!
//! // Build SoC_Y from the paper, run the full RTL-to-bitstream flow,
//! // deploy it, and process a frame.
//! let design = SocDesign::wami_soc_y()?;
//! let output = PrEspFlow::new().run(&design)?;
//! let mut app = deploy_wami(&design, &output, 2)?;
//! let mut scene = SceneGenerator::new(48, 48, 1);
//! let report = app.process_frame(&scene.next_frame())?;
//! assert!(report.end > report.start);
//! # Ok::<(), presp::core::Error>(())
//! ```

pub use presp_accel as accel;
pub use presp_analyze as analyze;
pub use presp_cad as cad;
pub use presp_check as check;
pub use presp_core as core;
pub use presp_events as events;
pub use presp_floorplan as floorplan;
pub use presp_fpga as fpga;
pub use presp_runtime as runtime;
pub use presp_soc as soc;
pub use presp_wami as wami;
