//! The paper's headline evaluation claims, asserted against the regenerated
//! tables (the same code paths the `table*`/`fig*` binaries print).

use presp_bench::experiments;

#[test]
fn table3_class_1_1_serial_beats_every_parallel_config() {
    let rows = experiments::table3();
    let soc1 = rows.iter().find(|r| r.soc == "soc_1").expect("soc_1 row");
    assert_eq!(
        soc1.best_tau(),
        1,
        "the paper's counter-intuitive SOC_1 result"
    );
}

#[test]
fn table3_class_1_2_and_2_1_prefer_maximum_parallelism() {
    let rows = experiments::table3();
    let soc2 = rows.iter().find(|r| r.soc == "soc_2").expect("soc_2 row");
    let soc4 = rows.iter().find(|r| r.soc == "soc_4").expect("soc_4 row");
    assert_eq!(soc2.best_tau(), 4);
    assert_eq!(soc4.best_tau(), 5);
}

#[test]
fn table3_totals_decrease_monotonically_with_tau_for_soc2() {
    let rows = experiments::table3();
    let soc2 = rows.iter().find(|r| r.soc == "soc_2").expect("soc_2 row");
    let totals: Vec<f64> = soc2.points.iter().map(|p| p.total).collect();
    assert!(
        totals.windows(2).all(|w| w[1] < w[0]),
        "SOC_2 totals should fall with τ: {totals:?}"
    );
}

#[test]
fn table3_magnitudes_track_the_paper() {
    // Anchor points of the calibration (simulated vs measured minutes).
    let rows = experiments::table3();
    let serial_total = |soc: &str| {
        rows.iter()
            .find(|r| r.soc == soc)
            .and_then(|r| r.points.iter().find(|p| p.tau == 1))
            .map(|p| p.total)
            .expect("serial point")
    };
    assert!((serial_total("soc_1") - 89.0).abs() < 5.0);
    assert!((serial_total("soc_2") - 181.0).abs() < 8.0);
}

#[test]
fn table4_chosen_strategy_is_always_near_optimal() {
    for row in experiments::table4() {
        let chosen = row.chosen_total();
        let best = row.best_total();
        // The paper's choice is the measured best; our CAD model agrees
        // exactly for classes 1.1/1.2/2.1 and within a few percent for the
        // near-tie class 1.3 (see EXPERIMENTS.md).
        assert!(
            chosen <= best * 1.07,
            "{}: chose {} ({chosen:.0}) vs best {best:.0}",
            row.soc,
            row.chosen
        );
    }
}

#[test]
fn table4_chosen_strategy_is_exactly_optimal_outside_class_1_3() {
    use presp::core::strategy::SizeClass;
    for row in experiments::table4() {
        if row.class != SizeClass::Class1_3 {
            assert!(
                (row.chosen_total() - row.best_total()).abs() < 1e-9,
                "{}: chose {:.1}, best {:.1}",
                row.soc,
                row.chosen_total(),
                row.best_total()
            );
        }
    }
}

#[test]
fn table5_improvements_match_paper_directions() {
    let rows = experiments::table5();
    let row = |soc: &str| rows.iter().find(|r| r.soc == soc).expect("row");
    // SoC_A (Class 1.2) and SoC_D (Class 2.1): clear wins (paper: +19 %, +24 %).
    assert!(row("soc_a").improvement_pct() > 10.0);
    assert!(row("soc_d").improvement_pct() > 15.0);
    // SoC_C (Class 1.3): a modest win (paper: +4.4 %).
    assert!(row("soc_c").improvement_pct() > 0.0);
    // SoC_B (Class 1.1): PR-ESP as good as or slightly worse (paper: −2.5 %).
    let b = row("soc_b").improvement_pct();
    assert!(b < 3.0 && b > -8.0, "SoC_B improvement {b:.1}%");
}

#[test]
fn table6_pbs_sizes_are_in_the_paper_range() {
    for row in experiments::table6() {
        assert!(
            row.pbs_kb > 100.0 && row.pbs_kb < 600.0,
            "{} {}: {:.0} KB outside the Table VI ballpark",
            row.soc,
            row.tile,
            row.pbs_kb
        );
    }
}

#[test]
fn fig3_profiles_every_kernel() {
    let rows = experiments::fig3(64);
    assert_eq!(rows.len(), 12);
    for r in &rows {
        assert!(r.micros > 0.0, "#{} has zero latency", r.index);
        assert!(r.luts > 0);
    }
    // Pixel-streaming kernels dominate the tiny linear-algebra ones.
    let warp = rows.iter().find(|r| r.name == "warp").unwrap();
    let invert = rows.iter().find(|r| r.name == "matrix-invert").unwrap();
    assert!(warp.micros > 4.0 * invert.micros);
}

#[test]
fn fig4_reproduces_the_energy_latency_tradeoff() {
    let rows = experiments::fig4(5, 48, 2);
    assert_eq!(rows.len(), 3);
    let x = rows.iter().find(|r| r.soc == "soc_x").unwrap();
    let y = rows.iter().find(|r| r.soc == "soc_y").unwrap();
    let z = rows.iter().find(|r| r.soc == "soc_z").unwrap();
    // Fewer tiles → best energy per frame, worst latency (Fig. 4's shape).
    assert!(
        x.mj_per_frame < y.mj_per_frame && y.mj_per_frame < z.mj_per_frame,
        "energy: x={:.1} y={:.1} z={:.1}",
        x.mj_per_frame,
        y.mj_per_frame,
        z.mj_per_frame
    );
    assert!(
        x.ms_per_frame > z.ms_per_frame,
        "latency: x={:.2} z={:.2}",
        x.ms_per_frame,
        z.ms_per_frame
    );
    // All three compute identical results.
    assert_eq!(x.mean_changed_pixels, y.mean_changed_pixels);
    assert_eq!(y.mean_changed_pixels, z.mean_changed_pixels);
}
