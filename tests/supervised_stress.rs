//! Supervised-scheduler stress: seeded interleavings of worker panics,
//! hangs and slow-worker stalls — with SEU scrubbing running in the same
//! storm — through the sharded worker pool.
//!
//! Per seed, the harness replays a seeded interleaving of blocking
//! requests while a [`WorkerFaultPlan`] kills and wedges workers
//! mid-claim, and asserts:
//!   * no lost requests — every submitted operation is answered (on the
//!     accelerator or via CPU fallback), even when its worker died while
//!     holding the claim;
//!   * no orphaned tickets — after shutdown the commit-order gate has
//!     passed every admitted ticket (nothing leaked into the claim table);
//!   * supervision accounting — every injected panic is one worker death,
//!     every death within budget is one respawn, every healed claim is a
//!     redispatch;
//!   * scrub convergence — with the fault source disarmed, a final sweep
//!     reads every frame back clean;
//!   * determinism — same seed, same everything: stats, supervisor
//!     counters and the full trace log are byte-identical across runs and
//!     across worker counts.

use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
use presp::events::trace::log_lines;
use presp::events::MemorySink;
use presp::fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp::fpga::fault::{FaultConfig, FaultPlan, SplitMix64};
use presp::fpga::frame::FrameAddress;
use presp::runtime::manager::{ManagerStats, RecoveryPolicy};
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::scrubber::ScrubberDaemon;
use presp::runtime::supervisor::{
    install_quiet_panic_hook, SupervisorStats, WorkerFaultConfig, WorkerFaultPlan,
};
use presp::runtime::threaded::ThreadedManager;
use presp::soc::config::{SocConfig, TileCoord};
use presp::soc::sim::Soc;
use std::collections::VecDeque;

const SEEDS: u64 = 200;
const APP_THREADS: usize = 4;
const OPS_PER_THREAD: usize = 6;
const TILES: usize = 2;
const WORKERS: usize = 2;

fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, 1 + col % 60, 0), vec![col; words])
        .unwrap();
    b.build(true)
}

fn supervised_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 2,
        backoff_cycles: 32,
        backoff_multiplier: 2,
        quarantine_after: 2,
        cpu_fallback: true,
        supervised: true,
        restart_budget: 8,
        ..RecoveryPolicy::default()
    }
}

fn worker_faults() -> WorkerFaultConfig {
    WorkerFaultConfig {
        panic_rate: 0.2,
        hang_rate: 0.1,
        stall_rate: 0.2,
        stall_max_micros: 40,
        max_panics: 4,
        max_hangs: 3,
    }
}

/// One operation of a logical application thread's script.
fn job_op(thread: usize, j: usize) -> (AcceleratorKind, AccelOp, AccelValue) {
    if (thread + j).is_multiple_of(2) {
        let a = (1 + thread) as f32;
        let b = (1 + j) as f32;
        (
            AcceleratorKind::Mac,
            AccelOp::Mac {
                a: vec![a; 4],
                b: vec![b; 4],
            },
            AccelValue::Scalar(4.0 * a * b),
        )
    } else {
        let data = vec![3.0, 1.0 + thread as f32, 2.0 + j as f32];
        let mut sorted = data.clone();
        sorted.sort_by(f32::total_cmp);
        (
            AcceleratorKind::Sort,
            AccelOp::Sort { data },
            AccelValue::Vector(sorted),
        )
    }
}

/// Everything observable about one supervised run; same-seed runs must be
/// equal down to the trace log, whatever the worker count.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: ManagerStats,
    sup: SupervisorStats,
    orphaned: u64,
    makespan: u64,
    quarantined: Vec<TileCoord>,
    trace: String,
}

/// Replays one seeded storm: blocking requests interleaved with scrub
/// sweeps while the fault plan kills/wedges/stalls workers mid-claim.
fn run_supervised(seed: u64, workers: usize) -> Outcome {
    install_quiet_panic_hook();
    let cfg = SocConfig::grid_3x3_reconf("sup-stress", TILES).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    // CRC faults exercise retry/fallback underneath the healed claims;
    // SEUs keep the scrubber busy during the storm.
    soc.set_fault_plan(Some(FaultPlan::new(
        seed,
        FaultConfig::uniform(0.05).with_seu(200.0, 0.15),
    )));
    let sink = MemorySink::shared();
    soc.attach_tracer(sink.clone());
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let manager: ThreadedManager =
        ThreadedManager::spawn_with_workers(soc, registry, supervised_policy(), workers);
    manager.set_worker_fault_plan(Some(WorkerFaultPlan::seeded(seed, worker_faults())));
    let scrubber = ScrubberDaemon::attach(&manager);

    let mut queues: Vec<VecDeque<(TileCoord, AcceleratorKind, AccelOp, AccelValue)>> = (0
        ..APP_THREADS)
        .map(|t| {
            (0..OPS_PER_THREAD)
                .map(|j| {
                    let (kind, op, expected) = job_op(t, j);
                    (tiles[(t + j) % tiles.len()], kind, op, expected)
                })
                .collect()
        })
        .collect();
    let mut sched = SplitMix64::new(seed ^ 0x5AFE_5AFE_5AFE_5AFE);
    let mut submitted = 0u64;
    loop {
        let alive: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if alive.is_empty() {
            break;
        }
        let pick = alive[sched.below(alive.len() as u64) as usize];
        let (tile, kind, op, expected) = queues[pick].pop_front().unwrap();
        submitted += 1;
        // Invariant: no lost requests. A worker may die or wedge while
        // holding this very claim; the supervisor must redispatch it
        // under the same ticket and the reply must still arrive.
        let (run, path) = manager
            .execute_blocking(tile, kind, op)
            .unwrap_or_else(|e| panic!("seed {seed}: lost request on {tile}: {e}"));
        assert_eq!(
            run.value, expected,
            "seed {seed}: wrong result via {path:?}"
        );
        // Periodic scrub sweep interleaved with the crash storm.
        if submitted.is_multiple_of(4) {
            let _ = scrubber.scrub_all_blocking();
        }
    }
    assert_eq!(submitted, (APP_THREADS * OPS_PER_THREAD) as u64);

    // Drain whatever struck during the storm, disarm the fault source,
    // and confirm the fabric converged: every frame clean on the final
    // sweep, even though workers were dying while upsets landed.
    let _ = scrubber.scrub_all_blocking();
    manager.set_fault_plan(None);
    if let Ok(confirm) = scrubber.scrub_all_blocking() {
        for (tile, report) in &confirm {
            assert!(
                report.is_clean(),
                "seed {seed}: latent damage on {tile} survived the final sweep"
            );
        }
    }
    scrubber.shutdown();

    // Snapshot only after shutdown joins the workers and the supervisor:
    // supervision counters (and the orphaned-ticket gauge) are quiescent
    // only once every thread is gone.
    manager.shutdown();
    let stats = manager.stats();
    assert!(
        stats.consistent(),
        "seed {seed}: inconsistent stats {stats:?}"
    );
    assert_eq!(
        stats.runs + stats.fallback_runs,
        submitted,
        "seed {seed}: completions double- or under-counted: {stats:?}"
    );
    let sup = manager.supervisor_stats();
    // Every injected panic killed exactly one worker; every death within
    // the restart budget bought exactly one respawn; every healed claim
    // (dead or wedged) was redispatched under its original ticket.
    assert_eq!(
        sup.worker_deaths, sup.panics_injected,
        "seed {seed}: deaths and injected panics disagree: {sup:?}"
    );
    assert_eq!(
        sup.worker_respawns,
        sup.worker_deaths.min(8),
        "seed {seed}: respawns are not min(deaths, budget): {sup:?}"
    );
    assert!(
        sup.redispatches >= sup.worker_deaths + sup.hangs_injected,
        "seed {seed}: a healed claim was never redispatched: {sup:?}"
    );
    let orphaned = manager.orphaned_tickets();
    assert_eq!(
        orphaned, 0,
        "seed {seed}: tickets leaked into the claim table: {sup:?}"
    );
    let makespan = manager.makespan();
    let quarantined = manager.quarantined_tiles();
    let trace = log_lines(&presp::events::sink::snapshot(&sink));
    Outcome {
        stats,
        sup,
        orphaned,
        makespan,
        quarantined,
        trace,
    }
}

#[test]
fn two_hundred_seeded_crash_storms_lose_nothing() {
    let mut total_panics = 0u64;
    let mut total_hangs = 0u64;
    let mut total_stalls = 0u64;
    let mut total_respawns = 0u64;
    let mut total_repairs = 0u64;
    for seed in 0..SEEDS {
        let outcome = run_supervised(seed, WORKERS);
        total_panics += outcome.sup.panics_injected;
        total_hangs += outcome.sup.hangs_injected;
        total_stalls += outcome.sup.stalls_injected;
        total_respawns += outcome.sup.worker_respawns;
        total_repairs += outcome.stats.frames_repaired;
    }
    // The matrix must actually exercise the supervision machinery, not
    // pass vacuously on fault-free runs.
    assert!(total_panics > 100, "panics were injected: {total_panics}");
    assert!(total_hangs > 50, "hangs were injected: {total_hangs}");
    assert!(total_stalls > 100, "stalls were injected: {total_stalls}");
    assert!(
        total_respawns > 100,
        "workers were respawned: {total_respawns}"
    );
    assert!(
        total_repairs > 0,
        "the scrubber repaired upsets: {total_repairs}"
    );
}

#[test]
fn same_seed_supervised_runs_are_byte_identical() {
    for seed in [2, 19, 83, 147] {
        let first = run_supervised(seed, WORKERS);
        let second = run_supervised(seed, WORKERS);
        assert_eq!(
            first.stats, second.stats,
            "seed {seed}: stats diverged between runs"
        );
        assert_eq!(
            first.sup, second.sup,
            "seed {seed}: supervisor counters diverged between runs"
        );
        assert_eq!(
            first.trace, second.trace,
            "seed {seed}: trace logs are not byte-identical"
        );
        assert_eq!(first, second, "seed {seed}: outcome diverged");
    }
}

#[test]
fn worker_count_does_not_change_the_supervised_world() {
    // Fault assignment is a pure function of (seed, ticket) and healing
    // is recorded at the victim ticket's own commit slot, so the whole
    // observable world — including which workers died and when, in
    // death-ordinal terms — is independent of the pool size.
    for seed in [5, 42, 121] {
        let two = run_supervised(seed, 2);
        let four = run_supervised(seed, 4);
        assert_eq!(two.stats, four.stats, "seed {seed}: stats diverged");
        assert_eq!(two.sup, four.sup, "seed {seed}: supervision diverged");
        assert_eq!(
            two.trace, four.trace,
            "seed {seed}: trace logs diverged across worker counts"
        );
    }
}

#[test]
fn unsupervised_fault_free_storms_still_hold() {
    // Control arm: the same harness with supervision off and no worker
    // faults must behave exactly like the plain threaded stress — the
    // supervision machinery charges nothing when disabled.
    for seed in 0..10 {
        install_quiet_panic_hook();
        let cfg = SocConfig::grid_3x3_reconf("sup-off", TILES).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
                .unwrap();
        }
        let policy = RecoveryPolicy {
            cpu_fallback: true,
            ..RecoveryPolicy::default()
        };
        let manager: ThreadedManager =
            ThreadedManager::spawn_with_workers(soc, registry, policy, WORKERS);
        for t in 0..APP_THREADS {
            for j in 0..OPS_PER_THREAD {
                let (kind, op, expected) = job_op(t, j);
                let tile = tiles[(t + j) % tiles.len()];
                let (run, _) = manager
                    .execute_blocking(tile, kind, op)
                    .unwrap_or_else(|e| panic!("seed {seed}: lost request: {e}"));
                assert_eq!(run.value, expected);
            }
        }
        manager.shutdown();
        let sup = manager.supervisor_stats();
        assert_eq!(
            sup,
            SupervisorStats::default(),
            "supervision charged: {sup:?}"
        );
        assert_eq!(manager.orphaned_tickets(), 0);
        assert!(manager.stats().consistent());
    }
}
