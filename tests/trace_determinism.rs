//! Trace determinism: the structured trace of a faulty, retrying,
//! quarantining WAMI deployment is a pure function of the seed. Two runs
//! with the same seed must serialize to byte-identical event logs, and the
//! Chrome trace export must stay parseable JSON.

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy_wami;
use presp::events::trace::{chrome_trace_json, log_lines};
use presp::events::{json, MemorySink, TraceRecord};
use presp::fpga::fault::{FaultConfig, FaultPlan};
use presp::runtime::manager::RecoveryPolicy;
use presp::wami::frames::SceneGenerator;

/// Runs a seeded WAMI deployment under injected ICAP faults with tracing
/// on, and returns every record the SoC, manager and app emitted.
///
/// Uses the deterministic in-process [`presp::runtime::manager::ReconfigManager`]
/// (not the OS-threaded runtime): virtual time makes the whole run, faults
/// included, a function of the seeds alone.
fn traced_run(fault_seed: u64, scene_seed: u64, frames: usize) -> Vec<TraceRecord> {
    let design = SocDesign::wami_soc_x().unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let mut app = deploy_wami(&design, &out, 2).unwrap();

    let sink = MemorySink::shared();
    {
        let manager = app.manager_mut();
        manager.set_policy(RecoveryPolicy {
            max_retries: 2,
            backoff_cycles: 64,
            backoff_multiplier: 2,
            quarantine_after: 2,
            cpu_fallback: true,
        });
        manager.soc_mut().set_fault_plan(Some(FaultPlan::new(
            fault_seed,
            FaultConfig {
                icap_flip_rate: 0.35,
                ..FaultConfig::default()
            },
        )));
        manager.soc_mut().attach_tracer(sink.clone());
    }

    let mut scene = SceneGenerator::new(32, 32, scene_seed);
    for _ in 0..frames {
        app.process_frame(&scene.next_frame())
            .expect("frame completes");
    }

    let records = sink.lock().expect("sink lock").take();
    assert!(!records.is_empty(), "traced run emitted nothing");
    records
}

#[test]
fn same_seed_runs_serialize_byte_identically() {
    let a = log_lines(&traced_run(17, 3, 3));
    let b = log_lines(&traced_run(17, 3, 3));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed trace logs diverged");
}

#[test]
fn faulty_run_traces_the_recovery_machinery() {
    let records = traced_run(29, 5, 3);
    let log = log_lines(&records);
    for needle in [
        "reconfig.attempt",
        "retry.backoff",
        "icap.write",
        "dma.burst",
        "noc.transfer",
        "frame.stage",
        "frame ",
    ] {
        assert!(log.contains(needle), "missing {needle:?} in trace log");
    }
    // At least one failed attempt given a 35 % flip rate over 3 frames.
    assert!(log.contains("ok=false"), "no injected failure was traced");
}

#[test]
fn chrome_export_of_a_faulty_run_stays_valid_json() {
    let records = traced_run(17, 3, 2);
    let doc = chrome_trace_json(&records);
    let parsed = json::parse(&doc).expect("chrome trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() > records.len(), "payload plus metadata events");
}

#[test]
fn sequence_numbers_are_dense_and_ordered() {
    let records = traced_run(17, 3, 2);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "gap in trace sequence at {i}");
    }
}
