//! Trace determinism: the structured trace of a faulty, retrying,
//! quarantining WAMI deployment is a pure function of the seed. Two runs
//! with the same seed must serialize to byte-identical event logs, and the
//! Chrome trace export must stay parseable JSON.

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy_wami;
use presp::events::trace::{chrome_trace_json, log_lines};
use presp::events::{json, MemorySink, TraceRecord};
use presp::fpga::fault::{FaultConfig, FaultPlan};
use presp::runtime::manager::RecoveryPolicy;
use presp::wami::frames::SceneGenerator;

/// Runs a seeded WAMI deployment under injected ICAP faults with tracing
/// on, and returns every record the SoC, manager and app emitted.
///
/// Uses the deterministic in-process [`presp::runtime::manager::ReconfigManager`]
/// (not the OS-threaded runtime): virtual time makes the whole run, faults
/// included, a function of the seeds alone.
fn traced_run(fault_seed: u64, scene_seed: u64, frames: usize) -> Vec<TraceRecord> {
    let design = SocDesign::wami_soc_x().unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let mut app = deploy_wami(&design, &out, 2).unwrap();

    let sink = MemorySink::shared();
    {
        let manager = app.manager_mut();
        manager.set_policy(RecoveryPolicy {
            max_retries: 2,
            backoff_cycles: 64,
            backoff_multiplier: 2,
            quarantine_after: 2,
            cpu_fallback: true,
            ..RecoveryPolicy::default()
        });
        manager.soc_mut().set_fault_plan(Some(FaultPlan::new(
            fault_seed,
            FaultConfig {
                icap_flip_rate: 0.35,
                ..FaultConfig::default()
            },
        )));
        manager.soc_mut().attach_tracer(sink.clone());
    }

    let mut scene = SceneGenerator::new(32, 32, scene_seed);
    for _ in 0..frames {
        app.process_frame(&scene.next_frame())
            .expect("frame completes");
    }

    let records = presp::events::sink::drain(&sink);
    assert!(!records.is_empty(), "traced run emitted nothing");
    records
}

#[test]
fn same_seed_runs_serialize_byte_identically() {
    let a = log_lines(&traced_run(17, 3, 3));
    let b = log_lines(&traced_run(17, 3, 3));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed trace logs diverged");
}

#[test]
fn faulty_run_traces_the_recovery_machinery() {
    let records = traced_run(29, 5, 3);
    let log = log_lines(&records);
    for needle in [
        "reconfig.attempt",
        "retry.backoff",
        "icap.write",
        "dma.burst",
        "noc.transfer",
        "frame.stage",
        "frame ",
    ] {
        assert!(log.contains(needle), "missing {needle:?} in trace log");
    }
    // At least one failed attempt given a 35 % flip rate over 3 frames.
    assert!(log.contains("ok=false"), "no injected failure was traced");
}

#[test]
fn chrome_export_of_a_faulty_run_stays_valid_json() {
    let records = traced_run(17, 3, 2);
    let doc = chrome_trace_json(&records);
    let parsed = json::parse(&doc).expect("chrome trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() > records.len(), "payload plus metadata events");
}

#[test]
fn sequence_numbers_are_dense_and_ordered() {
    let records = traced_run(17, 3, 2);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "gap in trace sequence at {i}");
    }
}

/// Drives the OS-threaded scheduler with `workers` workers and a sharded
/// trace sink (one shard per worker), fanning out batches of asynchronous
/// requests from a single submitter thread, and returns the merged trace
/// plus the virtual-time makespan.
///
/// A single submitter makes the admission order — and therefore the
/// global ticket order — deterministic; the commit-order gate then
/// serializes every traced critical section by ticket, so the merged log
/// must be identical for any worker count even though 16 workers overlap
/// their lock-free prepare stages.
fn sharded_threaded_run(workers: usize) -> (Vec<TraceRecord>, u64) {
    use presp::accel::{AccelOp, AcceleratorKind};
    use presp::events::ShardedSink;
    use presp::fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp::fpga::frame::FrameAddress;
    use presp::runtime::registry::BitstreamRegistry;
    use presp::runtime::threaded::ThreadedManager;
    use presp::soc::config::SocConfig;
    use presp::soc::sim::Soc;

    fn bitstream(soc: &Soc, col: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
            .unwrap();
        b.build(true)
    }

    let cfg = SocConfig::grid_3x3_reconf("shard-trace", 4).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let mgr: ThreadedManager =
        ThreadedManager::spawn_with_workers(soc, registry, RecoveryPolicy::default(), workers);
    let sink = ShardedSink::new(workers);
    mgr.attach_sharded_tracer(&sink);

    for round in 0..4u32 {
        let kind = if round % 2 == 0 {
            AcceleratorKind::Mac
        } else {
            AcceleratorKind::Sort
        };
        // One reconfiguration per tile, all admitted before any wait, so
        // the workers genuinely overlap; one tile per (tile, kind) pair
        // per batch keeps the run coalescing-free.
        let pendings: Vec<_> = tiles
            .iter()
            .map(|&tile| mgr.submit_reconfigure(tile, kind))
            .collect();
        for pending in pendings {
            pending.wait().expect("reconfigure completes");
        }
        let pendings: Vec<_> = tiles
            .iter()
            .map(|&tile| {
                let op = match kind {
                    AcceleratorKind::Sort => AccelOp::Sort {
                        data: vec![3.0, 1.0 + round as f32, 2.0],
                    },
                    _ => AccelOp::Mac {
                        a: vec![1.0 + round as f32; 4],
                        b: vec![2.0; 4],
                    },
                };
                mgr.submit_execute(tile, kind, op)
            })
            .collect();
        for pending in pendings {
            pending.wait().expect("execute completes");
        }
    }

    let makespan = mgr.makespan();
    mgr.shutdown();
    let records = sink.drain_merged();
    assert!(!records.is_empty(), "sharded run emitted nothing");
    (records, makespan)
}

#[test]
fn sharded_trace_merge_is_byte_identical_across_worker_counts() {
    let (one, makespan_one) = sharded_threaded_run(1);
    let (sixteen, makespan_sixteen) = sharded_threaded_run(16);
    assert_eq!(
        makespan_one, makespan_sixteen,
        "virtual-time makespan diverged across worker counts"
    );
    assert_eq!(
        log_lines(&one),
        log_lines(&sixteen),
        "merged trace logs diverged between 1 and 16 workers"
    );
}

#[test]
fn sharded_trace_merge_has_dense_ordered_sequence_numbers() {
    let (records, _) = sharded_threaded_run(16);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "gap in merged trace sequence at {i}");
    }
}

/// A seeded single-tile DPR session on the deterministic manager:
/// reconfigurations, swaps, runs, retries under injected CRC faults, scrub
/// passes under injected SEUs and CPU fallbacks. The trace log is a pure
/// function of the seeds, so it doubles as a semantics-preservation oracle
/// across runtime refactors.
fn golden_single_tile_run() -> String {
    use presp::accel::{AccelOp, AcceleratorKind};
    use presp::fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp::fpga::frame::FrameAddress;
    use presp::runtime::manager::ReconfigManager;
    use presp::runtime::registry::BitstreamRegistry;
    use presp::soc::config::SocConfig;
    use presp::soc::sim::Soc;

    fn bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                .unwrap();
        }
        b.build(true)
    }

    let cfg = SocConfig::grid_3x3_reconf("golden-dpr", 1).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    soc.set_fault_plan(Some(FaultPlan::new(
        42,
        FaultConfig::uniform(0.2).with_seu(400.0, 0.25),
    )));
    let sink = MemorySink::shared();
    soc.attach_tracer(sink.clone());
    let tile = cfg.reconfigurable_tiles()[0];
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2, 4))
        .unwrap();
    registry
        .register(tile, AcceleratorKind::Sort, bitstream(&soc, 20, 8))
        .unwrap();
    let mut manager = ReconfigManager::with_policy(
        soc,
        registry,
        RecoveryPolicy {
            max_retries: 2,
            backoff_cycles: 32,
            backoff_multiplier: 2,
            quarantine_after: 2,
            cpu_fallback: true,
            ..RecoveryPolicy::default()
        },
    );

    for j in 0..12u32 {
        let (kind, op) = if j % 2 == 0 {
            (
                AcceleratorKind::Mac,
                AccelOp::Mac {
                    a: vec![1.0 + j as f32; 8],
                    b: vec![2.0; 8],
                },
            )
        } else {
            (
                AcceleratorKind::Sort,
                AccelOp::Sort {
                    data: vec![3.0, 1.0 + j as f32, 2.0],
                },
            )
        };
        manager
            .run_with_fallback(tile, kind, &op)
            .expect("operation completes, possibly degraded");
        if j % 4 == 3 && !manager.is_quarantined(tile) {
            let at = manager.makespan();
            manager.scrub_all_at(at).expect("scrub sweep completes");
        }
    }

    let records = presp::events::sink::drain(&sink);
    assert!(!records.is_empty(), "golden run emitted nothing");
    log_lines(&records)
}

#[test]
fn single_tile_dpr_trace_matches_committed_golden() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/dpr_single_tile.trace");
    let rendered = golden_single_tile_run();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden file updated: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "the single-tile DPR trace drifted from the pre-refactor golden \
         log; the runtime's virtual-time semantics changed. If that is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
