//! Static-vs-dynamic lock-graph cross-validation.
//!
//! `presp-analyze` derives a lock-acquisition graph from the source text
//! alone; `presp-check` observes one at runtime while exploring bounded
//! schedules of the production protocol. On every schedule the explorer
//! covers, the static graph must be a superset of the dynamic one — a
//! nesting the checker witnessed but the analyzer missed would mean the
//! static pass has a soundness hole on exactly the code paths we model
//! check.
//!
//! The budget here is deliberately modest (the exhaustive sweeps live in
//! `model_check.rs`); this test is about graph agreement, not coverage.

use presp::accel::catalog::AcceleratorKind;
use presp::accel::{AccelOp, AccelValue};
use presp::analyze::manifest::Manifest;
use presp::analyze::{analyze, Options};
use presp::check::{CheckSync, Checker, Config};
use presp::fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp::fpga::frame::FrameAddress;
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::scrubber::ScrubberDaemon;
use presp::runtime::threaded::ThreadedManager;
use presp::runtime::RecoveryPolicy;
use presp::soc::config::SocConfig;
use presp::soc::sim::Soc;
use std::collections::BTreeSet;
use std::path::Path;

fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
        .unwrap();
    b.build(true)
}

/// Sharded multi-worker fan-out: exercises the admission, queue, gate,
/// tile-shard and device-core locks.
fn sharded_model() {
    let cfg = SocConfig::grid_3x3_reconf("xchk", 4).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
    }
    let mgr = ThreadedManager::<CheckSync>::spawn_with_workers(
        soc,
        registry,
        RecoveryPolicy::default(),
        2,
    );
    let pendings: Vec<_> = tiles
        .iter()
        .take(2)
        .map(|&tile| mgr.submit_reconfigure(tile, AcceleratorKind::Mac))
        .collect();
    for pending in pendings {
        pending.wait().unwrap();
    }
    let run = mgr
        .run_blocking(
            tiles[0],
            AccelOp::Mac {
                a: vec![2.0],
                b: vec![3.0],
            },
        )
        .unwrap();
    assert_eq!(run.value, AccelValue::Scalar(6.0));
    mgr.shutdown();
}

/// Scrubber alongside a swap: exercises the `core -> scrub_stats` edge.
fn scrubbed_model() {
    let cfg = SocConfig::grid_3x3_reconf("xchk2", 2).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    let mgr =
        ThreadedManager::<CheckSync>::spawn_with_policy(soc, registry, RecoveryPolicy::default());
    let scrubber = ScrubberDaemon::attach(&mgr);
    let report = scrubber.scrub_blocking(tiles[0]).unwrap();
    assert!(report.uncorrectable.is_empty());
    let _snapshot = scrubber.stats();
    scrubber.shutdown();
    mgr.shutdown();
}

#[test]
fn static_lock_graph_covers_every_dynamically_observed_edge() {
    // Dynamic side: union of lock edges over every explored schedule of
    // both models.
    let checker = Checker::new(Config {
        max_schedules: 400,
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let mut dynamic: BTreeSet<(String, String)> = BTreeSet::new();
    for model in [sharded_model as fn(), scrubbed_model as fn()] {
        let report = checker.explore(model);
        assert!(report.ok(), "{report}");
        dynamic.extend(report.lock_edges.iter().cloned());
    }
    assert!(
        dynamic.contains(&("tile_state".to_string(), "core".to_string())),
        "models too small: the checker never nested tile_state -> core \
         ({dynamic:?})"
    );

    // Static side: whole-workspace analysis with the shipped manifest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifest = Manifest::load(&root.join("analyze.json")).unwrap();
    let analysis = analyze(root, &manifest, &Options::default());
    assert!(
        analysis.is_clean(),
        "workspace not clean:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let static_edges: BTreeSet<(String, String)> =
        analysis.graph.edge_pairs().into_iter().collect();

    let missed: Vec<_> = dynamic.difference(&static_edges).collect();
    assert!(
        missed.is_empty(),
        "dynamically observed lock edges missing from the static graph \
         (soundness hole): {missed:?}\nstatic: {static_edges:?}"
    );
}
