//! Golden-file regression test: Tables II–VI must be bit-identical across
//! refactors of the timing kernel.
//!
//! The golden file was generated from the pre-`presp-events` tree, so any
//! drift in virtual-time arithmetic, CAD-model evaluation order or
//! bitstream generation shows up as a diff here. Regenerate deliberately
//! with `UPDATE_GOLDEN=1 cargo test --test golden_tables`.

use std::fmt::Write as _;
use std::path::Path;

/// Formats Tables II–VI into one deterministic text document. Floats are
/// rendered with `{:?}` (shortest round-trip), so any bit-level change in a
/// result is visible.
fn render_tables() -> String {
    let mut out = String::new();

    writeln!(out, "## Table II").unwrap();
    for r in presp_bench::experiments::table2() {
        writeln!(out, "{} {}", r.name, r.luts).unwrap();
    }

    writeln!(out, "## Table III").unwrap();
    for row in presp_bench::experiments::table3() {
        writeln!(
            out,
            "{} alpha_av={:?} kappa={:?} gamma={:?} best_tau={}",
            row.soc,
            row.alpha_av,
            row.kappa,
            row.gamma,
            row.best_tau()
        )
        .unwrap();
        for p in &row.points {
            writeln!(
                out,
                "  tau={} t_static={:?} max_omega={:?} total={:?}",
                p.tau, p.t_static, p.max_omega, p.total
            )
            .unwrap();
        }
    }

    writeln!(out, "## Table IV").unwrap();
    for r in presp_bench::experiments::table4() {
        writeln!(
            out,
            "{} accels={:?} class={} metrics={:?} chosen={} fully={:?} semi={:?} serial={:?}",
            r.soc, r.accels, r.class, r.metrics, r.chosen, r.fully, r.semi, r.serial
        )
        .unwrap();
    }

    writeln!(out, "## Table V").unwrap();
    for r in presp_bench::experiments::table5() {
        writeln!(
            out,
            "{} synth={:?} t_static={:?} max_omega={:?} total={:?} strategy={} mono_synth={:?} mono_pnr={:?} mono_total={:?}",
            r.soc,
            r.synth,
            r.t_static,
            r.max_omega,
            r.total,
            r.strategy,
            r.mono_synth,
            r.mono_pnr,
            r.mono_total
        )
        .unwrap();
    }

    writeln!(out, "## Table VI").unwrap();
    for r in presp_bench::experiments::table6() {
        writeln!(
            out,
            "{} {} kernels={:?} pbs_kb={:?}",
            r.soc, r.tile, r.kernels, r.pbs_kb
        )
        .unwrap();
    }

    out
}

#[test]
fn tables_2_to_6_match_golden() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/tables_2_to_6.txt");
    let rendered = render_tables();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden file updated: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "Tables II–VI drifted from the golden output; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
