//! End-to-end flow integration: every paper design compiles through the
//! full PR-ESP flow, its bitstreams are ICAP-loadable, and the deployed
//! system executes real work.

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::{deploy, deploy_wami};
use presp::core::strategy::SizeClass;
use presp::fpga::icap::Icap;
use presp::wami::frames::SceneGenerator;

fn all_paper_designs() -> Vec<SocDesign> {
    vec![
        SocDesign::characterization_soc1().unwrap(),
        SocDesign::characterization_soc2().unwrap(),
        SocDesign::characterization_soc3().unwrap(),
        SocDesign::characterization_soc4().unwrap(),
        SocDesign::wami_table4("soc_a", &[4, 8, 10, 9]).unwrap(),
        SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]).unwrap(),
        SocDesign::wami_table4("soc_c", &[7, 11, 8, 2]).unwrap(),
        SocDesign::wami_table4("soc_d", &[4, 5, 9, 2]).unwrap(),
        SocDesign::wami_soc_x().unwrap(),
        SocDesign::wami_soc_y().unwrap(),
        SocDesign::wami_soc_z().unwrap(),
    ]
}

#[test]
fn every_paper_design_compiles_end_to_end() {
    let flow = PrEspFlow::new();
    for design in all_paper_designs() {
        let out = flow
            .run(&design)
            .unwrap_or_else(|e| panic!("{} failed: {e}", design.name));
        assert!(out.report.total.value() > 0.0, "{}", design.name);
        assert!(!out.partial_bitstreams.is_empty(), "{}", design.name);
        // A design's pbs count equals Σ per-tile accelerators (+1 for a
        // reconfigurable CPU).
        let expected: usize = design.tile_accels.values().map(|v| v.len()).sum::<usize>()
            + usize::from(design.cpu_reconfigurable);
        assert_eq!(out.partial_bitstreams.len(), expected, "{}", design.name);
    }
}

#[test]
fn every_generated_bitstream_loads_through_a_fresh_icap() {
    let flow = PrEspFlow::new();
    for design in [
        SocDesign::wami_soc_x().unwrap(),
        SocDesign::characterization_soc2().unwrap(),
    ] {
        let out = flow.run(&design).unwrap();
        let device = design.part.device();
        let mut icap = Icap::new(&device);
        // Full bitstream first (boot), then every partial.
        let boot = icap
            .load(&out.full_bitstream)
            .expect("full bitstream loads");
        assert!(boot.frames_written > 0);
        for info in &out.partial_bitstreams {
            let report = icap
                .load(&info.bitstream)
                .unwrap_or_else(|e| panic!("{}: pbs for {} failed: {e}", design.name, info.kind));
            assert!(report.frames_written > 0);
            assert!(report.micros > 0.0);
        }
    }
}

#[test]
fn strategy_choices_match_paper_classes() {
    let flow = PrEspFlow::new();
    let expect = [
        ("soc_1", SizeClass::Class1_1),
        ("soc_2", SizeClass::Class1_2),
        ("soc_3", SizeClass::Class1_3),
        ("soc_4", SizeClass::Class2_1),
        ("soc_a", SizeClass::Class1_2),
        ("soc_b", SizeClass::Class1_1),
        ("soc_c", SizeClass::Class1_3),
        ("soc_d", SizeClass::Class2_1),
    ];
    for design in all_paper_designs() {
        if let Some((_, class)) = expect.iter().find(|(n, _)| *n == design.name) {
            let out = flow.run(&design).unwrap();
            assert_eq!(out.class, *class, "{}", design.name);
        }
    }
}

#[test]
fn deployed_characterization_soc_runs_its_accelerators() {
    use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
    let design = SocDesign::characterization_soc2().unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let mut manager = deploy(&design, &out).unwrap();
    // Load each accelerator into its tile and run it.
    for (coord, accels) in &design.tile_accels {
        for kind in accels {
            manager.request_reconfiguration(*coord, *kind).unwrap();
            let op = match kind {
                AcceleratorKind::Conv2d => AccelOp::Conv2d {
                    image: presp::wami::image::GrayImage::zeroed(8, 8),
                    kernel: vec![1.0 / 9.0; 9],
                    side: 3,
                },
                AcceleratorKind::Gemm => AccelOp::Gemm {
                    m: 2,
                    k: 2,
                    n: 2,
                    a: vec![1.0, 0.0, 0.0, 1.0],
                    b: vec![5.0, 6.0, 7.0, 8.0],
                },
                AcceleratorKind::Fft => AccelOp::Fft {
                    re: vec![0.0; 8],
                    im: vec![0.0; 8],
                },
                AcceleratorKind::Sort => AccelOp::Sort {
                    data: vec![2.0, 1.0, 3.0],
                },
                other => panic!("unexpected accelerator {other}"),
            };
            let run = manager.run(*coord, &op).unwrap();
            if let AccelValue::Vector(v) = &run.value {
                assert!(!v.is_empty());
            }
        }
    }
    assert_eq!(manager.stats().reconfigurations, 4);
    assert_eq!(manager.stats().runs, 4);
}

#[test]
fn flow_supports_the_other_evaluation_boards() {
    // The paper targets VC707, VCU118 and VCU128; the flow must run on all
    // three (floorplanning, classification and bitstreams are per-part).
    use presp::fpga::part::FpgaPart;
    let flow = PrEspFlow::new();
    for part in [FpgaPart::Vcu118, FpgaPart::Vcu128] {
        let mut design = SocDesign::wami_table4("soc_a", &[4, 8, 10, 9]).unwrap();
        design.part = part;
        let out = flow.run(&design).unwrap_or_else(|e| panic!("{part}: {e}"));
        assert_eq!(out.partial_bitstreams.len(), 4, "{part}");
        // The big UltraScale parts make the same design relatively smaller:
        // γ is part-independent but κ and α_av shrink, and every pbs still
        // loads on its own device.
        let device = part.device();
        let mut icap = Icap::new(&device);
        for info in &out.partial_bitstreams {
            icap.load(&info.bitstream)
                .unwrap_or_else(|e| panic!("{part}: {e}"));
        }
    }
}

#[test]
fn bitstreams_from_one_part_do_not_load_on_another() {
    use presp::fpga::part::FpgaPart;
    let design = SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]).unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let wrong_device = FpgaPart::Vcu118.device();
    let mut icap = Icap::new(&wrong_device);
    let err = icap.load(&out.partial_bitstreams[0].bitstream);
    assert!(
        matches!(err, Err(presp::fpga::Error::IdcodeMismatch { .. })),
        "IDCODE check must reject cross-part bitstreams: {err:?}"
    );
}

#[test]
fn deployed_wami_soc_detects_motion() {
    let design = SocDesign::wami_soc_z().unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let mut app = deploy_wami(&design, &out, 2).unwrap();
    let mut scene = SceneGenerator::new(48, 48, 77);
    let mut total_changed = 0;
    for _ in 0..5 {
        total_changed += app
            .process_frame(&scene.next_frame())
            .unwrap()
            .changed_pixels;
    }
    assert!(total_changed > 0, "moving objects must register as change");
    let stats = app.manager().stats();
    assert!(
        stats.reconfigurations > 10,
        "the dataflow swaps accelerators continuously"
    );
}
