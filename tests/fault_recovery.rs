//! Fault injection and recovery: injected ICAP/CRC corruption is retried
//! with backoff, persistent failure quarantines the tile, and application
//! work still completes through the CPU fallback path.

use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
use presp::core::design::SocDesign;
use presp::core::flow::{FlowOutput, PrEspFlow};
use presp::core::platform::{deploy, deploy_wami, deploy_with_faults};
use presp::fpga::fault::FaultConfig;
use presp::runtime::manager::{ExecPath, ReconfigManager, RecoveryPolicy};
use presp::runtime::Error as RuntimeError;
use presp::soc::Error as SocError;
use presp::wami::frames::SceneGenerator;

fn mac_design() -> (SocDesign, FlowOutput) {
    let design = SocDesign::grid_3x3(
        "faulty",
        vec![vec![AcceleratorKind::Mac, AcceleratorKind::Sort]],
        false,
    )
    .unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    (design, out)
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 2,
        backoff_cycles: 64,
        backoff_multiplier: 2,
        quarantine_after: 2,
        cpu_fallback: true,
        ..RecoveryPolicy::default()
    }
}

fn faulty_manager(design: &SocDesign, out: &FlowOutput, seed: u64) -> ReconfigManager {
    deploy_with_faults(design, out, seed, FaultConfig::default(), policy()).unwrap()
}

#[test]
fn icap_corruption_is_retried_with_backoff_and_recovers() {
    let (design, out) = mac_design();
    let tile = design.config.reconfigurable_tiles()[0];

    // Fault-free baseline for the latency comparison.
    let mut clean = deploy(&design, &out).unwrap();
    let clean_end = clean
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap()
        .expect("reconfigures")
        .end;

    // Same deployment, but the first ICAP load is handed a corrupted
    // stream: the embedded CRC rejects it, the manager backs off and the
    // retry succeeds.
    let mut manager = faulty_manager(&design, &out, 11);
    manager
        .soc_mut()
        .fault_plan_mut()
        .unwrap()
        .force_icap_fault(0);
    let reconf = manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap()
        .expect("recovers on retry");

    let stats = manager.stats();
    assert_eq!(stats.retries, 1, "exactly one retry");
    assert_eq!(stats.reconfigurations, 1);
    assert_eq!(stats.retries_exhausted, 0);
    assert!(stats.consistent(), "request accounting: {stats:?}");
    assert_eq!(
        manager
            .soc()
            .fault_plan()
            .unwrap()
            .injected()
            .icap_corruptions,
        1
    );
    assert!(
        reconf.end > clean_end + policy().backoff_cycles,
        "recovered load pays the wasted attempt plus backoff: {} vs clean {clean_end}",
        reconf.end
    );

    // The tile is fully functional after recovery.
    let run = manager
        .run(
            tile,
            &AccelOp::Mac {
                a: vec![3.0],
                b: vec![4.0],
            },
        )
        .unwrap();
    assert_eq!(run.value, AccelValue::Scalar(12.0));
}

#[test]
fn backoff_grows_exponentially_across_retries() {
    let (design, out) = mac_design();
    let tile = design.config.reconfigurable_tiles()[0];

    // One forced corruption → one backoff of 64; two forced corruptions →
    // backoffs of 64 + 128. The second recovery must be later by more than
    // one extra wasted-load + base backoff would explain alone is hard to
    // bound tightly, so compare against the single-fault run directly.
    let end_after = |faults: u64| {
        let mut manager = faulty_manager(&design, &out, 11);
        for n in 0..faults {
            manager
                .soc_mut()
                .fault_plan_mut()
                .unwrap()
                .force_icap_fault(n);
        }
        manager
            .request_reconfiguration(tile, AcceleratorKind::Mac)
            .unwrap()
            .expect("recovers")
            .end
    };
    let one = end_after(1);
    let two = end_after(2);
    assert!(
        two >= one + 128,
        "second retry adds a doubled backoff: {two} vs {one}"
    );
}

#[test]
fn stale_registry_read_is_transient_and_retried() {
    let (design, out) = mac_design();
    let tile = design.config.reconfigurable_tiles()[0];
    let mut manager = faulty_manager(&design, &out, 5);
    manager
        .soc_mut()
        .fault_plan_mut()
        .unwrap()
        .force_registry_miss(0);
    let reconf = manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap();
    assert!(reconf.is_some());
    let stats = manager.stats();
    assert_eq!(stats.retries, 1);
    assert!(stats.consistent());
    assert_eq!(
        manager
            .soc()
            .fault_plan()
            .unwrap()
            .injected()
            .registry_misses,
        1
    );
}

#[test]
fn dfxc_stall_and_decoupler_delay_add_latency_without_failing() {
    let (design, out) = mac_design();
    let tile = design.config.reconfigurable_tiles()[0];

    let mut clean = deploy(&design, &out).unwrap();
    let clean_end = clean
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap()
        .unwrap()
        .end;

    let mut manager = faulty_manager(&design, &out, 21);
    {
        let plan = manager.soc_mut().fault_plan_mut().unwrap();
        plan.force_dfxc_stall(0);
        plan.force_decoupler_delay(0);
    }
    let reconf = manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap()
        .unwrap();
    let stats = manager.stats();
    assert_eq!(stats.retries, 0, "latency faults are not failures");
    assert_eq!(stats.reconfigurations, 1);
    let injected = manager.soc().fault_plan().unwrap().injected();
    assert_eq!(injected.dfxc_stalls, 1);
    assert_eq!(injected.decoupler_delays, 1);
    let added = injected.dfxc_stall_cycles + injected.decoupler_delay_cycles;
    assert!(
        reconf.end >= clean_end + added,
        "stall + ack delay push completion: {} vs {clean_end} (+{added})",
        reconf.end
    );
}

#[test]
fn persistent_corruption_exhausts_retries_then_quarantines_and_isolates() {
    let (design, out) = mac_design();
    let tile = design.config.reconfigurable_tiles()[0];
    let mut manager = faulty_manager(&design, &out, 31);
    // Corrupt every load this test will ever attempt.
    for n in 0..32 {
        manager
            .soc_mut()
            .fault_plan_mut()
            .unwrap()
            .force_icap_fault(n);
    }

    // Request 1: first try + 2 retries all fail → RetriesExhausted.
    let err = manager.request_reconfiguration(tile, AcceleratorKind::Mac);
    assert!(
        matches!(err, Err(RuntimeError::RetriesExhausted { attempts: 3, .. })),
        "got {err:?}"
    );
    assert!(
        !manager.is_quarantined(tile),
        "one exhaustion is not yet a quarantine"
    );

    // Request 2: exhausts again → the failure streak hits the quarantine
    // threshold.
    let err = manager.request_reconfiguration(tile, AcceleratorKind::Mac);
    assert!(matches!(err, Err(RuntimeError::RetriesExhausted { .. })));
    assert!(manager.is_quarantined(tile));
    assert_eq!(manager.quarantined_tiles(), vec![tile]);

    // Request 3: rejected outright.
    let err = manager.request_reconfiguration(tile, AcceleratorKind::Mac);
    assert!(matches!(err, Err(RuntimeError::TileQuarantined { .. })));

    let stats = manager.stats();
    assert_eq!(stats.retries_exhausted, 2);
    assert_eq!(stats.retries, 4);
    assert_eq!(stats.quarantines, 1);
    assert_eq!(stats.rejected, 1);
    assert!(stats.consistent(), "{stats:?}");

    // Graceful degradation: the operation still completes, in software.
    let op = AccelOp::Mac {
        a: vec![2.0, 2.0],
        b: vec![5.0, 5.0],
    };
    let (run, path) = manager
        .run_with_fallback(tile, AcceleratorKind::Mac, &op)
        .unwrap();
    assert_eq!(path, ExecPath::CpuFallback);
    assert_eq!(run.value, AccelValue::Scalar(20.0));
    assert_eq!(manager.stats().fallback_runs, 1);

    // Isolation: the tile was left decoupled, so the wrapper rejects
    // traffic before any NoC transfer happens.
    let mut soc = manager.into_soc();
    let noc_before = soc.noc_transfers();
    let rejections_before = soc.decoupled_rejections();
    let horizon = soc.horizon();
    let err = soc.run_accelerator_at(tile, &op, horizon);
    assert!(
        matches!(err, Err(SocError::DecouplerProtocol { .. })),
        "decoupled tile must reject execution, got {err:?}"
    );
    assert_eq!(soc.decoupled_rejections(), rejections_before + 1);
    assert_eq!(
        soc.noc_transfers(),
        noc_before,
        "a decoupled tile must never observe NoC traffic"
    );
}

#[test]
fn release_quarantine_restores_the_accelerator_path() {
    let (design, out) = mac_design();
    let tile = design.config.reconfigurable_tiles()[0];
    let mut manager = faulty_manager(&design, &out, 43);
    // Fail the first two requests' every attempt (3 loads each), then stop
    // injecting.
    for n in 0..6 {
        manager
            .soc_mut()
            .fault_plan_mut()
            .unwrap()
            .force_icap_fault(n);
    }
    for _ in 0..2 {
        let _ = manager.request_reconfiguration(tile, AcceleratorKind::Mac);
    }
    assert!(manager.is_quarantined(tile));
    assert!(manager.release_quarantine(tile));
    let reconf = manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap();
    assert!(reconf.is_some(), "released tile reconfigures again");
    let (_, path) = manager
        .run_with_fallback(
            tile,
            AcceleratorKind::Mac,
            &AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
        )
        .unwrap();
    assert_eq!(path, ExecPath::Accelerator);
}

#[test]
fn wami_frame_completes_on_cpu_after_tiles_quarantine() {
    // Every ICAP load is corrupted: no accelerator ever comes up, every
    // tile quarantines, and the full WAMI frame still completes — each
    // kernel degrading to the bit-identical software path.
    let design = SocDesign::wami_soc_x().unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let mut app = deploy_wami(&design, &out, 2).unwrap();
    {
        let manager = app.manager_mut();
        manager.set_policy(RecoveryPolicy {
            max_retries: 1,
            backoff_cycles: 16,
            backoff_multiplier: 2,
            quarantine_after: 1,
            cpu_fallback: true,
            ..RecoveryPolicy::default()
        });
        manager
            .soc_mut()
            .set_fault_plan(Some(presp::fpga::fault::FaultPlan::new(
                99,
                FaultConfig {
                    icap_flip_rate: 1.0,
                    ..FaultConfig::default()
                },
            )));
    }

    let mut scene = SceneGenerator::new(32, 32, 7);
    let r1 = app.process_frame(&scene.next_frame()).unwrap();
    let r2 = app.process_frame(&scene.next_frame()).unwrap();
    assert!(r1.cpu_fallbacks > 0, "frame 1 degraded: {r1:?}");
    assert!(r2.cpu_fallbacks > 0, "frame 2 degraded: {r2:?}");
    assert!(r2.registration.is_some(), "the LK solve still ran");

    let stats = app.manager().stats();
    assert!(stats.consistent(), "{stats:?}");
    assert!(stats.quarantines > 0, "persistent faults quarantined tiles");
    assert_eq!(
        stats.reconfigurations, 0,
        "no corrupted load ever succeeded"
    );
    assert!(!app.manager().quarantined_tiles().is_empty());

    // CPU fallback is bit-identical to the software pipeline.
    use presp::wami::change_detection::GmmConfig;
    use presp::wami::lucas_kanade::LkConfig;
    use presp::wami::pipeline::{Pipeline, PipelineConfig};
    let mut sw = Pipeline::new(PipelineConfig {
        lk: LkConfig {
            max_iterations: 2,
            epsilon: 0.0,
            border_margin: 4,
        },
        gmm: GmmConfig::default(),
    });
    let mut scene = SceneGenerator::new(32, 32, 7);
    sw.process(&scene.next_frame()).unwrap();
    let sw2 = sw.process(&scene.next_frame()).unwrap();
    assert_eq!(r2.changed_pixels, sw2.changed_pixels);
}
