//! The committed `scenarios/` matrix is itself a test surface: every
//! data file under `scenarios/` must load, run and pass, and the JSON
//! report must be byte-identical across back-to-back runs — the same
//! determinism contract `presp test` advertises and CI diffs.
//!
//! The storm scenario is additionally pinned to the stress_dpr
//! parameters it ports (policy, seed matrix, fault rates), so the
//! declarative file cannot silently drift away from the Rust stress
//! suite it replaced.

use presp_scenario::engine;
use presp_scenario::runner;
use presp_scenario::spec::{ScenarioSpec, WorkloadSpec};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

#[test]
fn committed_matrix_is_green_and_byte_deterministic() {
    let first = runner::run_paths(&[scenarios_dir()]).expect("scenarios/ must resolve");
    assert!(
        first.entries.len() >= 5,
        "the committed matrix must keep at least 5 scenarios, found {}",
        first.entries.len()
    );
    for entry in &first.entries {
        assert!(
            entry.passed(),
            "committed scenario '{}' failed:\n{}",
            entry.name(),
            first.report_json()
        );
    }

    let second = runner::run_paths(&[scenarios_dir()]).expect("scenarios/ must resolve");
    assert_eq!(
        first.report_json(),
        second.report_json(),
        "scenario reports must be byte-identical across runs"
    );
}

#[test]
fn storm_scenario_ports_the_stress_dpr_parameters() {
    let input = std::fs::read_to_string(scenarios_dir().join("fault_storm.json"))
        .expect("fault_storm.json must exist");
    let spec = ScenarioSpec::parse(&input).expect("fault_storm.json must parse");

    // The stress_dpr storm matrix ran under this exact recovery policy;
    // the data file must keep it.
    assert_eq!(spec.policy.max_retries, 2);
    assert_eq!(spec.policy.backoff_cycles, 32);
    assert_eq!(spec.policy.backoff_multiplier, 2);
    assert_eq!(spec.policy.quarantine_after, 2);
    assert!(spec.policy.cpu_fallback);
    assert!((spec.faults.icap_flip_rate - 0.15).abs() < 1e-12);
    assert!(spec.seeds.count >= 20);
    assert!(
        matches!(
            spec.workload,
            WorkloadSpec::Blocking {
                clients: 4,
                ops_per_client: 6
            }
        ),
        "storm workload must stay 4 clients x 6 ops"
    );

    let verdict = engine::run(&spec);
    assert!(
        verdict.passed(),
        "storm scenario failed: {:?}",
        verdict.results
    );
    let totals = engine::totals(&verdict.observations.runs);
    assert!(
        totals["injected_total"] >= 20,
        "storm must actually inject faults"
    );
    assert_eq!(totals["lost_requests"], 0);
    assert_eq!(totals["value_mismatches"], 0);
    assert_eq!(totals["submitted"], totals["completed_ok"]);
}

#[test]
fn coalesce_scenario_observes_tail_folding() {
    let input = std::fs::read_to_string(scenarios_dir().join("coalesce_burst.json"))
        .expect("coalesce_burst.json must exist");
    let spec = ScenarioSpec::parse(&input).expect("coalesce_burst.json must parse");
    let verdict = engine::run(&spec);
    assert!(
        verdict.passed(),
        "coalesce scenario failed: {:?}",
        verdict.results
    );
    let totals = engine::totals(&verdict.observations.runs);
    assert_eq!(
        totals["coalesced"], 9,
        "9 of the 10 burst requests must fold"
    );
    assert_eq!(totals["reconfigurations"], 2);
}
