//! Cross-deployment equivalence: the three Table VI SoCs and the software
//! pipeline all compute identical WAMI results on the same input sequence —
//! partitioning changes performance, never functionality.

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy_wami;
use presp::wami::change_detection::GmmConfig;
use presp::wami::frames::SceneGenerator;
use presp::wami::lucas_kanade::LkConfig;
use presp::wami::pipeline::{Pipeline, PipelineConfig};

const ITERATIONS: usize = 2;
const FRAMES: usize = 4;
const SIZE: usize = 40;
const SEED: u64 = 99;

fn run_deployment(design: SocDesign) -> Vec<usize> {
    let out = PrEspFlow::new().run(&design).unwrap();
    let mut app = deploy_wami(&design, &out, ITERATIONS).unwrap();
    let mut scene = SceneGenerator::new(SIZE, SIZE, SEED);
    (0..FRAMES)
        .map(|_| {
            app.process_frame(&scene.next_frame())
                .unwrap()
                .changed_pixels
        })
        .collect()
}

fn run_software() -> Vec<usize> {
    let mut pipeline = Pipeline::new(PipelineConfig {
        lk: LkConfig {
            max_iterations: ITERATIONS,
            epsilon: 0.0,
            border_margin: 4,
        },
        gmm: GmmConfig::default(),
    });
    let mut scene = SceneGenerator::new(SIZE, SIZE, SEED);
    (0..FRAMES)
        .map(|_| {
            pipeline
                .process(&scene.next_frame())
                .unwrap()
                .changed_pixels
        })
        .collect()
}

#[test]
fn all_deployments_match_the_software_reference() {
    let software = run_software();
    let x = run_deployment(SocDesign::wami_soc_x().unwrap());
    let y = run_deployment(SocDesign::wami_soc_y().unwrap());
    let z = run_deployment(SocDesign::wami_soc_z().unwrap());
    assert_eq!(x, software, "SoC_X diverged from software");
    assert_eq!(y, software, "SoC_Y diverged from software");
    assert_eq!(z, software, "SoC_Z diverged from software");
}

#[test]
fn more_tiles_do_not_change_results_only_timing() {
    let design_x = SocDesign::wami_soc_x().unwrap();
    let design_z = SocDesign::wami_soc_z().unwrap();
    let flow = PrEspFlow::new();
    let out_x = flow.run(&design_x).unwrap();
    let out_z = flow.run(&design_z).unwrap();
    let mut app_x = deploy_wami(&design_x, &out_x, ITERATIONS).unwrap();
    let mut app_z = deploy_wami(&design_z, &out_z, ITERATIONS).unwrap();
    let mut scene_x = SceneGenerator::new(SIZE, SIZE, SEED);
    let mut scene_z = SceneGenerator::new(SIZE, SIZE, SEED);
    let mut cycles_x = 0;
    let mut cycles_z = 0;
    for i in 0..FRAMES {
        let rx = app_x.process_frame(&scene_x.next_frame()).unwrap();
        let rz = app_z.process_frame(&scene_z.next_frame()).unwrap();
        assert_eq!(rx.changed_pixels, rz.changed_pixels, "frame {i}");
        if i > 0 {
            cycles_x += rx.latency();
            cycles_z += rz.latency();
        }
    }
    // Fig. 4: the four-tile SoC_Z is faster per frame than two-tile SoC_X.
    assert!(
        cycles_z < cycles_x,
        "SoC_Z ({cycles_z} cycles) should beat SoC_X ({cycles_x} cycles)"
    );
}
