//! DPR protocol integration: the decoupler/DFXC/driver-swap sequence
//! across crates, including failure injection.

use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::runtime::manager::ReconfigManager;
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::Error as RuntimeError;
use presp::soc::sim::{csr, Soc};
use presp::soc::Error as SocError;

fn flow_deployment() -> (SocDesign, ReconfigManager) {
    let design = SocDesign::grid_3x3(
        "protocol",
        vec![
            vec![AcceleratorKind::Mac, AcceleratorKind::Sort],
            vec![AcceleratorKind::Gemm],
        ],
        false,
    )
    .unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let manager = presp::core::platform::deploy(&design, &out).unwrap();
    (design, manager)
}

#[test]
fn flow_bitstreams_drive_the_full_swap_protocol() {
    let (design, mut manager) = flow_deployment();
    let tiles = design.config.reconfigurable_tiles();
    // MAC → run → SORT → run → MAC again (cache-miss swap back).
    manager
        .request_reconfiguration(tiles[0], AcceleratorKind::Mac)
        .unwrap();
    let r = manager
        .run(
            tiles[0],
            &AccelOp::Mac {
                a: vec![4.0],
                b: vec![2.5],
            },
        )
        .unwrap();
    assert_eq!(r.value, AccelValue::Scalar(10.0));
    manager
        .request_reconfiguration(tiles[0], AcceleratorKind::Sort)
        .unwrap();
    let r = manager
        .run(
            tiles[0],
            &AccelOp::Sort {
                data: vec![9.0, 5.0, 7.0],
            },
        )
        .unwrap();
    assert_eq!(r.value, AccelValue::Vector(vec![5.0, 7.0, 9.0]));
    manager
        .request_reconfiguration(tiles[0], AcceleratorKind::Mac)
        .unwrap();
    assert_eq!(manager.stats().reconfigurations, 3);
    assert_eq!(manager.stats().cache_hits, 0);
}

#[test]
fn corrupted_bitstream_is_rejected_by_the_icap_crc() {
    let design = SocDesign::grid_3x3("corrupt", vec![vec![AcceleratorKind::Mac]], false).unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let tile = design.config.reconfigurable_tiles()[0];
    let info = &out.partial_bitstreams[0];
    // Flip a payload bit deep inside the stream.
    let mut words = info.bitstream.words().to_vec();
    let idx = words.len() / 2;
    words[idx] ^= 0x1000;
    let corrupted = info.bitstream.with_words(words);

    let soc = Soc::with_part(&design.config, design.part).unwrap();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tile, AcceleratorKind::Mac, corrupted.clone())
        .unwrap();
    let mut manager = ReconfigManager::new(soc, registry);
    // The registry re-verifies the build-time integrity checksum at lookup,
    // so the corruption is caught before the ICAP is ever touched: no
    // retries, no reconfiguration attempt, a permanent rejection.
    let err = manager.request_reconfiguration(tile, AcceleratorKind::Mac);
    match err {
        Err(RuntimeError::CorruptBitstream { .. }) => {}
        other => panic!("expected the registry integrity check to reject, got {other:?}"),
    }
    assert_eq!(manager.stats().retries, 0);
    assert_eq!(manager.stats().rejected, 1);
    assert_eq!(manager.stats().reconfigurations, 0);
    assert!(manager.stats().consistent());
    // Direct ICAP programming (no runtime in between) still reports the
    // configuration-layer error itself. The rejected request never started
    // the swap protocol, so decouple the tile manually first.
    let mut soc = manager.into_soc();
    let t = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
    let raw = soc.reconfigure_at(tile, AcceleratorKind::Mac, &corrupted, t);
    match raw {
        Err(SocError::Fpga(presp::fpga::Error::CrcMismatch { .. })) => {}
        Err(SocError::Fpga(presp::fpga::Error::MalformedBitstream { .. })) => {}
        other => panic!("expected a configuration-layer error, got {other:?}"),
    }
}

#[test]
fn decoupler_gates_traffic_at_the_soc_level() {
    let (design, manager) = flow_deployment();
    let tiles = design.config.reconfigurable_tiles();
    let mut soc = manager.into_soc();
    // Manually decouple and verify the wrapper rejects execution.
    let t = soc.csr_write_at(tiles[0], csr::DECOUPLE, 1, 0).unwrap();
    let err = soc.run_accelerator_at(
        tiles[0],
        &AccelOp::Mac {
            a: vec![1.0],
            b: vec![1.0],
        },
        t,
    );
    assert!(matches!(
        err,
        Err(SocError::DecouplerProtocol { .. }) | Err(SocError::TileEmpty { .. })
    ));
}

#[test]
fn reconfigurations_serialize_on_the_shared_icap() {
    let (design, mut manager) = flow_deployment();
    let tiles = design.config.reconfigurable_tiles();
    // Trigger both tiles' reconfigurations at t = 0; the single ICAP must
    // serialize the loads.
    let r0 = manager
        .request_reconfiguration_at(tiles[0], AcceleratorKind::Mac, 0)
        .unwrap()
        .expect("reconfigures");
    let r1 = manager
        .request_reconfiguration_at(tiles[1], AcceleratorKind::Gemm, 0)
        .unwrap()
        .expect("reconfigures");
    let (first, second) = if r0.end < r1.end {
        (&r0, &r1)
    } else {
        (&r1, &r0)
    };
    assert!(
        second.end - second.icap_cycles >= first.end - first.latency() + first.icap_cycles / 2,
        "ICAP loads should not fully overlap: {first:?} vs {second:?}"
    );
}

#[test]
fn driver_events_record_the_swap_history() {
    use presp::runtime::driver::DriverEvent;
    let (design, mut manager) = flow_deployment();
    let tile = design.config.reconfigurable_tiles()[0];
    manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap();
    manager
        .request_reconfiguration(tile, AcceleratorKind::Sort)
        .unwrap();
    let events = manager.driver_events(tile);
    assert_eq!(
        events,
        vec![
            DriverEvent::Probed {
                tile,
                kind: AcceleratorKind::Mac
            },
            DriverEvent::Removed {
                tile,
                kind: AcceleratorKind::Mac
            },
            DriverEvent::Probed {
                tile,
                kind: AcceleratorKind::Sort
            },
        ]
    );
}
