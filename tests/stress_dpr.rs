//! Deterministic DPR stress harness: seeded schedule permutations of many
//! logical application threads over multiple reconfigurable tiles, with
//! fault injection on, checked against the runtime's safety invariants —
//! plus a real-OS-thread run through the workqueue manager.
//!
//! Per seed, the harness replays a seeded interleaving of requests and
//! asserts:
//!   * no lost requests — every submitted operation completes (on the
//!     accelerator or via CPU fallback) and is counted exactly once;
//!   * stats consistency — `ManagerStats::consistent()` holds;
//!   * tile availability — every non-quarantined tile still accepts work
//!     after the storm (no lock left held);
//!   * isolation — quarantined tiles stay decoupled and never observe NoC
//!     traffic;
//!   * determinism — replaying a seed reproduces the run bit-for-bit.

use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
use presp::fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp::fpga::fault::{FaultConfig, FaultPlan, InjectedFaults, SplitMix64};
use presp::fpga::frame::FrameAddress;
use presp::runtime::manager::{ExecPath, ManagerStats, ReconfigManager, RecoveryPolicy};
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::threaded::ThreadedManager;
use presp::runtime::Error as RuntimeError;
use presp::soc::config::{SocConfig, TileCoord};
use presp::soc::sim::{csr, Soc};
use presp::soc::Error as SocError;
use std::collections::VecDeque;

const SEEDS: u64 = 200;
const APP_THREADS: usize = 4;
const OPS_PER_THREAD: usize = 6;
const TILES: usize = 2;

fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, 1 + col % 60, 0), vec![col; words])
        .unwrap();
    b.build(true)
}

fn stress_policy() -> RecoveryPolicy {
    RecoveryPolicy {
        max_retries: 2,
        backoff_cycles: 32,
        backoff_multiplier: 2,
        quarantine_after: 2,
        cpu_fallback: true,
        ..RecoveryPolicy::default()
    }
}

fn boot(seed: u64, rate: f64) -> (ReconfigManager, Vec<TileCoord>) {
    let cfg = SocConfig::grid_3x3_reconf("stress", TILES).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    soc.set_fault_plan(Some(FaultPlan::new(seed, FaultConfig::uniform(rate))));
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    (
        ReconfigManager::with_policy(soc, registry, stress_policy()),
        tiles,
    )
}

/// One operation of a logical application thread's script.
fn job_op(thread: usize, j: usize) -> (AcceleratorKind, AccelOp, AccelValue) {
    if (thread + j).is_multiple_of(2) {
        let a = (1 + thread) as f32;
        let b = (1 + j) as f32;
        (
            AcceleratorKind::Mac,
            AccelOp::Mac {
                a: vec![a; 4],
                b: vec![b; 4],
            },
            AccelValue::Scalar(4.0 * a * b),
        )
    } else {
        let data = vec![3.0, 1.0 + thread as f32, 2.0 + j as f32];
        let mut sorted = data.clone();
        sorted.sort_by(f32::total_cmp);
        (
            AcceleratorKind::Sort,
            AccelOp::Sort { data },
            AccelValue::Vector(sorted),
        )
    }
}

/// Everything observable about one seeded run; two runs of the same seed
/// must produce equal outcomes.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: ManagerStats,
    injected: InjectedFaults,
    makespan: u64,
    noc_transfers: u64,
    decoupled_rejections: u64,
    quarantined: Vec<TileCoord>,
    completions: Vec<(u64, bool)>,
}

/// Replays the seeded interleaving of `APP_THREADS` logical threads and
/// checks the per-run invariants.
fn run_schedule(seed: u64, rate: f64) -> Outcome {
    let (mut manager, tiles) = boot(seed, rate);
    // Each logical thread has a fixed script of (tile, kind, op) jobs; the
    // seeded scheduler draws which thread issues its next job, permuting
    // the interleaving across seeds while staying reproducible.
    let mut queues: Vec<VecDeque<(TileCoord, AcceleratorKind, AccelOp, AccelValue)>> = (0
        ..APP_THREADS)
        .map(|t| {
            (0..OPS_PER_THREAD)
                .map(|j| {
                    let (kind, op, expected) = job_op(t, j);
                    (tiles[(t + j) % tiles.len()], kind, op, expected)
                })
                .collect()
        })
        .collect();

    let mut sched = SplitMix64::new(seed ^ 0x5EED_5EED_5EED_5EED);
    let mut submitted = 0u64;
    let mut completions = Vec::new();
    loop {
        let alive: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if alive.is_empty() {
            break;
        }
        let pick = alive[sched.below(alive.len() as u64) as usize];
        let (tile, kind, op, expected) = queues[pick].pop_front().unwrap();
        submitted += 1;
        // Invariant: no lost requests. With CPU fallback on, every
        // operation must complete one way or the other.
        let (run, path) = manager
            .run_with_fallback(tile, kind, &op)
            .unwrap_or_else(|e| panic!("seed {seed}: lost request on {tile}: {e}"));
        assert_eq!(
            run.value, expected,
            "seed {seed}: wrong result via {path:?}"
        );
        completions.push((run.end, path == ExecPath::CpuFallback));
    }

    let stats = manager.stats();
    assert!(
        stats.consistent(),
        "seed {seed}: inconsistent stats {stats:?}"
    );
    assert_eq!(
        stats.runs + stats.fallback_runs,
        submitted,
        "seed {seed}: completions double- or under-counted: {stats:?}"
    );
    assert_eq!(submitted, (APP_THREADS * OPS_PER_THREAD) as u64);

    // Invariant: no lock left held — every non-quarantined tile still
    // accepts a request after the storm (possibly degraded, never stuck).
    let quarantined = manager.quarantined_tiles();
    for &tile in tiles.iter().filter(|t| !quarantined.contains(t)) {
        let (_, _) = manager
            .run_with_fallback(
                tile,
                AcceleratorKind::Mac,
                &AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![1.0],
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: tile {tile} wedged after storm: {e}"));
    }
    // Invariant: quarantined tiles reject new work at the manager level.
    for &tile in &quarantined {
        let err = manager.request_reconfiguration(tile, AcceleratorKind::Mac);
        assert!(
            matches!(err, Err(RuntimeError::TileQuarantined { .. })),
            "seed {seed}: quarantined {tile} accepted a request: {err:?}"
        );
    }
    let stats = manager.stats();
    assert!(
        stats.consistent(),
        "seed {seed}: inconsistent stats {stats:?}"
    );
    let makespan = manager.makespan();

    // Invariant: a tile whose load failed in hardware stays decoupled —
    // the wrapper rejects execution before any NoC transfer. (Exhaustion
    // caused purely by software-level registry misses never touches the
    // fabric, so such a tile may legitimately still be coupled; the
    // manager-level quarantine above is the guard there.)
    let mut soc = manager.into_soc();
    let noc_before = soc.noc_transfers();
    let mut rejections = soc.decoupled_rejections();
    for &tile in &quarantined {
        if soc.csr_read(tile, csr::DECOUPLE).unwrap() != 1 {
            continue;
        }
        let horizon = soc.horizon();
        let err = soc.run_accelerator_at(
            tile,
            &AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
            horizon,
        );
        assert!(
            matches!(err, Err(SocError::DecouplerProtocol { .. })),
            "seed {seed}: decoupled {tile} accepted traffic: {err:?}"
        );
        rejections += 1;
        assert_eq!(soc.decoupled_rejections(), rejections);
    }
    assert_eq!(
        soc.noc_transfers(),
        noc_before,
        "seed {seed}: NoC traffic reached a decoupled tile"
    );

    Outcome {
        stats,
        injected: soc.fault_plan().unwrap().injected(),
        makespan,
        noc_transfers: noc_before,
        decoupled_rejections: soc.decoupled_rejections(),
        quarantined,
        completions,
    }
}

#[test]
fn two_hundred_seeded_interleavings_hold_all_invariants() {
    let mut total_faults = 0u64;
    let mut total_retries = 0u64;
    let mut total_fallbacks = 0u64;
    for seed in 0..SEEDS {
        let outcome = run_schedule(seed, 0.15);
        total_faults += outcome.injected.total();
        total_retries += outcome.stats.retries;
        total_fallbacks += outcome.stats.fallback_runs;
    }
    // The harness must actually exercise the recovery machinery, not just
    // pass vacuously on fault-free runs.
    assert!(
        total_faults > 100,
        "faults were injected across seeds: {total_faults}"
    );
    assert!(total_retries > 0, "some runs retried");
    assert!(total_fallbacks > 0, "some runs degraded to the CPU");
}

#[test]
fn heavy_fault_schedules_quarantine_and_still_complete() {
    // At an 0.85 per-hook rate nearly every load fails, so requests
    // exhaust their retries back-to-back and tiles quarantine — the
    // invariants (checked inside `run_schedule`) must survive the worst
    // case, with every operation finishing on the CPU path.
    let mut any_quarantine = false;
    for seed in 0..20 {
        let outcome = run_schedule(seed, 0.85);
        any_quarantine |= !outcome.quarantined.is_empty();
        assert!(
            outcome.stats.retries_exhausted > 0,
            "seed {seed}: {:?}",
            outcome.stats
        );
    }
    assert!(any_quarantine, "heavy faults quarantined at least one tile");
}

#[test]
fn same_seed_reproduces_the_run_bit_for_bit() {
    for seed in [0, 7, 42, 99, 143, 199] {
        let first = run_schedule(seed, 0.2);
        let second = run_schedule(seed, 0.2);
        assert_eq!(first, second, "seed {seed} diverged between runs");
    }
}

#[test]
fn fault_free_schedules_never_degrade() {
    for seed in 0..20 {
        let outcome = run_schedule(seed, 0.0);
        assert_eq!(outcome.injected.total(), 0);
        assert_eq!(outcome.stats.retries, 0);
        assert_eq!(outcome.stats.fallback_runs, 0);
        assert!(outcome.quarantined.is_empty());
        assert!(outcome.completions.iter().all(|&(_, fell_back)| !fell_back));
    }
}

// ---- scrubber-enabled seed matrix ---------------------------------------

/// Everything observable about one scrubbed run; same-seed runs must be
/// byte-identical down to the trace log.
struct ScrubOutcome {
    stats: ManagerStats,
    quarantined: Vec<TileCoord>,
    seu_events: usize,
    repaired_events: usize,
    trace: String,
}

/// Replays a seeded interleaving with SEUs striking configuration memory
/// and a periodic scrub sweep interleaved with the request storm.
fn run_scrubbed_schedule(seed: u64) -> ScrubOutcome {
    use presp::events::trace::{log_lines, TraceEvent};
    use presp::events::MemorySink;

    let cfg = SocConfig::grid_3x3_reconf("scrub-stress", TILES).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    // CRC faults exercise retry/fallback; SEUs (some double-bit) exercise
    // the ECC repair and quarantine paths.
    soc.set_fault_plan(Some(FaultPlan::new(
        seed,
        FaultConfig::uniform(0.08).with_seu(200.0, 0.15),
    )));
    let sink = MemorySink::shared();
    soc.attach_tracer(sink.clone());
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let mut manager = ReconfigManager::with_policy(soc, registry, stress_policy());

    let mut queues: Vec<VecDeque<(TileCoord, AcceleratorKind, AccelOp, AccelValue)>> = (0
        ..APP_THREADS)
        .map(|t| {
            (0..OPS_PER_THREAD)
                .map(|j| {
                    let (kind, op, expected) = job_op(t, j);
                    (tiles[(t + j) % tiles.len()], kind, op, expected)
                })
                .collect()
        })
        .collect();
    let mut sched = SplitMix64::new(seed ^ 0x5C7B_5C7B_5C7B_5C7B);
    let mut submitted = 0u64;
    loop {
        let alive: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if alive.is_empty() {
            break;
        }
        let pick = alive[sched.below(alive.len() as u64) as usize];
        let (tile, kind, op, expected) = queues[pick].pop_front().unwrap();
        submitted += 1;
        // Invariant: no lost requests, even with the scrubber interleaved.
        let (run, path) = manager
            .run_with_fallback(tile, kind, &op)
            .unwrap_or_else(|e| panic!("seed {seed}: lost request on {tile}: {e}"));
        assert_eq!(
            run.value, expected,
            "seed {seed}: wrong result via {path:?}"
        );
        // Periodic scrub sweep, like a background scrubber waking up.
        if submitted.is_multiple_of(4) {
            let at = manager.makespan();
            manager.scrub_all_at(at).unwrap();
        }
    }
    assert_eq!(submitted, (APP_THREADS * OPS_PER_THREAD) as u64);

    // Drain whatever struck during the storm, disarm the SEU source, and
    // confirm: a final sweep over every non-quarantined tile must come
    // back clean — every upset was repaired, or its tile quarantined.
    let at = manager.makespan();
    manager.scrub_all_at(at).unwrap();
    manager.soc_mut().set_fault_plan(None);
    let confirm = manager.scrub_all_at(manager.makespan()).unwrap();
    for (tile, report) in &confirm {
        assert!(
            report.is_clean(),
            "seed {seed}: latent damage on {tile} survived the final sweep"
        );
    }

    let stats = manager.stats();
    assert!(
        stats.consistent(),
        "seed {seed}: inconsistent stats {stats:?}"
    );
    let quarantined = manager.quarantined_tiles();
    let records = presp::events::sink::snapshot(&sink);
    let seu_events = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::SeuInjected { .. }))
        .count();
    let repaired_events = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::FrameRepaired { .. }))
        .count();
    // Every repair the manager counted is visible in the trace.
    assert_eq!(
        repaired_events as u64, stats.frames_repaired,
        "seed {seed}: trace and stats disagree on repairs"
    );
    // Every quarantine decision is visible in the trace.
    let quarantine_events = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Quarantine { entered: true, .. }))
        .count() as u64;
    assert!(
        quarantine_events >= stats.scrub_quarantines,
        "seed {seed}: scrub quarantines missing from the trace"
    );
    ScrubOutcome {
        stats,
        quarantined,
        seu_events,
        repaired_events,
        trace: log_lines(&records),
    }
}

#[test]
fn scrubbed_seed_matrix_repairs_or_quarantines_every_upset() {
    let mut total_seus = 0usize;
    let mut total_repairs = 0usize;
    let mut total_quarantines = 0u64;
    for seed in 0..30 {
        let outcome = run_scrubbed_schedule(seed);
        total_seus += outcome.seu_events;
        total_repairs += outcome.repaired_events;
        total_quarantines += outcome.stats.scrub_quarantines;
        assert_eq!(
            !outcome.quarantined.is_empty(),
            outcome.stats.quarantines >= 1
        );
    }
    // The matrix must actually exercise both outcomes, not pass vacuously.
    assert!(
        total_seus > 50,
        "SEUs were injected across seeds: {total_seus}"
    );
    assert!(total_repairs > 0, "some upsets were ECC-repaired");
    assert!(
        total_quarantines > 0,
        "some double-bit upsets forced a quarantine"
    );
}

#[test]
fn scrubbed_runs_are_trace_identical_per_seed() {
    for seed in [3, 11, 27] {
        let first = run_scrubbed_schedule(seed);
        let second = run_scrubbed_schedule(seed);
        assert_eq!(first.stats, second.stats, "seed {seed} stats diverged");
        assert_eq!(
            first.trace, second.trace,
            "seed {seed}: trace logs are not byte-identical"
        );
    }
}

// ---- multi-worker determinism -------------------------------------------

/// Replays a seeded blocking script through the sharded worker pool and
/// captures everything virtual-time observable: stats, makespan and the
/// full trace log. The ticket gate commits critical sections in strict
/// admission order, so the triple must be *identical for any worker
/// count* — `workers = 4` must replay `workers = 1` byte for byte.
fn run_threaded_schedule(seed: u64, workers: usize) -> (ManagerStats, u64, String) {
    use presp::events::trace::log_lines;
    use presp::events::MemorySink;

    let cfg = SocConfig::grid_3x3_reconf("mw-stress", 4).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    soc.set_fault_plan(Some(FaultPlan::new(seed, FaultConfig::uniform(0.1))));
    let sink = MemorySink::shared();
    soc.attach_tracer(sink.clone());
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let manager: ThreadedManager =
        ThreadedManager::spawn_with_workers(soc, registry, stress_policy(), workers);

    // Single blocking submitter: each request completes before the next
    // is admitted, so the submission order — and therefore the ticket
    // order the gate commits in — is a pure function of the seed.
    let mut queues: Vec<VecDeque<(TileCoord, AcceleratorKind, AccelOp, AccelValue)>> = (0
        ..APP_THREADS)
        .map(|t| {
            (0..OPS_PER_THREAD)
                .map(|j| {
                    let (kind, op, expected) = job_op(t, j);
                    (tiles[(t + j) % tiles.len()], kind, op, expected)
                })
                .collect()
        })
        .collect();
    let mut sched = SplitMix64::new(seed ^ 0xD47E_D47E_D47E_D47E);
    loop {
        let alive: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if alive.is_empty() {
            break;
        }
        let pick = alive[sched.below(alive.len() as u64) as usize];
        let (tile, kind, op, expected) = queues[pick].pop_front().unwrap();
        let (run, path) = manager
            .execute_blocking(tile, kind, op)
            .unwrap_or_else(|e| panic!("seed {seed}: lost request on {tile}: {e}"));
        assert_eq!(
            run.value, expected,
            "seed {seed}: wrong result via {path:?}"
        );
    }

    let stats = manager.stats();
    assert!(
        stats.consistent(),
        "seed {seed}: inconsistent stats {stats:?}"
    );
    let makespan = manager.makespan();
    manager.shutdown();
    let trace = log_lines(&presp::events::sink::snapshot(&sink));
    (stats, makespan, trace)
}

#[test]
fn worker_count_does_not_change_the_virtual_world() {
    for seed in [1, 13, 77] {
        let (stats_1, makespan_1, trace_1) = run_threaded_schedule(seed, 1);
        let (stats_4, makespan_4, trace_4) = run_threaded_schedule(seed, 4);
        assert_eq!(stats_1, stats_4, "seed {seed}: stats diverged");
        assert_eq!(makespan_1, makespan_4, "seed {seed}: makespan diverged");
        assert_eq!(
            trace_1, trace_4,
            "seed {seed}: trace logs are not byte-identical across worker counts"
        );
    }
}

/// Asynchronous flavor: the whole seeded script is admitted before any
/// completion is awaited, so with four workers the behavioral
/// evaluations genuinely overlap — yet the ticket gate keeps every
/// virtual-time outcome (values, stats, makespan) equal to the
/// single-worker run. (`Execute` jobs never coalesce, so the comparison
/// is exact; queue-depth trace fields are wall-clock shaped and excluded
/// by comparing outcomes, not logs.)
fn run_async_burst(seed: u64, workers: usize) -> (ManagerStats, u64) {
    let cfg = SocConfig::grid_3x3_reconf("mw-async", 4).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    soc.set_fault_plan(Some(FaultPlan::new(seed, FaultConfig::uniform(0.1))));
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let manager: ThreadedManager =
        ThreadedManager::spawn_with_workers(soc, registry, stress_policy(), workers);

    let mut queues: Vec<VecDeque<(TileCoord, AcceleratorKind, AccelOp, AccelValue)>> = (0
        ..APP_THREADS)
        .map(|t| {
            (0..OPS_PER_THREAD)
                .map(|j| {
                    let (kind, op, expected) = job_op(t, j);
                    (tiles[(t + j) % tiles.len()], kind, op, expected)
                })
                .collect()
        })
        .collect();
    let mut sched = SplitMix64::new(seed ^ 0xA5F0_A5F0_A5F0_A5F0);
    let mut pendings = Vec::new();
    loop {
        let alive: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if alive.is_empty() {
            break;
        }
        let pick = alive[sched.below(alive.len() as u64) as usize];
        let (tile, kind, op, expected) = queues[pick].pop_front().unwrap();
        pendings.push((manager.submit_execute(tile, kind, op), expected, tile));
    }
    for (pending, expected, tile) in pendings {
        let (run, path) = pending
            .wait()
            .unwrap_or_else(|e| panic!("seed {seed}: lost request on {tile}: {e}"));
        assert_eq!(
            run.value, expected,
            "seed {seed}: wrong result via {path:?}"
        );
    }

    let stats = manager.stats();
    assert!(
        stats.consistent(),
        "seed {seed}: inconsistent stats {stats:?}"
    );
    let makespan = manager.makespan();
    manager.shutdown();
    (stats, makespan)
}

#[test]
fn async_overlap_still_replays_the_single_worker_outcome() {
    for seed in [5, 21, 143] {
        let (stats_1, makespan_1) = run_async_burst(seed, 1);
        let (stats_4, makespan_4) = run_async_burst(seed, 4);
        assert_eq!(stats_1, stats_4, "seed {seed}: stats diverged");
        assert_eq!(makespan_1, makespan_4, "seed {seed}: makespan diverged");
    }
}

#[test]
fn coalesced_reconfigure_burst_loads_once_and_answers_everyone() {
    let cfg = SocConfig::grid_3x3_reconf("coalesce", 2).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let manager: ThreadedManager =
        ThreadedManager::spawn_with_workers(soc, registry, stress_policy(), 1);

    // Occupy the single worker: its lock-free behavioral evaluation of a
    // two-million-element sort takes real wall time, during which it
    // cannot claim anything else.
    let big: Vec<f32> = (0..2_000_000).rev().map(|i| i as f32).collect();
    let busy = manager.submit_execute(tiles[1], AcceleratorKind::Sort, AccelOp::Sort { data: big });

    // Burst: ten identical reconfigurations on the other tile. The first
    // is enqueued behind the busy worker; the other nine tail-fold into
    // it — deterministically, because claim order follows the global
    // ticket order and the only worker is pinned on the sort.
    let burst: Vec<_> = (0..10)
        .map(|_| manager.submit_reconfigure(tiles[0], AcceleratorKind::Mac))
        .collect();
    for pending in burst {
        pending.wait().expect("every coalesced waiter is answered");
    }
    let (run, _path) = busy.wait().unwrap();
    match run.value {
        AccelValue::Vector(v) => {
            assert_eq!(v.len(), 2_000_000);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "sort came back wrong");
        }
        other => panic!("unexpected result {other:?}"),
    }

    let stats = manager.stats();
    // 10 burst requests + 1 ensure-load inside the execute; one physical
    // load each for the burst and the execute.
    assert_eq!(stats.coalesced, 9, "{stats:?}");
    assert_eq!(stats.reconfig_requests, 11, "{stats:?}");
    assert_eq!(stats.reconfigurations, 2, "{stats:?}");
    assert!(stats.consistent(), "{stats:?}");
    let sched_stats = manager.scheduler_stats();
    assert_eq!(sched_stats.coalesced, 9);
    // Two real jobs reached a worker: the execute and the folded load.
    assert_eq!(sched_stats.admitted, 2);
    assert_eq!(sched_stats.completed, 2);
    assert!(sched_stats.wait_samples() >= 2);
    manager.shutdown();
}

#[test]
fn os_thread_stress_with_faults_completes_and_shuts_down_cleanly() {
    let cfg = SocConfig::grid_3x3_reconf("os-stress", TILES).unwrap();
    let mut soc = Soc::new(&cfg).unwrap();
    soc.set_fault_plan(Some(FaultPlan::new(77, FaultConfig::uniform(0.1))));
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let manager: ThreadedManager =
        ThreadedManager::spawn_with_policy(soc, registry, stress_policy());

    let handles: Vec<_> = (0..APP_THREADS)
        .map(|t| {
            let manager = manager.clone();
            let tiles = tiles.clone();
            std::thread::spawn(move || {
                let mut fallbacks = 0u64;
                for j in 0..OPS_PER_THREAD {
                    let (kind, op, expected) = job_op(t, j);
                    let tile = tiles[(t + j) % tiles.len()];
                    let (run, path) = manager
                        .execute_blocking(tile, kind, op)
                        .unwrap_or_else(|e| panic!("thread {t}: lost request: {e}"));
                    assert_eq!(run.value, expected);
                    if path == ExecPath::CpuFallback {
                        fallbacks += 1;
                    }
                }
                fallbacks
            })
        })
        .collect();
    let fallbacks: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("no panic"))
        .sum();

    let stats = manager.stats();
    assert!(stats.consistent(), "{stats:?}");
    assert_eq!(
        stats.runs + stats.fallback_runs,
        (APP_THREADS * OPS_PER_THREAD) as u64
    );
    assert_eq!(stats.fallback_runs, fallbacks);

    // Clean shutdown: joins the worker (a hang here fails the test), and
    // later submissions are answered, not dropped.
    manager.shutdown();
    let err = manager.execute_blocking(
        tiles[0],
        AcceleratorKind::Mac,
        AccelOp::Mac {
            a: vec![1.0],
            b: vec![1.0],
        },
    );
    assert!(matches!(err, Err(RuntimeError::ManagerStopped)));
}
