//! End-to-end configuration-memory integrity: seeded SEU injection, ECC
//! scrub repair, quarantine with bit-identical CPU fallback, and
//! transactional rollback of a faulted ICAP write — the acceptance
//! scenarios for the scrubbing subsystem, driven through the full
//! flow → deploy → runtime stack.

use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform;
use presp::events::trace::TraceEvent;
use presp::events::MemorySink;
use presp::fpga::fault::{FaultConfig, FaultPlan};
use presp::runtime::manager::{ReconfigManager, RecoveryPolicy, TileHealth};
use presp::runtime::Error as RuntimeError;
use presp::soc::config::TileCoord;
use presp::wami::frames::SceneGenerator;

fn deployment() -> (SocDesign, ReconfigManager, Vec<TileCoord>) {
    let design = SocDesign::grid_3x3(
        "integrity",
        vec![vec![AcceleratorKind::Mac, AcceleratorKind::Sort]],
        false,
    )
    .unwrap();
    let out = PrEspFlow::new().run(&design).unwrap();
    let manager = platform::deploy(&design, &out).unwrap();
    let tiles = design.config.reconfigurable_tiles();
    (design, manager, tiles)
}

/// Arms a fault plan whose only content is one forced SEU at `cycle`.
fn force_seu(manager: &mut ReconfigManager, cycle: u64, double_bit: bool) {
    let mut plan = FaultPlan::new(17, FaultConfig::uniform(0.0));
    plan.force_seu(cycle, double_bit);
    manager.soc_mut().set_fault_plan(Some(plan));
}

#[test]
fn single_bit_upset_is_detected_corrected_and_traced() {
    let (_design, mut manager, tiles) = deployment();
    let tile = tiles[0];
    let sink = MemorySink::shared();
    manager.soc_mut().attach_tracer(sink.clone());
    manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap();
    let strike_at = manager.makespan();
    force_seu(&mut manager, strike_at, false);

    let report = manager.scrub_tile_at(tile, manager.makespan()).unwrap();
    assert_eq!(report.corrected.len(), 1, "one frame ECC-corrected");
    assert!(report.uncorrectable.is_empty());
    assert_eq!(manager.tile_health(tile), TileHealth::Degraded);

    // The accelerator still computes correctly after the repair.
    let run = manager
        .run(
            tile,
            &AccelOp::Mac {
                a: vec![3.0],
                b: vec![4.0],
            },
        )
        .unwrap();
    assert_eq!(run.value, AccelValue::Scalar(12.0));

    // Injection, the scrub pass, and the repair are all in the trace.
    let records = presp::events::sink::snapshot(&sink);
    let injected: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::SeuInjected {
                frame, double_bit, ..
            } => Some((frame, double_bit)),
            _ => None,
        })
        .collect();
    assert_eq!(injected.len(), 1);
    assert!(!injected[0].1, "single-bit upset");
    let repaired: Vec<_> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::FrameRepaired { frame, words } => Some((frame, words)),
            _ => None,
        })
        .collect();
    assert_eq!(repaired.len(), 1);
    assert_eq!(
        repaired[0].0, injected[0].0,
        "the struck frame was repaired"
    );
    assert!(records
        .iter()
        .any(|r| matches!(r.event, TraceEvent::ScrubPass { corrected: 1, .. })));
}

#[test]
fn double_bit_upset_quarantines_and_wami_stays_bit_identical() {
    // Two identical deployments fed the same scene: one healthy, one with
    // a double-bit upset that quarantines a tile mid-sequence. The WAMI
    // outputs must not diverge — quarantined kernels fall back to the CPU
    // and produce bit-identical results.
    let design = SocDesign::wami_soc_x().unwrap();
    let output = PrEspFlow::new().run(&design).unwrap();
    let mut healthy = platform::deploy_wami(&design, &output, 2).unwrap();
    let mut struck = platform::deploy_wami(&design, &output, 2).unwrap();
    let mut scene_a = SceneGenerator::new(32, 32, 4);
    let mut scene_b = SceneGenerator::new(32, 32, 4);

    let frame = scene_a.next_frame();
    let h1 = healthy.process_frame(&frame).unwrap();
    let s1 = struck.process_frame(&scene_b.next_frame()).unwrap();
    assert_eq!(h1.changed_pixels, s1.changed_pixels);

    // Strike a configured frame with a double-bit upset, then sweep: the
    // owning tile must quarantine.
    let mgr = struck.manager_mut();
    let strike_at = mgr.makespan();
    force_seu(mgr, strike_at, true);
    let sweep_at = mgr.makespan();
    let reports = mgr.scrub_all_at(sweep_at).unwrap();
    let quarantined: Vec<TileCoord> = reports
        .iter()
        .filter(|(_, r)| !r.uncorrectable.is_empty())
        .map(|(t, _)| *t)
        .collect();
    assert_eq!(quarantined.len(), 1, "exactly one tile took the hit");
    assert_eq!(mgr.tile_health(quarantined[0]), TileHealth::Quarantined);
    assert!(mgr.is_quarantined(quarantined[0]));

    // Same scene, next frame: outputs stay bit-identical, but the struck
    // SoC visibly degraded to the CPU for the quarantined tile's kernels.
    let h2 = healthy.process_frame(&scene_a.next_frame()).unwrap();
    let s2 = struck.process_frame(&scene_b.next_frame()).unwrap();
    assert_eq!(h2.changed_pixels, s2.changed_pixels, "pixel-exact output");
    assert_eq!(h2.registration, s2.registration, "bit-identical warp");
    assert!(
        s2.cpu_fallbacks > h2.cpu_fallbacks,
        "the struck run degraded to the CPU: {s2:?} vs {h2:?}"
    );
}

#[test]
fn faulted_icap_write_rolls_back_to_the_pre_transaction_image() {
    let (_design, mut manager, tiles) = deployment();
    let tile = tiles[0];
    // One attempt, no retries: a faulted write must fail the transaction.
    manager.set_policy(RecoveryPolicy {
        max_retries: 0,
        backoff_cycles: 16,
        backoff_multiplier: 2,
        quarantine_after: 8,
        cpu_fallback: false,
        ..RecoveryPolicy::default()
    });
    let sink = MemorySink::shared();
    manager.soc_mut().attach_tracer(sink.clone());
    manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap();
    let before = manager.soc().dfxc().config_memory().clone();

    let mut plan = FaultPlan::new(23, FaultConfig::uniform(0.0));
    plan.force_icap_fault(0);
    manager.soc_mut().set_fault_plan(Some(plan));
    let err = manager.request_reconfiguration(tile, AcceleratorKind::Sort);
    assert!(
        matches!(err, Err(RuntimeError::RetriesExhausted { .. })),
        "the faulted load must fail: {err:?}"
    );

    // Transactional: the fabric is bit-for-bit the pre-transaction image —
    // no half-written Sort frames, the Mac region intact.
    assert!(
        before.diff(manager.soc().dfxc().config_memory()).is_empty(),
        "fabric state equals the pre-transaction snapshot"
    );
    let records = presp::events::sink::snapshot(&sink);
    assert!(
        records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::RollbackCompleted { frames, .. } if frames > 0)),
        "the rollback is visible in the trace"
    );
    // The driver was unbound when the swap started, so the tile needs a
    // (clean) re-request; the rolled-back fabric then serves Mac again.
    manager.soc_mut().set_fault_plan(None);
    manager
        .request_reconfiguration(tile, AcceleratorKind::Mac)
        .unwrap();
    let run = manager
        .run(
            tile,
            &AccelOp::Mac {
                a: vec![2.0],
                b: vec![5.0],
            },
        )
        .unwrap();
    assert_eq!(run.value, AccelValue::Scalar(10.0));
}
