//! Workspace-level model checking of the DPR runtime.
//!
//! The flagship test runs the *production* `ThreadedManager` protocol —
//! the same source that ships, instantiated with `CheckSync` instead of
//! `StdSync` — under `presp-check`'s bounded schedule explorer: two
//! application threads contend over two reconfigurable tiles, swapping
//! accelerators and dispatching work through the workqueue, and every
//! explored terminal state must be race-free, deadlock-free, lock-order
//! acyclic, and leave `ManagerStats` consistent.
//!
//! The sharded sweep does the same with the full multi-worker scheduler:
//! four workers × four tiles, overlapped asynchronous submissions, and a
//! committed lock-inversion mutant the checker must catch *and* replay
//! deterministically from its printed schedule.
//!
//! The schedule budget defaults to 10 000 and can be turned up or down
//! with `PRESP_CHECK_MAX_SCHEDULES` (CI uses it as a wall-clock knob).

use presp::accel::catalog::AcceleratorKind;
use presp::accel::{AccelOp, AccelValue};
use presp::check::{CheckSync, Checker, Config};
use presp::events::timeline::ResourceTimeline;
use presp::fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp::fpga::frame::FrameAddress;
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::threaded::ThreadedManager;
use presp::runtime::RecoveryPolicy;
use presp::soc::config::{SocConfig, TileCoord};
use presp::soc::sim::Soc;

fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
        .unwrap();
    b.build(true)
}

/// Boots the production protocol under the checking facade. Everything is
/// constructed inside the exploration body: model state must be fresh and
/// deterministic per schedule.
fn boot_checked() -> (ThreadedManager<CheckSync>, Vec<TileCoord>) {
    let cfg = SocConfig::grid_3x3_reconf("model", 2).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    registry
        .register(tiles[0], AcceleratorKind::Sort, bitstream(&soc, 30))
        .unwrap();
    registry
        .register(tiles[1], AcceleratorKind::Mac, bitstream(&soc, 3))
        .unwrap();
    let mgr =
        ThreadedManager::<CheckSync>::spawn_with_policy(soc, registry, RecoveryPolicy::default());
    (mgr, tiles)
}

/// Two app threads × two tiles over the full request surface:
/// reconfigure (with an accelerator swap racing the caller), the
/// `run_blocking` NoDriver wait/retry loop, `execute_blocking`'s
/// ensure-loaded path, and shutdown.
fn contended_dpr_model() {
    let (mgr, tiles) = boot_checked();
    let (tile_a, tile_b) = (tiles[0], tiles[1]);

    // Swapper thread: takes tile A through SORT and back to MAC, so the
    // main thread's MAC work can observe a mid-swap NoDriver and must
    // wait on the reconfig_done condvar.
    let swapper = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("swapper", move || {
            mgr.reconfigure_blocking(tile_a, AcceleratorKind::Sort)
                .unwrap();
            mgr.reconfigure_blocking(tile_a, AcceleratorKind::Mac)
                .unwrap();
        })
    };

    // Main thread: MAC work on tile A (racing the swap) and an
    // ensure-loaded execute on tile B.
    mgr.reconfigure_blocking(tile_a, AcceleratorKind::Mac)
        .unwrap();
    for _ in 0..2 {
        let run = mgr
            .run_blocking(
                tile_a,
                AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
    }
    let (run, _path) = mgr
        .execute_blocking(
            tile_b,
            AcceleratorKind::Mac,
            AccelOp::Mac {
                a: vec![1.0],
                b: vec![4.0],
            },
        )
        .unwrap();
    assert_eq!(run.value, AccelValue::Scalar(4.0));

    swapper.join().unwrap();

    // Terminal-state invariant, checked in every explored schedule.
    let stats = mgr.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    assert!(stats.reconfigurations + stats.cache_hits >= 3);
    mgr.shutdown();
}

fn schedule_budget() -> usize {
    std::env::var("PRESP_CHECK_MAX_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

#[test]
fn dpr_runtime_protocol_is_clean_across_schedules() {
    let budget = schedule_budget();
    let checker = Checker::new(Config {
        max_schedules: budget,
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(contended_dpr_model);
    assert!(report.ok(), "{report}");
    assert!(
        report.exhausted || report.schedules >= budget,
        "explorer stopped early: {report}"
    );
    assert!(
        report.schedules > 100,
        "scenario too small to be meaningful: {report}"
    );
}

/// Scrubber + manager: the scrub daemon shares the device lock with the
/// reconfiguration worker, so its readback passes interleave with swaps
/// and stats snapshots. Every explored schedule must stay race-free,
/// deadlock-free, and lock-order acyclic (`manager` → `scrub_stats`).
fn scrubbed_dpr_model() {
    use presp::runtime::scrubber::ScrubberDaemon;
    let (mgr, tiles) = boot_checked();
    let tile = tiles[0];
    let scrubber = ScrubberDaemon::attach(&mgr);

    let swapper = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("swapper", move || {
            mgr.reconfigure_blocking(tile, AcceleratorKind::Sort)
                .unwrap();
        })
    };
    let scrub_caller = {
        let scrubber = scrubber.clone();
        presp::check::sync::spawn_named("scrub_caller", move || {
            let report = scrubber.scrub_blocking(tile).unwrap();
            assert!(report.uncorrectable.is_empty());
        })
    };

    // Main thread races a stats snapshot (manager → scrub_stats order)
    // against both workers.
    let _snapshot = scrubber.stats();
    swapper.join().unwrap();
    scrub_caller.join().unwrap();

    let stats = mgr.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    scrubber.shutdown();
    mgr.shutdown();
}

#[test]
fn scrubber_protocol_is_clean_across_schedules() {
    let budget = schedule_budget();
    let checker = Checker::new(Config {
        max_schedules: budget,
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(scrubbed_dpr_model);
    assert!(report.ok(), "{report}");
    assert!(
        report.exhausted || report.schedules >= budget,
        "explorer stopped early: {report}"
    );
    assert!(
        report.schedules > 100,
        "scenario too small to be meaningful: {report}"
    );
}

// ---- sharded multi-worker protocol ----------------------------------

/// Four workers × four tiles over the sharded scheduler: asynchronous
/// reconfigurations fan out to every tile while a second app thread
/// drives the ensure-loaded blocking path on tile 0. All four workers
/// race over the queue, the ticket gate, the tile shards and the device
/// core, so every edge of the `gate` → `tile_state` → `core` lock-order
/// graph is exercised in every schedule.
fn sharded_multi_worker_model() {
    let cfg = SocConfig::grid_3x3_reconf("model4", 4).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
    }
    let mgr = ThreadedManager::<CheckSync>::spawn_with_workers(
        soc,
        registry,
        RecoveryPolicy::default(),
        4,
    );
    // Sharded tracing in the model: every worker commits through its own
    // shard, so the sink protocol itself is under exploration too.
    let sink = presp::events::ShardedSink::new(4);
    mgr.attach_sharded_tracer(&sink);

    // Fan out: one asynchronous reconfiguration per tile, all admitted
    // before any completion is awaited, so the four workers can overlap.
    let pendings: Vec<_> = tiles
        .iter()
        .map(|&tile| mgr.submit_reconfigure(tile, AcceleratorKind::Mac))
        .collect();

    // A second app thread exercises the blocking ensure-loaded path on
    // tile 0 concurrently with the fan-out.
    let runner = {
        let mgr = mgr.clone();
        let tile = tiles[0];
        presp::check::sync::spawn_named("runner", move || {
            let (run, _path) = mgr
                .execute_blocking(
                    tile,
                    AcceleratorKind::Mac,
                    AccelOp::Mac {
                        a: vec![2.0],
                        b: vec![3.0],
                    },
                )
                .unwrap();
            assert_eq!(run.value, AccelValue::Scalar(6.0));
        })
    };

    for pending in pendings {
        pending.wait().unwrap();
    }
    runner.join().unwrap();

    let stats = mgr.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    // Four tiles each loaded MAC at least once (the execute may add a
    // fifth load or coalesce, depending on the schedule).
    assert!(
        stats.reconfigurations + stats.cache_hits >= 4,
        "missing loads: {stats:?}"
    );
    mgr.shutdown();

    // The merged shard drain is a dense, strictly ordered seq sequence in
    // every explored schedule — the invariant byte-identical logs rest on.
    let merged = sink.drain_merged();
    assert!(!merged.is_empty(), "sharded commits must trace");
    for (i, record) in merged.iter().enumerate() {
        assert_eq!(record.seq, i as u64, "merged seq must be dense");
    }
}

#[test]
fn sharded_multi_worker_protocol_is_clean_across_schedules() {
    let budget = schedule_budget();
    let checker = Checker::new(Config {
        max_schedules: budget,
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(sharded_multi_worker_model);
    assert!(report.ok(), "{report}");
    assert!(
        report.exhausted || report.schedules >= budget,
        "explorer stopped early: {report}"
    );
    assert!(
        report.schedules > 100,
        "scenario too small to be meaningful: {report}"
    );
}

/// The committed shard↔core lock-inversion mutant: the worker commits
/// reconfigurations acquiring `core` → `tile_state`, the reverse of the
/// scrubber's (and every other path's) `tile_state` → `core`. Racing a
/// reconfiguration against a scrub pass must deadlock some schedule.
fn sharded_inversion_model() {
    use presp::runtime::scheduler::MutantConfig;
    use presp::runtime::scrubber::ScrubberDaemon;

    let cfg = SocConfig::grid_3x3_reconf("mutant", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    // One worker: the inversion is a two-party cycle (worker vs scrub
    // daemon); extra workers only dilute the bounded exploration.
    let mgr = ThreadedManager::<CheckSync>::spawn_with_mutants(
        soc,
        registry,
        RecoveryPolicy::default(),
        1,
        MutantConfig {
            shard_core_inversion: true,
            ..MutantConfig::default()
        },
    );
    let scrubber = ScrubberDaemon::attach(&mgr);
    let tile = tiles[0];
    let app = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("app", move || {
            mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                .unwrap();
        })
    };
    let _ = scrubber.scrub_blocking(tile);
    app.join().unwrap();
    scrubber.shutdown();
    mgr.shutdown();
}

#[test]
fn sweep_catches_and_replays_the_shard_core_inversion_mutant() {
    use presp::check::FailureKind;
    let checker = Checker::new(Config {
        max_schedules: schedule_budget(),
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(sharded_inversion_model);
    let failure = report
        .failure
        .expect("the inversion mutant must deadlock some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got: {failure}"
    );
    // The printed schedule replays the identical deadlock: the bug report
    // is a reproducer, not a coin flip.
    let replay = checker.replay(&failure.schedule, sharded_inversion_model);
    assert!(
        matches!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Deadlock { .. })
        ),
        "replay must reproduce the deadlock: {replay}"
    );
}

/// The supervised protocol under exploration: the only worker hangs on
/// ticket 0 (scripted), the watchdog's quiescence timeout steals the
/// claim blocking the gate and the released worker redoes the job under
/// its original ticket, while a second request sits admitted behind it.
/// Every schedule must end with the gate healed — no orphaned tickets,
/// no lost requests — and the supervisor's steal scan exercises the
/// `supervisor` → `gate` lock-order edge throughout.
fn supervised_recovery_model() {
    use presp::runtime::{WorkerFault, WorkerFaultPlan};
    let cfg = SocConfig::grid_3x3_reconf("sup", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    let policy = RecoveryPolicy {
        supervised: true,
        ..RecoveryPolicy::default()
    };
    let mgr = ThreadedManager::<CheckSync>::spawn_with_workers(soc, registry, policy, 1);
    mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
    let tile = tiles[0];
    let app = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("app", move || {
            mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                .unwrap();
        })
    };
    // Whichever request draws ticket 0 hangs; the other is admitted
    // behind it and must still commit in ticket order after the steal.
    let (run, _path) = mgr
        .execute_blocking(
            tile,
            AcceleratorKind::Mac,
            AccelOp::Mac {
                a: vec![2.0],
                b: vec![3.0],
            },
        )
        .unwrap();
    assert_eq!(run.value, AccelValue::Scalar(6.0));
    app.join().unwrap();
    // Shutdown joins the workers, so the orphan invariant is quiescent.
    mgr.shutdown();
    assert_eq!(mgr.orphaned_tickets(), 0, "healed gate left orphans");
    let stats = mgr.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    let sup = mgr.supervisor_stats();
    assert_eq!(sup.hangs_injected, 1, "scripted hang must fire: {sup:?}");
    assert!(sup.redispatches >= 1, "steal must redispatch: {sup:?}");
}

#[test]
fn supervised_protocol_is_clean_across_schedules() {
    let budget = schedule_budget();
    let checker = Checker::new(Config {
        max_schedules: budget,
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(supervised_recovery_model);
    assert!(report.ok(), "{report}");
    assert!(
        report.exhausted || report.schedules >= budget,
        "explorer stopped early: {report}"
    );
    assert!(
        report.schedules > 100,
        "scenario too small to be meaningful: {report}"
    );
}

/// The committed supervisor↔gate lock-inversion mutant: the worker's
/// commit path flags its claim as committing while already holding the
/// gate (`gate` → `supervisor`), the reverse of the watchdog's steal
/// scan (`supervisor` → `gate`). A forced steal racing the redispatched
/// commit must deadlock some schedule.
fn supervisor_gate_inversion_model() {
    use presp::runtime::scheduler::MutantConfig;
    use presp::runtime::{WorkerFault, WorkerFaultPlan};

    let cfg = SocConfig::grid_3x3_reconf("mutants", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    let policy = RecoveryPolicy {
        supervised: true,
        ..RecoveryPolicy::default()
    };
    let mgr = ThreadedManager::<CheckSync>::spawn_with_mutants(
        soc,
        registry,
        policy,
        1,
        MutantConfig {
            supervisor_gate_inversion: true,
            ..MutantConfig::default()
        },
    );
    mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
    let tile = tiles[0];
    let app = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("app", move || {
            let _ = mgr.reconfigure_blocking(tile, AcceleratorKind::Mac);
        })
    };
    app.join().unwrap();
    mgr.shutdown();
}

#[test]
fn sweep_catches_and_replays_the_supervisor_gate_inversion_mutant() {
    use presp::check::FailureKind;
    let checker = Checker::new(Config {
        max_schedules: schedule_budget(),
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(supervisor_gate_inversion_model);
    let failure = report
        .failure
        .expect("the supervisor/gate inversion mutant must deadlock some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got: {failure}"
    );
    let replay = checker.replay(&failure.schedule, supervisor_gate_inversion_model);
    assert!(
        matches!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Deadlock { .. })
        ),
        "replay must reproduce the deadlock: {replay}"
    );
}

/// The committed queue↔admission lock-inversion mutant: the worker's
/// completion path acquires `tile_queue` → `sched_admission`, the reverse
/// of every admission path's `sched_admission` → `tile_queue`. A
/// submitter racing a completing worker must deadlock some schedule.
fn queue_admission_inversion_model() {
    use presp::runtime::scheduler::MutantConfig;

    let cfg = SocConfig::grid_3x3_reconf("mutantq", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    let mgr = ThreadedManager::<CheckSync>::spawn_with_mutants(
        soc,
        registry,
        RecoveryPolicy::default(),
        1,
        MutantConfig {
            queue_admission_inversion: true,
            ..MutantConfig::default()
        },
    );
    let tile = tiles[0];
    let app = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("app", move || {
            let _ = mgr.reconfigure_blocking(tile, AcceleratorKind::Mac);
        })
    };
    // Main thread submits to the same tile while the worker completes the
    // app thread's job: admission-side vs completion-side lock orders.
    let _ = mgr.execute_blocking(
        tile,
        AcceleratorKind::Mac,
        AccelOp::Mac {
            a: vec![1.0],
            b: vec![2.0],
        },
    );
    app.join().unwrap();
    mgr.shutdown();
}

#[test]
fn sweep_catches_and_replays_the_queue_admission_inversion_mutant() {
    use presp::check::FailureKind;
    let checker = Checker::new(Config {
        max_schedules: schedule_budget(),
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(queue_admission_inversion_model);
    let failure = report
        .failure
        .expect("the queue/admission inversion mutant must deadlock some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got: {failure}"
    );
    let replay = checker.replay(&failure.schedule, queue_admission_inversion_model);
    assert!(
        matches!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Deadlock { .. })
        ),
        "replay must reproduce the deadlock: {replay}"
    );
}

// ---- ResourceTimeline edge cases ------------------------------------
//
// The timeline arbitrates every shared resource the model-checked worker
// dispatches onto; these edges (zero-length holds, back-to-back
// contention) are exactly where off-by-one accounting would skew the
// contention numbers the paper's Fig. 4 comparison rests on.

/// The amorphous-floorplanning protocol under exploration: regions
/// enabled on the only tile, one app thread swapping the accelerator
/// (region allocate/release through the scheduler) racing the defrag
/// daemon's gate-quiesced repack pass. Every schedule must leave the
/// stats consistent and the `defrag` → `gate` → `tile_state` → `core`
/// lock order acyclic.
fn defrag_model() {
    use presp::floorplan::FitPolicy;
    use presp::runtime::defrag::Defragmenter;

    let cfg = SocConfig::grid_3x3_reconf("defrag_ws", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    let mgr =
        ThreadedManager::<CheckSync>::spawn_with_policy(soc, registry, RecoveryPolicy::default());
    mgr.enable_regions(FitPolicy::FirstFit).unwrap();
    let defrag = Defragmenter::attach(&mgr);
    let tile = tiles[0];
    let app = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("app", move || {
            mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                .unwrap();
        })
    };
    defrag.repack_blocking().unwrap();
    app.join().unwrap();
    let stats = mgr.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    defrag.shutdown();
    mgr.shutdown();
}

#[test]
fn defrag_protocol_is_clean_across_schedules() {
    let budget = schedule_budget();
    let checker = Checker::new(Config {
        max_schedules: budget,
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(defrag_model);
    assert!(report.ok(), "{report}");
    assert!(
        report.exhausted || report.schedules >= budget,
        "explorer stopped early: {report}"
    );
    assert!(
        report.schedules > 100,
        "scenario too small to be meaningful: {report}"
    );
}

/// The committed defrag gate-inversion mutant: the repack pass probes
/// every shard's `tile_state` *before* taking the commit gate — the
/// reverse of each worker's `gate` → `tile_state` commit acquisition —
/// so a worker inside its commit slot and the pass deadlock in some
/// schedule.
fn defrag_inversion_model() {
    use presp::runtime::defrag::{DefragMutantConfig, Defragmenter};

    let cfg = SocConfig::grid_3x3_reconf("defrag_mutant", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    registry
        .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
        .unwrap();
    let mgr =
        ThreadedManager::<CheckSync>::spawn_with_policy(soc, registry, RecoveryPolicy::default());
    let defrag = Defragmenter::attach_with_mutants(
        &mgr,
        DefragMutantConfig {
            gate_inversion: true,
        },
    );
    let tile = tiles[0];
    let app = {
        let mgr = mgr.clone();
        presp::check::sync::spawn_named("app", move || {
            let _ = mgr.reconfigure_blocking(tile, AcceleratorKind::Mac);
        })
    };
    let _ = defrag.repack_blocking();
    app.join().unwrap();
    defrag.shutdown();
    mgr.shutdown();
}

#[test]
fn sweep_catches_and_replays_the_defrag_gate_inversion_mutant() {
    use presp::check::FailureKind;
    let checker = Checker::new(Config {
        max_schedules: schedule_budget(),
        preemption_bound: Some(2),
        max_steps: 50_000,
    });
    let report = checker.explore(defrag_inversion_model);
    let failure = report
        .failure
        .expect("the defrag gate-inversion mutant must deadlock some schedule");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected deadlock, got: {failure}"
    );
    let replay = checker.replay(&failure.schedule, defrag_inversion_model);
    assert!(
        matches!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Deadlock { .. })
        ),
        "replay must reproduce the deadlock: {replay}"
    );
}

#[test]
fn zero_length_reservation_holds_nothing_but_counts() {
    let mut tl = ResourceTimeline::new();
    let r = tl.reserve(7, 0);
    assert_eq!((r.start, r.end, r.waited), (7, 7, 0));
    assert_eq!(r.duration(), 0);
    assert_eq!(tl.free_at(), 7, "a zero-length hold still moves free_at");
    assert_eq!(tl.reservations(), 1);
    assert_eq!(tl.busy_cycles(), 0, "zero-length holds add no busy time");
    assert_eq!(tl.contention_cycles(), 0);

    // A zero-length reservation behind a busy period still waits.
    tl.reserve(7, 10);
    let r = tl.reserve(7, 0);
    assert_eq!((r.start, r.end, r.waited), (17, 17, 10));
    assert_eq!(tl.contention_cycles(), 10);
}

#[test]
fn back_to_back_contention_accumulates_exactly() {
    let mut tl = ResourceTimeline::new();
    // Three requests all issued at cycle 0, each holding 5 cycles: they
    // serialize 0–5, 5–10, 10–15 and wait 0, 5, 10 respectively.
    let waits: Vec<u64> = (0..3).map(|_| tl.reserve(0, 5).waited).collect();
    assert_eq!(waits, vec![0, 5, 10]);
    assert_eq!(tl.free_at(), 15);
    assert_eq!(tl.busy_cycles(), 15);
    assert_eq!(tl.contention_cycles(), 15);

    // A request issued exactly at free_at is back-to-back, not contended.
    let r = tl.reserve(15, 5);
    assert_eq!(r.waited, 0);
    assert_eq!(tl.contention_cycles(), 15);
}
