//! Model-checking demo: explore the DPR runtime's workqueue protocol,
//! then catch — and deterministically replay — a seeded lock-order bug.
//!
//! Part 1 runs the *production* `ThreadedManager` protocol (instantiated
//! with the `CheckSync` facade instead of `StdSync`) under the bounded
//! schedule explorer and prints the clean report.
//!
//! Part 2 models the classic DPR driver bug the checker exists for: one
//! code path takes the ICAP lock then the driver-table lock, another
//! takes them in the opposite order. The explorer finds the deadlocking
//! interleaving, prints its schedule string, and replays it — the same
//! failure, every time.
//!
//! Run with: `cargo run --release --example model_check -- [--max-schedules N]`

use presp::accel::catalog::AcceleratorKind;
use presp::accel::{AccelOp, AccelValue};
use presp::check::sync::{spawn_named, Arc, Mutex};
use presp::check::{CheckSync, Checker, Config};
use presp::fpga::bitstream::{BitstreamBuilder, BitstreamKind};
use presp::fpga::frame::FrameAddress;
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::threaded::ThreadedManager;
use presp::runtime::RecoveryPolicy;
use presp::soc::config::SocConfig;
use presp::soc::sim::Soc;

fn max_schedules() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--max-schedules" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        }
    }
    2_000
}

/// The production workqueue protocol under the checking facade.
fn dpr_protocol_model() {
    let cfg = SocConfig::grid_3x3_reconf("demo", 1).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tile = cfg.reconfigurable_tiles()[0];
    let mut registry = BitstreamRegistry::new();
    let device = soc.part().device();
    let words = device.part().family().frame_words();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    b.add_frame(FrameAddress::new(0, 2, 0), vec![2; words])
        .unwrap();
    registry
        .register(tile, AcceleratorKind::Mac, b.build(true))
        .expect("fresh registry");

    let mgr =
        ThreadedManager::<CheckSync>::spawn_with_policy(soc, registry, RecoveryPolicy::default());
    let app = mgr.clone();
    let worker = spawn_named("app", move || {
        app.reconfigure_blocking(tile, AcceleratorKind::Mac)
            .unwrap();
        let run = app
            .run_blocking(
                tile,
                AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
    });
    worker.join().unwrap();
    assert!(mgr.stats().consistent());
    mgr.shutdown();
}

/// A seeded lock-order inversion: the bug class `presp-check` catches.
fn inverted_lock_model() {
    let icap = Arc::new(Mutex::labeled("icap", ()));
    let drivers = Arc::new(Mutex::labeled("driver_table", ()));
    let (icap2, drivers2) = (Arc::clone(&icap), Arc::clone(&drivers));
    // Reconfiguration path: ICAP first, then the driver table.
    let reconfig = spawn_named("reconfig", move || {
        let _icap = icap2.lock();
        let _drivers = drivers2.lock();
    });
    // Probe path: driver table first, then the ICAP — the inversion.
    {
        let _drivers = drivers.lock();
        let _icap = icap.lock();
    }
    reconfig.join().unwrap();
}

fn main() {
    let budget = max_schedules();
    let checker = || {
        Checker::new(Config {
            max_schedules: budget,
            preemption_bound: Some(2),
            max_steps: 50_000,
        })
    };

    println!("=== 1. production DPR protocol under CheckSync ===");
    let report = checker().explore(dpr_protocol_model);
    println!("{report}\n");
    assert!(report.ok(), "the shipped protocol must explore clean");

    println!("=== 2. seeded ICAP/driver-table lock inversion ===");
    let report = checker().explore(inverted_lock_model);
    println!("{report}\n");
    let failure = report
        .failure
        .expect("the explorer must find the deadlocking interleaving");

    println!("=== 3. deterministic replay of that schedule ===");
    let replay = checker().replay(&failure.schedule, inverted_lock_model);
    println!("{replay}\n");
    assert!(
        replay.failure.is_some(),
        "replaying the schedule must reproduce the deadlock"
    );
    println!(
        "replayed schedule `{}` reproduced the deadlock deterministically",
        failure.schedule
    );
}
