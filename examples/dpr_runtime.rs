//! DPR runtime demo: OS threads sharing a reconfigurable SoC through the
//! workqueue manager, swapping accelerators under contention.
//!
//! One thread per reconfigurable tile (the structure of the paper's
//! multi-threaded Linux control software) runs a compute loop while a
//! competing thread keeps requesting accelerator swaps; the manager's
//! locking and driver-swap protocol keeps every result correct.
//!
//! Run with: `cargo run --release --example dpr_runtime`

use presp::accel::{AccelOp, AccelValue, AcceleratorKind};
use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::runtime::registry::BitstreamRegistry;
use presp::runtime::threaded::ThreadedManager;
use presp::soc::sim::Soc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reuse the flow to get real (compressed) bitstreams for a 2-tile SoC.
    let design = SocDesign::grid_3x3(
        "runtime_demo",
        vec![
            vec![AcceleratorKind::Mac, AcceleratorKind::Sort],
            vec![AcceleratorKind::Fft, AcceleratorKind::Gemm],
        ],
        false,
    )?;
    let output = PrEspFlow::new().run(&design)?;
    let soc = Soc::with_part(&design.config, design.part)?;
    let mut registry = BitstreamRegistry::new();
    for info in &output.partial_bitstreams {
        if let Some(tile) = info.tile {
            registry.register(tile, info.kind, info.bitstream.clone())?;
        }
    }
    println!(
        "registered {} partial bitstreams ({} KB pinned)",
        registry.len(),
        registry.total_bytes() / 1024
    );

    let manager = ThreadedManager::spawn(soc, registry);
    let tiles = design.config.reconfigurable_tiles();

    // Thread 0: alternate MAC and SORT on tile 0.
    let t0 = {
        let mgr = manager.clone();
        let tile = tiles[0];
        std::thread::spawn(move || {
            for round in 0..6 {
                if round % 2 == 0 {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                    let run = mgr
                        .run_blocking(
                            tile,
                            AccelOp::Mac {
                                a: vec![2.0; 128],
                                b: vec![3.0; 128],
                            },
                        )
                        .unwrap();
                    assert_eq!(run.value, AccelValue::Scalar(768.0));
                } else {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Sort)
                        .unwrap();
                    let run = mgr
                        .run_blocking(
                            tile,
                            AccelOp::Sort {
                                data: (0..64).rev().map(|i| i as f32).collect(),
                            },
                        )
                        .unwrap();
                    match run.value {
                        AccelValue::Vector(v) => assert!(v.windows(2).all(|w| w[0] <= w[1])),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        })
    };

    // Thread 1: FFT then GEMM on tile 1, concurrently.
    let t1 = {
        let mgr = manager.clone();
        let tile = tiles[1];
        std::thread::spawn(move || {
            for round in 0..6 {
                if round % 2 == 0 {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Fft)
                        .unwrap();
                    let mut re = vec![0.0f32; 256];
                    re[1] = 1.0;
                    mgr.run_blocking(
                        tile,
                        AccelOp::Fft {
                            re,
                            im: vec![0.0; 256],
                        },
                    )
                    .unwrap();
                } else {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Gemm)
                        .unwrap();
                    let a = vec![1.0f32; 16];
                    let b = vec![2.0f32; 16];
                    mgr.run_blocking(
                        tile,
                        AccelOp::Gemm {
                            m: 4,
                            k: 4,
                            n: 4,
                            a,
                            b,
                        },
                    )
                    .unwrap();
                }
            }
        })
    };

    t0.join().expect("tile-0 thread");
    t1.join().expect("tile-1 thread");

    let stats = manager.stats();
    println!(
        "done: {} reconfigurations, {} cache hits, {} accelerator runs, {} reconfig cycles",
        stats.reconfigurations, stats.cache_hits, stats.runs, stats.reconfig_cycles
    );
    manager.shutdown();
    Ok(())
}
