//! Configuration-memory scrubbing demo: seeded SEUs strike the frames of
//! a live partial region, a readback scrub pass repairs the single-bit
//! upsets through the per-frame SECDED ECC, a double-bit upset forces a
//! quarantine, and a faulted ICAP write rolls the fabric back to the
//! golden pre-transaction image — all of it visible in the trace.
//!
//! Run with: `cargo run --release --example scrubber [seed]`
//! The same seed reproduces the same run bit for bit.

use presp::accel::{AccelOp, AcceleratorKind};
use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy;
use presp::events::trace::TraceEvent;
use presp::events::MemorySink;
use presp::fpga::fault::{FaultConfig, FaultPlan};
use presp::runtime::manager::{RecoveryPolicy, TileHealth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(7);

    let design = SocDesign::grid_3x3(
        "scrub_demo",
        vec![vec![AcceleratorKind::Mac, AcceleratorKind::Sort]],
        false,
    )?;
    let output = PrEspFlow::new().run(&design)?;
    let mut manager = deploy(&design, &output)?;
    let tile = design.config.reconfigurable_tiles()[0];
    let sink = MemorySink::shared();
    manager.soc_mut().attach_tracer(sink.clone());

    // Load the region, then arm a seeded SEU stream over its frames.
    manager.request_reconfiguration(tile, AcceleratorKind::Mac)?;
    println!(
        "tile {tile}: {} configuration frames under scrub protection",
        manager.soc().tile_region(tile).len()
    );
    let mut plan = FaultPlan::new(seed, FaultConfig::uniform(0.0).with_seu(250.0, 0.0));
    plan.force_seu(manager.makespan(), false);
    manager.soc_mut().set_fault_plan(Some(plan));

    // Compute for a while (virtual time passes, upsets accumulate), then
    // run a scrub pass — the DPR-era equivalent of the SEM controller
    // waking up.
    for i in 0..6 {
        manager.run(
            tile,
            &AccelOp::Mac {
                a: vec![i as f32; 64],
                b: vec![2.0; 64],
            },
        )?;
    }
    let at = manager.makespan();
    let report = manager.scrub_tile_at(tile, at)?;
    println!(
        "scrub pass: {} frame(s) ECC-corrected, {} uncorrectable, waited {} cycles on the ICAP",
        report.corrected.len(),
        report.uncorrectable.len(),
        report.waited
    );
    println!("tile health after repair: {:?}", manager.tile_health(tile));

    // A double-bit upset is beyond SECDED: the scrubber quarantines.
    let mut plan = FaultPlan::new(seed ^ 0xD0, FaultConfig::uniform(0.0));
    plan.force_seu(manager.makespan(), true);
    manager.soc_mut().set_fault_plan(Some(plan));
    let at = manager.makespan();
    let report = manager.scrub_tile_at(tile, at)?;
    println!(
        "double-bit strike: {} uncorrectable frame(s) → health {:?}",
        report.uncorrectable.len(),
        manager.tile_health(tile)
    );

    // Recovery: restore the golden frames and release the quarantine.
    let frames = manager.restore_golden(tile)?;
    manager.release_quarantine(tile);
    println!(
        "golden restore rewrote {frames} frame(s); health {:?}",
        manager.tile_health(tile)
    );

    // Transactional reconfiguration: a fault mid-ICAP-write rolls the
    // fabric back to the pre-transaction image instead of leaving a
    // half-written region.
    manager.set_policy(RecoveryPolicy {
        max_retries: 0,
        cpu_fallback: false,
        ..RecoveryPolicy::default()
    });
    let before = manager.soc().dfxc().config_memory().clone();
    let mut plan = FaultPlan::new(seed ^ 0xB0, FaultConfig::uniform(0.0));
    plan.force_icap_fault(0);
    manager.soc_mut().set_fault_plan(Some(plan));
    let err = manager.request_reconfiguration(tile, AcceleratorKind::Sort);
    println!("faulted swap: {}", err.unwrap_err());
    println!(
        "fabric diff vs pre-transaction image: {} frame(s)",
        before.diff(manager.soc().dfxc().config_memory()).len()
    );
    assert_eq!(manager.tile_health(tile), TileHealth::Healthy);

    // Everything above is in the trace.
    let records = presp::events::sink::snapshot(&sink);
    let count = |f: fn(&TraceEvent) -> bool| records.iter().filter(|r| f(&r.event)).count();
    println!(
        "trace: {} SEU injections, {} scrub passes, {} frame repairs, {} rollbacks",
        count(|e| matches!(e, TraceEvent::SeuInjected { .. })),
        count(|e| matches!(e, TraceEvent::ScrubPass { .. })),
        count(|e| matches!(e, TraceEvent::FrameRepaired { .. })),
        count(|e| matches!(e, TraceEvent::RollbackCompleted { .. })),
    );
    Ok(())
}
