//! Structured-tracing demo: deploy a WAMI SoC, attach a trace sink,
//! process a few frames and export the result as Chrome trace-event JSON
//! (open in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Run with: `cargo run --release --example trace_export [frames] [out.json]`
//! The trace shows every DRAM access, NoC transfer, DMA burst, decoupler
//! handshake, ICAP write, reconfiguration attempt and WAMI frame stage on
//! the shared 78 MHz virtual clock.

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy_wami;
use presp::events::trace::chrome_trace_json;
use presp::events::{MemorySink, Tracer};
use presp::wami::frames::SceneGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let frames: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(3);
    let out_path = args.next().unwrap_or_else(|| "wami.trace.json".to_string());

    // Run the CAD flow with tracing on, so the export also carries the
    // compile-time FlowStage spans and per-bitstream events.
    let design = SocDesign::wami_soc_y()?;
    let sink = MemorySink::shared();
    let mut flow_tracer = Tracer::to_sink(sink.clone());
    let output = PrEspFlow::new().run_traced(&design, &mut flow_tracer)?;

    // Deploy and attach the same sink to the SoC: runtime, NoC, ICAP and
    // application events land in the same trace, on their own timeline.
    let mut app = deploy_wami(&design, &output, 2)?;
    app.manager_mut().soc_mut().attach_tracer(sink.clone());

    let mut scene = SceneGenerator::new(48, 48, 7);
    for i in 0..frames {
        let report = app.process_frame(&scene.next_frame())?;
        println!(
            "frame {i}: {} cycles, {} reconfigurations",
            report.latency(),
            report.reconfigurations
        );
    }

    let records = presp::events::sink::drain(&sink);
    println!("captured {} trace records", records.len());
    std::fs::write(&out_path, chrome_trace_json(&records))?;
    println!("wrote {out_path} — load it in chrome://tracing or ui.perfetto.dev");
    Ok(())
}
