//! Fault-injection demo: a seeded `FaultPlan` corrupting ICAP transfers,
//! stalling the DFX controller and poisoning registry reads while the
//! runtime retries with backoff, quarantines persistently failing tiles
//! and degrades to the CPU software path.
//!
//! Run with: `cargo run --release --example fault_injection [seed] [rate]`
//! The same seed reproduces the same run bit for bit.

use presp::accel::{AccelOp, AcceleratorKind};
use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy_with_faults;
use presp::fpga::fault::FaultConfig;
use presp::runtime::manager::{ExecPath, RecoveryPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(42);
    let rate: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(0.25);

    let design = SocDesign::grid_3x3(
        "fault_demo",
        vec![
            vec![AcceleratorKind::Mac, AcceleratorKind::Sort],
            vec![AcceleratorKind::Fft, AcceleratorKind::Gemm],
        ],
        false,
    )?;
    let output = PrEspFlow::new().run(&design)?;
    let mut manager = deploy_with_faults(
        &design,
        &output,
        seed,
        FaultConfig::uniform(rate),
        RecoveryPolicy::default(),
    )?;
    println!("seed {seed}, uniform fault rate {rate}");

    // Each job targets the tile whose partition hosts that accelerator;
    // alternating Mac/Sort on tile 0 forces a reconfiguration per round.
    let tiles = design.config.reconfigurable_tiles();
    let jobs = [
        (
            0,
            AcceleratorKind::Mac,
            AccelOp::Mac {
                a: vec![1.0, 2.0, 3.0],
                b: vec![4.0, 5.0, 6.0],
            },
        ),
        (
            0,
            AcceleratorKind::Sort,
            AccelOp::Sort {
                data: vec![5.0, 1.0, 4.0, 2.0],
            },
        ),
        (
            1,
            AcceleratorKind::Fft,
            AccelOp::Fft {
                re: vec![1.0, 0.0, 0.0, 0.0],
                im: vec![0.0; 4],
            },
        ),
    ];
    for round in 0..4 {
        for (t, kind, op) in jobs.iter() {
            let tile = tiles[*t];
            match manager.run_with_fallback(tile, *kind, op) {
                Ok((run, path)) => {
                    let side = match path {
                        ExecPath::Accelerator => "accelerator",
                        ExecPath::CpuFallback => "cpu fallback",
                    };
                    println!(
                        "round {round}: {kind:?} on ({},{}) via {side}, done @ {} cycles",
                        tile.row, tile.col, run.end
                    );
                }
                Err(e) => println!("round {round}: {kind:?} failed: {e}"),
            }
        }
    }

    let stats = manager.stats();
    let injected = manager
        .soc()
        .fault_plan()
        .map(|p| p.injected().total())
        .unwrap_or(0);
    println!(
        "injected {injected} faults: {} reconfigurations, {} retries, \
         {} exhausted, {} quarantines, {} cpu-fallback runs",
        stats.reconfigurations,
        stats.retries,
        stats.retries_exhausted,
        stats.quarantines,
        stats.fallback_runs
    );
    assert!(stats.consistent(), "stats ledger must balance");
    Ok(())
}
