//! WAMI pipeline: software reference vs the accelerated SoC_Z deployment.
//!
//! Demonstrates that the DPR system computes bit-identical results to the
//! golden software pipeline while reporting the hardware-side timing that
//! the software path cannot provide.
//!
//! Run with: `cargo run --release --example wami_pipeline`

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::{cpu_fallback_kernels, deploy_wami};
use presp::wami::change_detection::GmmConfig;
use presp::wami::frames::SceneGenerator;
use presp::wami::lucas_kanade::LkConfig;
use presp::wami::pipeline::{Pipeline, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations = 3;
    let design = SocDesign::wami_soc_z()?;
    println!(
        "SoC_Z: {} reconfigurable tiles, CPU-fallback kernels: {:?}",
        design.tile_accels.len(),
        cpu_fallback_kernels(&design)
    );

    let output = PrEspFlow::new().run(&design)?;
    let mut hw = deploy_wami(&design, &output, iterations)?;

    // The software reference with solver settings matched to the fixed
    // iteration count of the deployment.
    let mut sw = Pipeline::new(PipelineConfig {
        lk: LkConfig {
            max_iterations: iterations,
            epsilon: 0.0,
            border_margin: 4,
        },
        gmm: GmmConfig::default(),
    });

    let mut scene = SceneGenerator::new(64, 64, 11);
    println!("\nframe   sw changed   hw changed   hw ms/frame   reconf");
    for i in 0..5 {
        let frame = scene.next_frame();
        let sw_out = sw.process(&frame)?;
        let hw_out = hw.process_frame(&frame)?;
        assert_eq!(
            sw_out.changed_pixels, hw_out.changed_pixels,
            "software and accelerated outputs must agree"
        );
        println!(
            "{:<7} {:<12} {:<12} {:<13.2} {}",
            i,
            sw_out.changed_pixels,
            hw_out.changed_pixels,
            hw_out.latency() as f64 / 78_000.0,
            hw_out.reconfigurations
        );
    }
    println!("\noutputs are identical — the accelerated dataflow is exact");
    Ok(())
}
