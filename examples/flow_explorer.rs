//! Flow explorer: classify and compile every paper design, comparing the
//! size-driven strategy choice against forced alternatives and the
//! monolithic baseline.
//!
//! Run with: `cargo run --release --example flow_explorer`

use presp::cad::flow::{CadFlow, Strategy};
use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::strategy::choose_strategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs = vec![
        SocDesign::characterization_soc1()?,
        SocDesign::characterization_soc2()?,
        SocDesign::characterization_soc3()?,
        SocDesign::characterization_soc4()?,
        SocDesign::wami_table4("soc_a", &[4, 8, 10, 9])?,
        SocDesign::wami_table4("soc_b", &[2, 3, 11, 1])?,
        SocDesign::wami_table4("soc_c", &[7, 11, 8, 2])?,
        SocDesign::wami_table4("soc_d", &[4, 5, 9, 2])?,
    ];

    let cad = CadFlow::new();
    let flow = PrEspFlow::new();

    println!(
        "{:<8} {:<10} {:<22} {:>8} {:>8} {:>8} {:>10}",
        "design", "class", "chosen strategy", "serial", "semi-2", "fully", "monolithic"
    );
    for design in designs {
        let spec = design.to_spec()?;
        let n = spec.reconfigurable().len();
        let (class, chosen) = choose_strategy(&spec)?;

        let wall = |strategy: Strategy| -> String {
            match cad.run_pnr(&spec, strategy) {
                Ok(r) => format!("{:.0}", r.wall.value()),
                Err(_) => "-".into(),
            }
        };
        let serial = wall(Strategy::Serial);
        let semi = if n > 2 {
            wall(Strategy::SemiParallel { tau: 2 })
        } else {
            "-".into()
        };
        let fully = if n >= 2 {
            wall(Strategy::FullyParallel)
        } else {
            "-".into()
        };
        let output = flow.run(&design)?;

        println!(
            "{:<8} {:<10} {:<22} {:>8} {:>8} {:>8} {:>10.0}",
            design.name,
            format!("{class}"),
            format!("{chosen}"),
            serial,
            semi,
            fully,
            output.monolithic.pnr.value(),
        );
    }

    println!("\n(time in simulated minutes; P&R only, synthesis excluded except the last column's baseline)");
    Ok(())
}
