//! Quickstart: design → flow → bitstreams → deployed SoC → frames.
//!
//! Builds the paper's SoC_Y (three reconfigurable tiles hosting the twelve
//! WAMI accelerators minus two CPU-fallback kernels), runs the full PR-ESP
//! RTL-to-bitstream flow, deploys the result on the simulated VC707 and
//! processes a short synthetic WAMI sequence.
//!
//! Run with: `cargo run --release --example quickstart`

use presp::core::design::SocDesign;
use presp::core::flow::PrEspFlow;
use presp::core::platform::deploy_wami;
use presp::wami::frames::SceneGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The design: SoC_Y from Table VI.
    let design = SocDesign::wami_soc_y()?;
    println!("design: {} on {}", design.name, design.part);

    // 2. The fully automated flow (Fig. 1): parse, parallel synthesis,
    //    floorplan, size-driven strategy, scheduled P&R, bitstreams.
    let output = PrEspFlow::new().run(&design)?;
    println!("size class:      {}", output.class);
    println!("chosen strategy: {}", output.strategy);
    println!(
        "compile time:    {} (monolithic baseline: {})",
        output.report.total, output.monolithic.total
    );
    println!("partial bitstreams:");
    for info in &output.partial_bitstreams {
        println!(
            "  {:<10} {:<22} {:>5} KB",
            info.region,
            info.kind.name(),
            info.bitstream.size_bytes() / 1024
        );
    }

    // 3. Deploy: boot the SoC, load the bitstream registry, wire the
    //    runtime manager and the WAMI application scheduler.
    let mut app = deploy_wami(&design, &output, 2)?;

    // 4. Process frames.
    let mut scene = SceneGenerator::new(64, 64, 7);
    for i in 0..4 {
        let report = app.process_frame(&scene.next_frame())?;
        println!(
            "frame {i}: {:>7} cycles, {:>2} reconfigurations, {} changed pixels",
            report.latency(),
            report.reconfigurations,
            report.changed_pixels
        );
    }

    // 5. Energy accounting.
    let manager = app.into_manager();
    let energy = manager.soc().energy_report();
    println!(
        "energy: {:.1} mJ total over {:.2} ms ({:.2} W average)",
        energy.total_j() * 1e3,
        energy.elapsed_s * 1e3,
        energy.average_w()
    );
    Ok(())
}
