//! Behavioral accelerator execution.
//!
//! Each accelerator computes *real* results: the characterization
//! accelerators implement their algorithms directly (dot product, 2-D
//! convolution, GEMM, radix-2 FFT, merge sort) and the WAMI accelerators
//! delegate to the golden kernels in [`presp_wami`]. The SoC simulator runs
//! these behaviors when an accelerator tile is started, so a full-system run
//! produces the same numbers as the software pipeline.

use crate::catalog::AcceleratorKind;
use crate::error::Error;
use presp_wami::change_detection::{changed_pixels, ChangeDetector};
use presp_wami::debayer::debayer;
use presp_wami::gradient::{gradient, Gradients};
use presp_wami::graph::WamiKernel;
use presp_wami::grayscale::grayscale;
use presp_wami::image::{BayerImage, GrayImage, RgbImage};
use presp_wami::lucas_kanade::{
    delta_p, hessian, sd_update, steepest_descent, update_params, SdImages,
};
use presp_wami::matrix::{invert6, Mat6, Vec6};
use presp_wami::warp::{subtract, warp_image, AffineParams};

/// An operation submitted to an accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelOp {
    /// Dot product of two equal-length vectors.
    Mac {
        /// First operand.
        a: Vec<f32>,
        /// Second operand.
        b: Vec<f32>,
    },
    /// 2-D convolution of an image with a square kernel (clamped borders).
    Conv2d {
        /// Input image.
        image: GrayImage,
        /// Row-major square kernel of odd side `side`.
        kernel: Vec<f32>,
        /// Kernel side length (odd).
        side: usize,
    },
    /// Dense matrix multiply: `a` is `m×k`, `b` is `k×n`, both row-major.
    Gemm {
        /// Rows of `a`.
        m: usize,
        /// Columns of `a` / rows of `b`.
        k: usize,
        /// Columns of `b`.
        n: usize,
        /// Left operand, row-major `m×k`.
        a: Vec<f32>,
        /// Right operand, row-major `k×n`.
        b: Vec<f32>,
    },
    /// In-place radix-2 FFT (length must be a power of two).
    Fft {
        /// Real parts.
        re: Vec<f32>,
        /// Imaginary parts.
        im: Vec<f32>,
    },
    /// Ascending sort.
    Sort {
        /// Data to sort.
        data: Vec<f32>,
    },
    /// Bayer demosaic (WAMI #1).
    Debayer {
        /// Raw sensor frame.
        raw: BayerImage,
    },
    /// RGB → luminance (WAMI #2).
    Grayscale {
        /// Demosaiced frame.
        rgb: RgbImage,
    },
    /// Template gradients (WAMI #3).
    Gradient {
        /// Template image.
        image: GrayImage,
    },
    /// Affine warp (WAMI #4 / #11).
    Warp {
        /// Image to warp.
        image: GrayImage,
        /// Warp parameters.
        params: AffineParams,
    },
    /// Residual subtraction (WAMI #5).
    Subtract {
        /// Minuend.
        a: GrayImage,
        /// Subtrahend.
        b: GrayImage,
    },
    /// Steepest-descent images (WAMI #6).
    SteepestDescent {
        /// Template gradients.
        grad: Gradients,
    },
    /// Hessian accumulation (WAMI #7).
    Hessian {
        /// Steepest-descent images.
        sd: SdImages,
    },
    /// SD update vector (WAMI #8).
    SdUpdate {
        /// Steepest-descent images.
        sd: SdImages,
        /// Residual image.
        error: GrayImage,
    },
    /// 6×6 matrix inversion (WAMI #9).
    MatrixInvert {
        /// Matrix to invert.
        m: Mat6,
    },
    /// Δp solve + inverse-compositional parameter update (WAMI #10).
    DeltaP {
        /// Inverted Hessian.
        h_inv: Mat6,
        /// SD update vector.
        b: Vec6,
        /// Current parameters.
        params: AffineParams,
    },
    /// Gaussian-mixture change detection (WAMI #12).
    ///
    /// The per-pixel background model lives in DRAM and flows through the
    /// operation — the accelerator itself is stateless, so the model
    /// survives the accelerator being swapped out of its reconfigurable
    /// tile.
    ChangeDetection {
        /// Registered frame.
        frame: GrayImage,
        /// Background model (updated copy returned in the result).
        model: Box<ChangeDetector>,
    },
}

impl AccelOp {
    /// The accelerator kind that executes this operation.
    pub fn kind(&self) -> AcceleratorKind {
        use AcceleratorKind as A;
        use WamiKernel as W;
        match self {
            AccelOp::Mac { .. } => A::Mac,
            AccelOp::Conv2d { .. } => A::Conv2d,
            AccelOp::Gemm { .. } => A::Gemm,
            AccelOp::Fft { .. } => A::Fft,
            AccelOp::Sort { .. } => A::Sort,
            AccelOp::Debayer { .. } => A::Wami(W::Debayer),
            AccelOp::Grayscale { .. } => A::Wami(W::Grayscale),
            AccelOp::Gradient { .. } => A::Wami(W::Gradient),
            AccelOp::Warp { .. } => A::Wami(W::Warp),
            AccelOp::Subtract { .. } => A::Wami(W::Subtract),
            AccelOp::SteepestDescent { .. } => A::Wami(W::SteepestDescent),
            AccelOp::Hessian { .. } => A::Wami(W::Hessian),
            AccelOp::SdUpdate { .. } => A::Wami(W::SdUpdate),
            AccelOp::MatrixInvert { .. } => A::Wami(W::MatrixInvert),
            AccelOp::DeltaP { .. } => A::Wami(W::DeltaP),
            AccelOp::ChangeDetection { .. } => A::Wami(W::ChangeDetection),
        }
    }

    /// Whether `kind` can execute this operation.
    ///
    /// The warp accelerators #4 and #11 share the warp datapath, so a
    /// [`AccelOp::Warp`] runs on either.
    pub fn runs_on(&self, kind: AcceleratorKind) -> bool {
        if self.kind() == kind {
            return true;
        }
        matches!(
            (self, kind),
            (
                AccelOp::Warp { .. },
                AcceleratorKind::Wami(WamiKernel::WarpIwxp)
            )
        )
    }

    /// Abstract work size — the unit count the latency model scales with.
    pub fn work_items(&self) -> u64 {
        match self {
            AccelOp::Mac { a, .. } => a.len() as u64,
            AccelOp::Conv2d { image, side, .. } => (image.len() * side * side) as u64,
            AccelOp::Gemm { m, k, n, .. } => (m * k * n) as u64,
            AccelOp::Fft { re, .. } => {
                let n = re.len() as u64;
                n * n.max(2).ilog2() as u64
            }
            AccelOp::Sort { data } => {
                let n = data.len() as u64;
                n * n.max(2).ilog2() as u64
            }
            AccelOp::Debayer { raw } => raw.len() as u64,
            AccelOp::Grayscale { rgb } => rgb.len() as u64,
            AccelOp::Gradient { image } => image.len() as u64,
            AccelOp::Warp { image, .. } => image.len() as u64,
            AccelOp::Subtract { a, .. } => a.len() as u64,
            AccelOp::SteepestDescent { grad } => 6 * grad.dx.len() as u64,
            AccelOp::Hessian { sd } => 21 * sd.sd[0].len() as u64,
            AccelOp::SdUpdate { sd, .. } => 6 * sd.sd[0].len() as u64,
            AccelOp::MatrixInvert { .. } => 6 * 6 * 6,
            AccelOp::DeltaP { .. } => 6 * 6 + 12,
            AccelOp::ChangeDetection { frame, .. } => frame.len() as u64,
        }
    }

    /// Bytes transferred from memory into the accelerator (input DMA).
    pub fn input_bytes(&self) -> u64 {
        match self {
            AccelOp::Mac { a, b } => 4 * (a.len() + b.len()) as u64,
            AccelOp::Conv2d { image, kernel, .. } => 4 * (image.len() + kernel.len()) as u64,
            AccelOp::Gemm { a, b, .. } => 4 * (a.len() + b.len()) as u64,
            AccelOp::Fft { re, im } => 4 * (re.len() + im.len()) as u64,
            AccelOp::Sort { data } => 4 * data.len() as u64,
            AccelOp::Debayer { raw } => 2 * raw.len() as u64,
            AccelOp::Grayscale { rgb } => 12 * rgb.len() as u64,
            AccelOp::Gradient { image } => 4 * image.len() as u64,
            AccelOp::Warp { image, .. } => 4 * image.len() as u64 + 48,
            AccelOp::Subtract { a, b } => 4 * (a.len() + b.len()) as u64,
            AccelOp::SteepestDescent { grad } => 8 * grad.dx.len() as u64,
            AccelOp::Hessian { sd } => 24 * sd.sd[0].len() as u64,
            AccelOp::SdUpdate { sd, error } => (24 * sd.sd[0].len() + 4 * error.len()) as u64,
            AccelOp::MatrixInvert { .. } => 36 * 8,
            AccelOp::DeltaP { .. } => 36 * 8 + 6 * 8 + 48,
            AccelOp::ChangeDetection { frame, .. } => (4 + 36) * frame.len() as u64,
        }
    }

    /// Bytes transferred from the accelerator back to memory (output DMA).
    pub fn output_bytes(&self) -> u64 {
        match self {
            AccelOp::Mac { .. } => 4,
            AccelOp::Conv2d { image, .. } => 4 * image.len() as u64,
            AccelOp::Gemm { m, n, .. } => 4 * (m * n) as u64,
            AccelOp::Fft { re, im } => 4 * (re.len() + im.len()) as u64,
            AccelOp::Sort { data } => 4 * data.len() as u64,
            AccelOp::Debayer { raw } => 12 * raw.len() as u64,
            AccelOp::Grayscale { rgb } => 4 * rgb.len() as u64,
            AccelOp::Gradient { image } => 8 * image.len() as u64,
            AccelOp::Warp { image, .. } => 4 * image.len() as u64,
            AccelOp::Subtract { a, .. } => 4 * a.len() as u64,
            AccelOp::SteepestDescent { grad } => 24 * grad.dx.len() as u64,
            AccelOp::Hessian { .. } => 36 * 8,
            AccelOp::SdUpdate { .. } => 6 * 8,
            AccelOp::MatrixInvert { .. } => 36 * 8,
            AccelOp::DeltaP { .. } => 48,
            AccelOp::ChangeDetection { frame, .. } => 36 * frame.len() as u64 + 8,
        }
    }
}

/// A value produced by an accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccelValue {
    /// A single scalar (MAC).
    Scalar(f32),
    /// A vector (sorted data, FFT halves, GEMM output, ...).
    Vector(Vec<f32>),
    /// Two vectors (FFT real/imaginary output).
    VectorPair(Vec<f32>, Vec<f32>),
    /// A grayscale image.
    Image(GrayImage),
    /// An RGB image.
    Rgb(RgbImage),
    /// Gradient pair.
    Gradients(Gradients),
    /// Steepest-descent images.
    Sd(SdImages),
    /// A 6×6 matrix.
    Mat(Mat6),
    /// A length-6 vector.
    Vec6(Vec6),
    /// Affine parameters.
    Params(AffineParams),
    /// Change-detection result: changed-pixel count plus the updated
    /// background model (written back to DRAM).
    ChangeDetection {
        /// Pixels flagged as changed.
        changed: usize,
        /// Updated background model.
        model: Box<ChangeDetector>,
    },
}

/// An accelerator instance bound to a tile.
///
/// Instances are stateless between invocations: anything that must survive
/// a reconfiguration (like the change-detection background model) travels
/// through the operations themselves, mirroring how ESP accelerators keep
/// their working set in DRAM.
#[derive(Debug)]
pub struct AccelInstance {
    kind: AcceleratorKind,
}

impl AccelInstance {
    /// Instantiates an accelerator of `kind` (freshly configured: no state).
    pub fn new(kind: AcceleratorKind) -> AccelInstance {
        AccelInstance { kind }
    }

    /// The accelerator kind.
    pub fn kind(&self) -> AcceleratorKind {
        self.kind
    }

    /// Executes one operation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongOperation`] when the operation does not match
    /// this accelerator, [`Error::BadOperands`] on shape mismatches, and
    /// kernel errors from the underlying WAMI implementations.
    pub fn execute(&mut self, op: &AccelOp) -> Result<AccelValue, Error> {
        if !op.runs_on(self.kind) {
            return Err(Error::WrongOperation {
                accelerator: self.kind.name(),
                operation: format!("{op:?}").chars().take(32).collect(),
            });
        }
        match op {
            AccelOp::Mac { a, b } => {
                if a.len() != b.len() {
                    return Err(Error::BadOperands {
                        detail: format!("mac operands {} vs {}", a.len(), b.len()),
                    });
                }
                Ok(AccelValue::Scalar(
                    a.iter().zip(b).map(|(x, y)| x * y).sum(),
                ))
            }
            AccelOp::Conv2d {
                image,
                kernel,
                side,
            } => {
                if side % 2 == 0 || kernel.len() != side * side {
                    return Err(Error::BadOperands {
                        detail: format!("conv kernel {}x{} with {} taps", side, side, kernel.len()),
                    });
                }
                Ok(AccelValue::Image(convolve2d(image, kernel, *side)))
            }
            AccelOp::Gemm { m, k, n, a, b } => {
                if a.len() != m * k || b.len() != k * n {
                    return Err(Error::BadOperands {
                        detail: format!(
                            "gemm {}x{} · {}x{} with {}/{} elements",
                            m,
                            k,
                            k,
                            n,
                            a.len(),
                            b.len()
                        ),
                    });
                }
                Ok(AccelValue::Vector(gemm(*m, *k, *n, a, b)))
            }
            AccelOp::Fft { re, im } => {
                if re.len() != im.len() || !re.len().is_power_of_two() {
                    return Err(Error::BadOperands {
                        detail: format!(
                            "fft lengths {}/{} (need equal power of two)",
                            re.len(),
                            im.len()
                        ),
                    });
                }
                let (r, i) = fft(re.clone(), im.clone());
                Ok(AccelValue::VectorPair(r, i))
            }
            AccelOp::Sort { data } => {
                let mut out = data.clone();
                out.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                Ok(AccelValue::Vector(out))
            }
            AccelOp::Debayer { raw } => Ok(AccelValue::Rgb(debayer(raw)?)),
            AccelOp::Grayscale { rgb } => Ok(AccelValue::Image(grayscale(rgb)?)),
            AccelOp::Gradient { image } => Ok(AccelValue::Gradients(gradient(image)?)),
            AccelOp::Warp { image, params } => Ok(AccelValue::Image(warp_image(image, params)?)),
            AccelOp::Subtract { a, b } => Ok(AccelValue::Image(subtract(a, b)?)),
            AccelOp::SteepestDescent { grad } => Ok(AccelValue::Sd(steepest_descent(grad)?)),
            AccelOp::Hessian { sd } => Ok(AccelValue::Mat(hessian(sd))),
            AccelOp::SdUpdate { sd, error } => Ok(AccelValue::Vec6(sd_update(sd, error)?)),
            AccelOp::MatrixInvert { m } => Ok(AccelValue::Mat(invert6(m)?)),
            AccelOp::DeltaP { h_inv, b, params } => {
                let dp = delta_p(h_inv, b);
                Ok(AccelValue::Params(update_params(params, &dp)?))
            }
            AccelOp::ChangeDetection { frame, model } => {
                let mut model = model.clone();
                let mask = model.update(frame)?;
                Ok(AccelValue::ChangeDetection {
                    changed: changed_pixels(&mask),
                    model,
                })
            }
        }
    }
}

/// 2-D convolution with clamped borders.
fn convolve2d(image: &GrayImage, kernel: &[f32], side: usize) -> GrayImage {
    let (w, h) = image.dims();
    let r = (side / 2) as isize;
    let mut out = GrayImage::zeroed(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for ky in 0..side {
                for kx in 0..side {
                    let sx = x as isize + kx as isize - r;
                    let sy = y as isize + ky as isize - r;
                    acc += kernel[ky * side + kx] * image.get_clamped(sx, sy);
                }
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Row-major dense matrix multiply.
fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            for j in 0..n {
                out[i * n + j] += aik * b[kk * n + j];
            }
        }
    }
    out
}

/// Iterative radix-2 decimation-in-time FFT.
fn fft(mut re: Vec<f32>, mut im: Vec<f32>) -> (Vec<f32>, Vec<f32>) {
    let n = re.len();
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f32::consts::PI / len as f32;
        for start in (0..n).step_by(len) {
            for off in 0..len / 2 {
                let w_re = (ang * off as f32).cos();
                let w_im = (ang * off as f32).sin();
                let (i, j) = (start + off, start + off + len / 2);
                let t_re = re[j] * w_re - im[j] * w_im;
                let t_im = re[j] * w_im + im[j] * w_re;
                re[j] = re[i] - t_re;
                im[j] = im[i] - t_im;
                re[i] += t_re;
                im[i] += t_im;
            }
        }
        len <<= 1;
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mac_computes_dot_product() {
        let mut acc = AccelInstance::new(AcceleratorKind::Mac);
        let v = acc
            .execute(&AccelOp::Mac {
                a: vec![1.0, 2.0, 3.0],
                b: vec![4.0, 5.0, 6.0],
            })
            .unwrap();
        assert_eq!(v, AccelValue::Scalar(32.0));
    }

    #[test]
    fn mac_rejects_length_mismatch() {
        let mut acc = AccelInstance::new(AcceleratorKind::Mac);
        assert!(matches!(
            acc.execute(&AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0, 2.0]
            }),
            Err(Error::BadOperands { .. })
        ));
    }

    #[test]
    fn wrong_operation_is_rejected() {
        let mut acc = AccelInstance::new(AcceleratorKind::Sort);
        assert!(matches!(
            acc.execute(&AccelOp::Mac {
                a: vec![],
                b: vec![]
            }),
            Err(Error::WrongOperation { .. })
        ));
    }

    #[test]
    fn warp_op_runs_on_both_warp_accelerators() {
        let img = GrayImage::zeroed(4, 4);
        let op = AccelOp::Warp {
            image: img,
            params: AffineParams::identity(),
        };
        assert!(op.runs_on(AcceleratorKind::Wami(WamiKernel::Warp)));
        assert!(op.runs_on(AcceleratorKind::Wami(WamiKernel::WarpIwxp)));
        assert!(!op.runs_on(AcceleratorKind::Wami(WamiKernel::Debayer)));
    }

    #[test]
    fn identity_conv_preserves_image() {
        let mut img = GrayImage::zeroed(6, 6);
        img.set(3, 2, 5.0);
        let mut acc = AccelInstance::new(AcceleratorKind::Conv2d);
        let kernel = vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        match acc
            .execute(&AccelOp::Conv2d {
                image: img.clone(),
                kernel,
                side: 3,
            })
            .unwrap()
        {
            AccelValue::Image(out) => assert_eq!(out, img),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn box_blur_conserves_mass_in_interior() {
        let mut img = GrayImage::zeroed(9, 9);
        img.set(4, 4, 9.0);
        let mut acc = AccelInstance::new(AcceleratorKind::Conv2d);
        let kernel = vec![1.0 / 9.0; 9];
        match acc
            .execute(&AccelOp::Conv2d {
                image: img,
                kernel,
                side: 3,
            })
            .unwrap()
        {
            AccelValue::Image(out) => {
                let total: f32 = out.pixels().iter().sum();
                assert!((total - 9.0).abs() < 1e-4);
                assert!((out.get(4, 4) - 1.0).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gemm_identity() {
        let mut acc = AccelInstance::new(AcceleratorKind::Gemm);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = vec![3.0, 4.0, 5.0, 6.0];
        match acc
            .execute(&AccelOp::Gemm {
                m: 2,
                k: 2,
                n: 2,
                a,
                b: b.clone(),
            })
            .unwrap()
        {
            AccelValue::Vector(out) => assert_eq!(out, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut acc = AccelInstance::new(AcceleratorKind::Fft);
        let mut re = vec![0.0f32; 8];
        re[0] = 1.0;
        match acc
            .execute(&AccelOp::Fft {
                re,
                im: vec![0.0; 8],
            })
            .unwrap()
        {
            AccelValue::VectorPair(r, i) => {
                for k in 0..8 {
                    assert!((r[k] - 1.0).abs() < 1e-5);
                    assert!(i[k].abs() < 1e-5);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fft_parseval() {
        let mut acc = AccelInstance::new(AcceleratorKind::Fft);
        let re: Vec<f32> = (0..16).map(|i| ((i * 7) % 5) as f32 - 2.0).collect();
        let time_energy: f32 = re.iter().map(|v| v * v).sum();
        match acc
            .execute(&AccelOp::Fft {
                re,
                im: vec![0.0; 16],
            })
            .unwrap()
        {
            AccelValue::VectorPair(r, i) => {
                let freq_energy: f32 = r.iter().zip(&i).map(|(a, b)| a * a + b * b).sum();
                assert!((freq_energy / 16.0 - time_energy).abs() < 1e-3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut acc = AccelInstance::new(AcceleratorKind::Fft);
        assert!(acc
            .execute(&AccelOp::Fft {
                re: vec![0.0; 6],
                im: vec![0.0; 6]
            })
            .is_err());
    }

    #[test]
    fn sort_orders_data() {
        let mut acc = AccelInstance::new(AcceleratorKind::Sort);
        match acc
            .execute(&AccelOp::Sort {
                data: vec![3.0, 1.0, 2.0],
            })
            .unwrap()
        {
            AccelValue::Vector(out) => assert_eq!(out, vec![1.0, 2.0, 3.0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn change_detection_model_flows_through_the_op() {
        use presp_wami::change_detection::{ChangeDetector, GmmConfig};
        let kind = AcceleratorKind::Wami(WamiKernel::ChangeDetection);
        let mut acc = AccelInstance::new(kind);
        let mut frame = GrayImage::zeroed(8, 8);
        for p in frame.pixels_mut() {
            *p = 50.0;
        }
        // First frame trains the model (no changes reported).
        let model = Box::new(ChangeDetector::new(8, 8, GmmConfig::default()));
        let trained = match acc
            .execute(&AccelOp::ChangeDetection {
                frame: frame.clone(),
                model,
            })
            .unwrap()
        {
            AccelValue::ChangeDetection { changed, model } => {
                assert_eq!(changed, 0);
                model
            }
            other => panic!("unexpected {other:?}"),
        };
        let mut bright = frame.clone();
        bright.set(2, 2, 250.0);
        // The trained model (fetched back from DRAM — even across a
        // reconfiguration of the tile) flags the new bright pixel.
        let mut fresh_instance = AccelInstance::new(kind);
        match fresh_instance
            .execute(&AccelOp::ChangeDetection {
                frame: bright.clone(),
                model: trained,
            })
            .unwrap()
        {
            AccelValue::ChangeDetection { changed, .. } => assert_eq!(changed, 1),
            other => panic!("unexpected {other:?}"),
        }
        // A fresh model only initializes on its first frame.
        let fresh_model = Box::new(ChangeDetector::new(8, 8, GmmConfig::default()));
        match fresh_instance
            .execute(&AccelOp::ChangeDetection {
                frame: bright,
                model: fresh_model,
            })
            .unwrap()
        {
            AccelValue::ChangeDetection { changed, .. } => assert_eq!(changed, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn work_and_dma_sizes_are_positive() {
        let ops = [
            AccelOp::Mac {
                a: vec![0.0; 8],
                b: vec![0.0; 8],
            },
            AccelOp::Sort { data: vec![0.0; 8] },
            AccelOp::Debayer {
                raw: BayerImage::zeroed(4, 4),
            },
            AccelOp::MatrixInvert {
                m: presp_wami::matrix::identity6(),
            },
        ];
        for op in &ops {
            assert!(op.work_items() > 0, "{op:?}");
            assert!(op.input_bytes() > 0, "{op:?}");
            assert!(op.output_bytes() > 0, "{op:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn sort_output_is_sorted_permutation(data in proptest::collection::vec(-100.0f32..100.0, 0..64)) {
            let mut acc = AccelInstance::new(AcceleratorKind::Sort);
            match acc.execute(&AccelOp::Sort { data: data.clone() }).unwrap() {
                AccelValue::Vector(out) => {
                    prop_assert!(out.windows(2).all(|w| w[0] <= w[1]));
                    let mut expect = data;
                    expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    prop_assert_eq!(out, expect);
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }

        #[test]
        fn gemm_matches_naive_reference(
            m in 1usize..5, k in 1usize..5, n in 1usize..5,
            seed in proptest::collection::vec(-2.0f32..2.0, 50),
        ) {
            let a: Vec<f32> = seed.iter().cycle().take(m * k).copied().collect();
            let b: Vec<f32> = seed.iter().rev().cycle().take(k * n).copied().collect();
            let mut acc = AccelInstance::new(AcceleratorKind::Gemm);
            match acc.execute(&AccelOp::Gemm { m, k, n, a: a.clone(), b: b.clone() }).unwrap() {
                AccelValue::Vector(out) => {
                    for i in 0..m {
                        for j in 0..n {
                            let expect: f32 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                            prop_assert!((out[i * n + j] - expect).abs() < 1e-4);
                        }
                    }
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }
}
