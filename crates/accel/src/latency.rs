//! Invocation-latency model.
//!
//! Each accelerator has a fixed start-up cost (register programming, DMA
//! descriptor setup, pipeline fill) plus a per-work-item cost expressed as a
//! rational cycles-per-item, at the SoC clock the paper runs its systems at
//! (78 MHz on the VC707).

use crate::catalog::AcceleratorKind;
use crate::op::AccelOp;
use presp_wami::graph::WamiKernel;

pub use presp_events::SOC_CLOCK_MHZ;

/// Cycles-per-item expressed as a rational to keep the model in integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclesPerItem {
    /// Numerator.
    pub num: u64,
    /// Denominator.
    pub den: u64,
}

impl CyclesPerItem {
    const fn new(num: u64, den: u64) -> CyclesPerItem {
        CyclesPerItem { num, den }
    }
}

/// Fixed invocation overhead (cycles) of an accelerator: configuration
/// register writes, DMA descriptor setup and pipeline fill.
pub fn startup_cycles(kind: AcceleratorKind) -> u64 {
    match kind {
        AcceleratorKind::Mac => 400,
        AcceleratorKind::Cpu => 0,
        _ => 1_200,
    }
}

/// Steady-state initiation cost per work item.
///
/// HLS pipelines sustain close to one item per cycle for streaming kernels;
/// the mathier kernels (Hessian, matrix inversion) run several ops per item
/// in parallel DSP banks, reflected as sub-unit rationals.
pub fn cycles_per_item(kind: AcceleratorKind) -> CyclesPerItem {
    use WamiKernel::*;
    match kind {
        AcceleratorKind::Mac => CyclesPerItem::new(1, 1),
        AcceleratorKind::Conv2d => CyclesPerItem::new(1, 4),
        AcceleratorKind::Gemm => CyclesPerItem::new(1, 8),
        AcceleratorKind::Fft => CyclesPerItem::new(1, 2),
        AcceleratorKind::Sort => CyclesPerItem::new(1, 1),
        AcceleratorKind::Cpu => CyclesPerItem::new(1, 1),
        AcceleratorKind::Wami(k) => match k {
            Debayer => CyclesPerItem::new(3, 2),
            Grayscale => CyclesPerItem::new(1, 1),
            Gradient => CyclesPerItem::new(1, 1),
            Warp | WarpIwxp => CyclesPerItem::new(2, 1),
            Subtract => CyclesPerItem::new(1, 2),
            SteepestDescent => CyclesPerItem::new(1, 2),
            Hessian => CyclesPerItem::new(1, 4),
            SdUpdate => CyclesPerItem::new(1, 2),
            MatrixInvert => CyclesPerItem::new(4, 1),
            DeltaP => CyclesPerItem::new(2, 1),
            ChangeDetection => CyclesPerItem::new(3, 1),
        },
    }
}

/// Factor by which the in-order Leon3 core is slower than a dedicated
/// accelerator on the same kernel (software fallback path).
pub const SOFTWARE_SLOWDOWN: u64 = 25;

/// Compute cycles for one invocation of `op` on accelerator `kind`.
pub fn compute_cycles(kind: AcceleratorKind, op: &AccelOp) -> u64 {
    let cpi = cycles_per_item(kind);
    startup_cycles(kind) + op.work_items() * cpi.num / cpi.den
}

/// Compute cycles for running `op` in software on the CPU tile.
pub fn software_cycles(op: &AccelOp) -> u64 {
    let native = op.kind();
    let cpi = cycles_per_item(native);
    SOFTWARE_SLOWDOWN * (op.work_items() * cpi.num / cpi.den).max(1)
}

pub use presp_events::cycles_to_micros;

#[cfg(test)]
mod tests {
    use super::*;
    use presp_wami::image::GrayImage;

    fn warp_op(side: usize) -> AccelOp {
        AccelOp::Warp {
            image: GrayImage::zeroed(side, side),
            params: presp_wami::warp::AffineParams::identity(),
        }
    }

    #[test]
    fn latency_scales_with_work() {
        let kind = AcceleratorKind::Wami(WamiKernel::Warp);
        let small = compute_cycles(kind, &warp_op(16));
        let big = compute_cycles(kind, &warp_op(32));
        assert!(big > small);
        // 4x the pixels → roughly 4x the steady-state cycles.
        let steady_small = small - startup_cycles(kind);
        let steady_big = big - startup_cycles(kind);
        assert_eq!(steady_big, 4 * steady_small);
    }

    #[test]
    fn software_is_much_slower_than_hardware() {
        let op = warp_op(64);
        let hw = compute_cycles(AcceleratorKind::Wami(WamiKernel::Warp), &op);
        let sw = software_cycles(&op);
        assert!(sw > 10 * hw, "sw {sw} vs hw {hw}");
    }

    #[test]
    fn micros_conversion_uses_soc_clock() {
        assert!((cycles_to_micros(78) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn every_kind_has_a_latency_model() {
        for kind in AcceleratorKind::CHARACTERIZATION
            .iter()
            .chain(AcceleratorKind::wami_all().iter())
        {
            let cpi = cycles_per_item(*kind);
            assert!(cpi.num > 0 && cpi.den > 0);
        }
    }

    #[test]
    fn tiny_ops_still_cost_software_time() {
        let op = AccelOp::MatrixInvert {
            m: presp_wami::matrix::identity6(),
        };
        assert!(software_cycles(&op) >= SOFTWARE_SLOWDOWN);
    }
}
