//! Power model.
//!
//! Per-accelerator dynamic power scales with the logic the accelerator
//! toggles (LUTs and DSPs dominate at a fixed clock); leakage scales with
//! the fabric area a tile occupies whether or not it computes. The Fig. 4
//! energy-efficiency trend — fewer, busier reconfigurable tiles beat many
//! idle-leaking ones — emerges from exactly these two terms.

use crate::catalog::AcceleratorKind;
use presp_fpga::resources::Resources;

/// Dynamic power density of active logic, watts per LUT at 78 MHz.
pub const DYNAMIC_W_PER_LUT: f64 = 6.0e-6;
/// Extra dynamic power per active DSP slice, watts.
pub const DYNAMIC_W_PER_DSP: f64 = 9.0e-4;
/// Leakage plus idle clock-tree power per provisioned LUT, watts. Every
/// fabric region that is clocked (static tiles and floorplanned
/// reconfigurable regions) pays this whether or not it computes — the term
/// behind Fig. 4's "fewer reconfigurable tiles are more energy-efficient".
pub const LEAKAGE_W_PER_LUT: f64 = 2.0e-5;
/// Power drawn by the configuration engine while a partial bitstream
/// streams through the ICAP, watts.
pub const RECONFIG_POWER_W: f64 = 0.35;
/// Board-level constant power (oscillators, DRAM PHY), watts.
pub const BASE_POWER_W: f64 = 0.3;

/// Dynamic power of an accelerator while computing, in watts.
pub fn dynamic_power_w(kind: AcceleratorKind) -> f64 {
    let r = kind.resources();
    let base = r.lut as f64 * DYNAMIC_W_PER_LUT + r.dsp as f64 * DYNAMIC_W_PER_DSP;
    match kind {
        // The CPU tile burns power on fetch/decode beyond its datapath.
        AcceleratorKind::Cpu => base + 0.25,
        _ => base,
    }
}

/// Leakage of a provisioned fabric region, in watts.
pub fn leakage_w(resources: &Resources) -> f64 {
    resources.lut as f64 * LEAKAGE_W_PER_LUT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_accelerators_draw_more_power() {
        assert!(dynamic_power_w(AcceleratorKind::Conv2d) > dynamic_power_w(AcceleratorKind::Mac));
    }

    #[test]
    fn power_magnitudes_are_plausible() {
        for kind in AcceleratorKind::CHARACTERIZATION {
            let p = dynamic_power_w(kind);
            assert!(p > 0.001 && p < 2.0, "{kind}: {p} W");
        }
        let cpu = dynamic_power_w(AcceleratorKind::Cpu);
        assert!(cpu > 0.3 && cpu < 2.0, "cpu: {cpu} W");
    }

    #[test]
    fn leakage_scales_with_area() {
        let small = leakage_w(&Resources::luts(10_000));
        let big = leakage_w(&Resources::luts(40_000));
        assert!((big - 4.0 * small).abs() < 1e-12);
    }
}
