//! Error type for accelerator execution.

use std::fmt;

/// Errors produced when executing accelerator behavioral models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The operation does not match the accelerator kind.
    WrongOperation {
        /// The accelerator the operation was submitted to.
        accelerator: String,
        /// The operation that was submitted.
        operation: String,
    },
    /// Operand shapes are inconsistent (mismatched lengths, non-square
    /// kernels, ...).
    BadOperands {
        /// Human-readable description.
        detail: String,
    },
    /// A WAMI kernel failed.
    Kernel(presp_wami::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::WrongOperation {
                accelerator,
                operation,
            } => {
                write!(
                    f,
                    "operation {operation} submitted to {accelerator} accelerator"
                )
            }
            Error::BadOperands { detail } => write!(f, "bad operands: {detail}"),
            Error::Kernel(e) => write!(f, "kernel error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<presp_wami::Error> for Error {
    fn from(e: presp_wami::Error) -> Error {
        Error::Kernel(e)
    }
}
