//! Accelerator kinds and resource profiles.

use presp_fpga::resources::Resources;
use presp_wami::graph::WamiKernel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The HLS flow an accelerator was developed with (Section IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HlsFlow {
    /// ESP's Vivado HLS accelerator flow (C/C++).
    VivadoHls,
    /// Cadence Stratus HLS (SystemC).
    StratusHls,
    /// Not an HLS artifact (the CPU tile RTL).
    Rtl,
}

/// Every accelerator (and the relocatable CPU tile) known to PR-ESP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// Multiply-accumulate — the SOC_1 characterization accelerator.
    Mac,
    /// 2-D convolution (Stratus HLS, SystemC).
    Conv2d,
    /// Dense matrix multiply (Stratus HLS, SystemC).
    Gemm,
    /// Fast Fourier transform (Stratus HLS, SystemC).
    Fft,
    /// Vector sort (Stratus HLS, SystemC).
    Sort,
    /// One of the twelve WAMI-App accelerators (Fig. 3).
    Wami(WamiKernel),
    /// The Leon3 CPU tile — reconfigurable in SoC_D / SOC_4 to shrink the
    /// static region (the paper's Class 2.1 designs).
    Cpu,
}

impl AcceleratorKind {
    /// The five Table II characterization accelerators.
    pub const CHARACTERIZATION: [AcceleratorKind; 5] = [
        AcceleratorKind::Mac,
        AcceleratorKind::Conv2d,
        AcceleratorKind::Gemm,
        AcceleratorKind::Fft,
        AcceleratorKind::Sort,
    ];

    /// All twelve WAMI accelerators in Fig. 3 order.
    pub fn wami_all() -> [AcceleratorKind; 12] {
        WamiKernel::ALL.map(AcceleratorKind::Wami)
    }

    /// The WAMI accelerator with 1-based Fig. 3 index `index`.
    pub fn wami(index: usize) -> Option<AcceleratorKind> {
        WamiKernel::from_index(index).map(AcceleratorKind::Wami)
    }

    /// Resource profile.
    ///
    /// LUT counts for the characterization accelerators, the CPU tile and
    /// the WAMI set come from Table II and the DESIGN.md Fig. 3 substitute
    /// (the figure's annotations are not machine-readable; the synthesized
    /// values preserve every class constraint in Tables III–VI).
    pub fn resources(&self) -> Resources {
        use WamiKernel::*;
        match self {
            AcceleratorKind::Mac => Resources::new(2_450, 3_150, 2, 5),
            AcceleratorKind::Conv2d => Resources::new(36_741, 47_800, 48, 96),
            AcceleratorKind::Gemm => Resources::new(30_617, 40_900, 64, 128),
            AcceleratorKind::Fft => Resources::new(33_690, 45_300, 72, 64),
            AcceleratorKind::Sort => Resources::new(20_468, 26_400, 36, 0),
            AcceleratorKind::Cpu => Resources::new(41_544, 34_800, 64, 4),
            AcceleratorKind::Wami(k) => match k {
                Debayer => Resources::new(9_500, 12_400, 8, 4),
                Grayscale => Resources::new(6_200, 8_000, 4, 9),
                Gradient => Resources::new(14_800, 19_200, 12, 16),
                Warp => Resources::new(34_000, 44_500, 40, 72),
                Subtract => Resources::new(5_800, 7_500, 4, 0),
                SteepestDescent => Resources::new(25_500, 33_200, 24, 48),
                Hessian => Resources::new(30_000, 39_100, 16, 84),
                SdUpdate => Resources::new(24_000, 31_300, 16, 60),
                MatrixInvert => Resources::new(21_500, 28_000, 8, 36),
                DeltaP => Resources::new(27_000, 35_200, 12, 54),
                WarpIwxp => Resources::new(20_400, 26_600, 24, 42),
                ChangeDetection => Resources::new(18_600, 24_200, 32, 24),
            },
        }
    }

    /// The HLS flow the accelerator comes from.
    pub fn hls_flow(&self) -> HlsFlow {
        match self {
            AcceleratorKind::Mac | AcceleratorKind::Wami(_) => HlsFlow::VivadoHls,
            AcceleratorKind::Conv2d
            | AcceleratorKind::Gemm
            | AcceleratorKind::Fft
            | AcceleratorKind::Sort => HlsFlow::StratusHls,
            AcceleratorKind::Cpu => HlsFlow::Rtl,
        }
    }

    /// Short name used in reports and RTL hierarchies.
    pub fn name(&self) -> String {
        match self {
            AcceleratorKind::Mac => "mac".into(),
            AcceleratorKind::Conv2d => "conv2d".into(),
            AcceleratorKind::Gemm => "gemm".into(),
            AcceleratorKind::Fft => "fft".into(),
            AcceleratorKind::Sort => "sort".into(),
            AcceleratorKind::Cpu => "cpu".into(),
            AcceleratorKind::Wami(k) => format!("wami_{}", k.name().replace('-', "_")),
        }
    }
}

impl fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lut_counts() {
        // The exact values reported in Table II of the paper.
        assert_eq!(AcceleratorKind::Mac.resources().lut, 2_450);
        assert_eq!(AcceleratorKind::Conv2d.resources().lut, 36_741);
        assert_eq!(AcceleratorKind::Gemm.resources().lut, 30_617);
        assert_eq!(AcceleratorKind::Fft.resources().lut, 33_690);
        assert_eq!(AcceleratorKind::Sort.resources().lut, 20_468);
        assert_eq!(AcceleratorKind::Cpu.resources().lut, 41_544);
    }

    #[test]
    fn wami_indices_round_trip() {
        for i in 1..=12 {
            let acc = AcceleratorKind::wami(i).unwrap();
            match acc {
                AcceleratorKind::Wami(k) => assert_eq!(k.index(), i),
                other => panic!("expected WAMI accelerator, got {other}"),
            }
        }
        assert_eq!(AcceleratorKind::wami(0), None);
        assert_eq!(AcceleratorKind::wami(13), None);
    }

    #[test]
    fn wami_class_constraints_hold() {
        // The synthesized WAMI LUT profile must keep the paper's Table IV
        // class memberships (γ computed against the static sizes used by
        // presp-core; here we check the raw sums that drive them).
        let sum = |idxs: &[usize]| -> u64 {
            idxs.iter()
                .map(|&i| AcceleratorKind::wami(i).unwrap().resources().lut)
                .sum()
        };
        let soc_a = sum(&[4, 8, 10, 9]); // Class 1.2: γ > 1 for static ≈ 85k
        let soc_b = sum(&[2, 3, 11, 1]); // Class 1.1: γ < 1
        let soc_c = sum(&[7, 11, 8, 2]); // Class 1.3: γ ≈ 1
        assert!(soc_a > 100_000, "SoC_A reconfigurable total {soc_a}");
        assert!(soc_b < 60_000, "SoC_B reconfigurable total {soc_b}");
        assert!(
            soc_c > 75_000 && soc_c < 90_000,
            "SoC_C reconfigurable total {soc_c}"
        );
    }

    #[test]
    fn stratus_accelerators_are_marked() {
        assert_eq!(AcceleratorKind::Conv2d.hls_flow(), HlsFlow::StratusHls);
        assert_eq!(AcceleratorKind::Mac.hls_flow(), HlsFlow::VivadoHls);
        assert_eq!(AcceleratorKind::Cpu.hls_flow(), HlsFlow::Rtl);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = AcceleratorKind::CHARACTERIZATION
            .iter()
            .map(|a| a.name())
            .chain(AcceleratorKind::wami_all().iter().map(|a| a.name()))
            .chain(std::iter::once(AcceleratorKind::Cpu.name()))
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_accelerator_has_nonzero_logic() {
        for acc in AcceleratorKind::CHARACTERIZATION
            .iter()
            .chain(AcceleratorKind::wami_all().iter())
        {
            let r = acc.resources();
            assert!(r.lut > 0 && r.ff > 0, "{acc} has empty profile");
        }
    }
}
