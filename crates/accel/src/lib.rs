//! The PR-ESP accelerator catalog.
//!
//! Every loosely-coupled accelerator used in the paper is described here:
//!
//! * the five characterization accelerators of Table II (MAC from the ESP
//!   *Vivado HLS* flow; Conv2d, GEMM, FFT and Sort from SystemC via
//!   *Cadence Stratus HLS*),
//! * the twelve WAMI-App accelerators of Fig. 3 (see [`presp_wami::graph`]),
//! * and the Leon3 CPU tile, which SoC_D and SOC_4 move into the
//!   reconfigurable region to shrink the static part.
//!
//! Each accelerator carries a resource profile ([`catalog`]), an
//! invocation-latency model ([`latency`]), a power model ([`power`]) and a
//! behavioral implementation ([`op`]) that computes real results — the SoC
//! simulator executes these behaviors so full-system WAMI runs produce
//! pixel-identical outputs to the software reference.
//!
//! # Example
//!
//! ```
//! use presp_accel::catalog::AcceleratorKind;
//!
//! let conv = AcceleratorKind::Conv2d;
//! assert_eq!(conv.resources().lut, 36_741); // Table II
//! ```

pub mod catalog;
pub mod error;
pub mod latency;
pub mod op;
pub mod power;

pub use catalog::AcceleratorKind;
pub use error::Error;
pub use op::{AccelInstance, AccelOp, AccelValue};
