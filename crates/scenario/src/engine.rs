//! The scenario engine: a [`ScenarioSpec`] in, deterministic
//! observations and assertion verdicts out.
//!
//! Per `(seed, worker-count)` cell of the matrix the engine boots a
//! fresh `Soc` + [`ThreadedManager`] (and a [`ScrubberDaemon`] when the
//! spec asks for one), arms a seeded [`FaultPlan`], drives the declared
//! workload through a *single blocking submitter*, and snapshots every
//! virtual-time observable. Blocking submission makes the admission
//! order — and therefore the ticket order the scheduler's gate commits
//! in — a pure function of the seed, so the stats, makespan and trace
//! log of a run are byte-identical across repeats and across worker
//! counts. Wall-clock quantities (queue-wait percentiles, backlog
//! high-water marks) are deliberately *not* observed.
//!
//! The submitter interleaving mirrors the `stress_dpr` harness exactly:
//! each logical client has a fixed script of operations cycling through
//! the catalog, and a seeded [`SplitMix64`] draws which client issues
//! next. Porting a storm from that harness into a scenario file keeps
//! the schedule — and the invariants it exercises — intact.

use crate::spec::{Assertion, CatalogKind, ScenarioSpec, WorkloadSpec};
use presp_accel::{AccelOp, AccelValue, AcceleratorKind};
use presp_events::trace::{chrome_trace_json, log_lines};
use presp_events::MemorySink;
use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp_fpga::fault::{FaultPlan, InjectedFaults, SplitMix64};
use presp_fpga::frame::FrameAddress;
use presp_runtime::defrag::Defragmenter;
use presp_runtime::error::Error;
use presp_runtime::manager::ExecPath;
use presp_runtime::registry::BitstreamRegistry;
use presp_runtime::scrubber::ScrubberDaemon;
use presp_runtime::supervisor::{install_quiet_panic_hook, WorkerFaultPlan};
use presp_runtime::threaded::ThreadedManager;
use presp_soc::config::{SocConfig, TileCoord};
use presp_soc::sim::Soc;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Domain-separation constant for the submitter's interleaving draw —
/// the same one the `stress_dpr` threaded harness uses, so ported
/// scenarios replay the identical schedule.
const INTERLEAVE_SALT: u64 = 0xD47E_D47E_D47E_D47E;

/// Domain-separation constant for the fragment-churn kind draw, so the
/// churn stream is independent of the submitter interleaving stream.
const CHURN_SALT: u64 = 0xF4A6_F4A6_F4A6_F4A6;

/// Everything deterministic observed from one `(seed, workers)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunObservation {
    /// The seed this run was driven under.
    pub seed: u64,
    /// The worker count it ran with.
    pub workers: usize,
    /// Deterministic totals, keyed by [`crate::spec::STAT_KEYS`] entries.
    pub stats: BTreeMap<&'static str, u64>,
    /// Whether `ManagerStats::consistent()` held.
    pub stats_consistent: bool,
    /// Latest completion cycle on the virtual clock.
    pub makespan: u64,
    /// The full trace log (`log_lines` rendering, virtual-time only).
    pub trace_log: String,
    /// Event-name → occurrence-count index over the trace.
    pub event_counts: BTreeMap<String, u64>,
    /// Tiles left quarantined after the run.
    pub quarantined: Vec<TileCoord>,
}

/// A scenario's complete observation set plus the Chrome trace of its
/// first run (for `--trace-dir` artifacts).
#[derive(Debug, Clone)]
pub struct ScenarioObservations {
    /// One entry per `(seed, workers)` cell, seeds outer, workers inner.
    pub runs: Vec<RunObservation>,
    /// Chrome-trace JSON of the first cell's run.
    pub first_chrome_trace: String,
}

/// One assertion's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionResult {
    /// The check token (e.g. `"stats_consistent"`, `"stat_min"`).
    pub check: String,
    /// Whether it held.
    pub passed: bool,
    /// Human-readable explanation (always set; on failure it names the
    /// observed value and the bound).
    pub detail: String,
    /// The seed that reproduces the failure (first failing run's seed;
    /// the scenario's first seed when the check is aggregate).
    pub replay_seed: u64,
}

/// A scenario's verdict: observations plus per-assertion results.
#[derive(Debug, Clone)]
pub struct ScenarioVerdict {
    /// The spec that ran.
    pub spec: ScenarioSpec,
    /// What the engine observed.
    pub observations: ScenarioObservations,
    /// One result per declared assertion, in declaration order.
    pub results: Vec<AssertionResult>,
}

impl ScenarioVerdict {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }
}

fn kind_of(kind: CatalogKind) -> AcceleratorKind {
    match kind {
        CatalogKind::Mac => AcceleratorKind::Mac,
        CatalogKind::Sort => AcceleratorKind::Sort,
    }
}

/// The canonical partial bitstream for column `col` — identical to the
/// stress harness's so registry contents (and therefore cache and ICAP
/// behavior) match ported scenarios.
fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, 1 + col % 60, 0), vec![col; words])
        .expect("canonical frame address is in range");
    b.build(true)
}

/// Registry column base per accelerator kind (mirrors `stress_dpr`).
fn column_base(kind: CatalogKind) -> u32 {
    match kind {
        CatalogKind::Mac => 2,
        CatalogKind::Sort => 30,
    }
}

/// A deeper partial bitstream: `frames` minor frames in one column.
/// Region workloads use multi-frame footprints so relocation moves a
/// measurable number of frames.
fn deep_bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    for minor in 0..frames {
        b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
            .expect("canonical frame address is in range");
    }
    b.build(true)
}

/// A column-spanning partial bitstream: the wide (multi-column) GEMM
/// footprint the region workloads use to provoke fragmentation refusals.
fn span_bitstream(soc: &Soc, cols: std::ops::Range<u32>, frames: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    for col in cols {
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                .expect("canonical frame address is in range");
        }
    }
    b.build(true)
}

/// Operation `j` of logical client `t`'s script: cycles through the
/// catalog, with CPU-recomputable expected values. With the full
/// `[mac, sort]` catalog and the `(t + j) % 2` selector this is exactly
/// `stress_dpr::job_op`.
fn job_op(catalog: &[CatalogKind], t: usize, j: usize) -> (AcceleratorKind, AccelOp, AccelValue) {
    match catalog[(t + j) % catalog.len()] {
        CatalogKind::Mac => {
            let a = (1 + t) as f32;
            let b = (1 + j) as f32;
            (
                AcceleratorKind::Mac,
                AccelOp::Mac {
                    a: vec![a; 4],
                    b: vec![b; 4],
                },
                AccelValue::Scalar(4.0 * a * b),
            )
        }
        CatalogKind::Sort => {
            let data = vec![3.0, 1.0 + t as f32, 2.0 + j as f32];
            let mut sorted = data.clone();
            sorted.sort_by(f32::total_cmp);
            (
                AcceleratorKind::Sort,
                AccelOp::Sort { data },
                AccelValue::Vector(sorted),
            )
        }
    }
}

/// Engine-side accounting the drive loop accumulates.
#[derive(Debug, Default)]
struct DriveTally {
    submitted: u64,
    completed_ok: u64,
    cpu_fallbacks: u64,
    value_mismatches: u64,
    lost_requests: u64,
    overloaded: u64,
    deadline_missed: u64,
    final_sweep_dirty: u64,
    region_rejections: u64,
}

impl DriveTally {
    /// Folds an error verdict in: admission refusals, deadline
    /// cancellations and fragmentation refusals are *answered* requests,
    /// not lost ones.
    fn record_error(&mut self, e: &Error) {
        match e {
            Error::Overloaded { .. } => self.overloaded += 1,
            Error::DeadlineExceeded { .. } => self.deadline_missed += 1,
            Error::RegionUnavailable { .. } => self.region_rejections += 1,
            _ => self.lost_requests += 1,
        }
    }
}

fn any_fault_configured(spec: &ScenarioSpec) -> bool {
    let f = &spec.faults;
    f.icap_flip_rate > 0.0
        || f.dfxc_stall_rate > 0.0
        || f.registry_miss_rate > 0.0
        || f.decoupler_delay_rate > 0.0
        || f.seu_per_mcycle > 0.0
}

fn any_worker_fault_configured(spec: &ScenarioSpec) -> bool {
    let w = &spec.worker_faults;
    w.panic_rate > 0.0 || w.hang_rate > 0.0 || w.stall_rate > 0.0
}

/// Runs one `(seed, workers)` cell and returns its observation plus the
/// raw trace records (for the Chrome export of the first cell).
fn run_cell(
    spec: &ScenarioSpec,
    seed: u64,
    workers: usize,
) -> (RunObservation, Vec<presp_events::trace::TraceRecord>) {
    // Up to 6 tiles keep the canonical 3x3 grid (existing scenario
    // reports stay byte-identical); larger fabrics boot the scaled
    // near-square grid.
    let cfg = if spec.fabric.reconf_tiles <= 6 {
        SocConfig::grid_3x3_reconf(&spec.fabric.soc_name, spec.fabric.reconf_tiles)
            .expect("reconf_tiles validated at parse (1..=64)")
    } else {
        SocConfig::grid_reconf(&spec.fabric.soc_name, spec.fabric.reconf_tiles)
            .expect("reconf_tiles validated at parse (1..=64)")
    };
    let mut soc = Soc::new(&cfg).expect("a validated grid config boots");
    if any_fault_configured(spec) {
        soc.set_fault_plan(Some(FaultPlan::new(seed, spec.faults)));
    }
    let sink = MemorySink::shared();
    soc.attach_tracer(sink.clone());
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    let region_workload = matches!(
        spec.workload,
        WorkloadSpec::DefragProbe | WorkloadSpec::FragmentChurn { .. }
    );
    if region_workload {
        // The amorphous recipe: 1-column MAC (CLB), 1-column sort (BRAM)
        // and the 3-column GEMM span, four frames deep, identical on
        // every tile — with regions enabled the allocator relocates each
        // load to its leased base, so the registered columns only fix
        // the footprint shape.
        for &tile in &tiles {
            registry
                .register(tile, AcceleratorKind::Mac, deep_bitstream(&soc, 1, 4))
                .expect("tile/kind pairs are unique");
            registry
                .register(tile, AcceleratorKind::Sort, deep_bitstream(&soc, 3, 4))
                .expect("tile/kind pairs are unique");
            registry
                .register(tile, AcceleratorKind::Gemm, span_bitstream(&soc, 7..10, 4))
                .expect("tile/kind pairs are unique");
        }
    } else {
        for (i, &tile) in tiles.iter().enumerate() {
            for &kind in &spec.catalog {
                registry
                    .register(
                        tile,
                        kind_of(kind),
                        bitstream(&soc, column_base(kind) + i as u32),
                    )
                    .expect("tile/kind pairs are unique");
            }
        }
    }
    let manager: ThreadedManager = ThreadedManager::spawn_with_config(
        soc,
        registry,
        spec.policy,
        workers,
        spec.cache_capacity,
    );
    if spec.regions.enabled {
        match spec.regions.window {
            Some((lo, hi)) => manager.enable_regions_within(spec.regions.policy, lo..hi),
            None => manager.enable_regions(spec.regions.policy),
        }
        .expect("region window validated at parse names managed columns");
    }
    let defrag = spec.regions.defrag.then(|| Defragmenter::attach(&manager));
    if any_worker_fault_configured(spec) {
        if spec.worker_faults.panic_rate > 0.0 {
            install_quiet_panic_hook();
        }
        manager.set_worker_fault_plan(Some(WorkerFaultPlan::seeded(seed, spec.worker_faults)));
    }
    let scrubber = spec
        .scrubber
        .enabled
        .then(|| ScrubberDaemon::attach(&manager));

    let mut tally = DriveTally::default();
    match spec.workload {
        WorkloadSpec::Blocking {
            clients,
            ops_per_client,
        } => drive_blocking(
            spec,
            seed,
            &manager,
            scrubber.as_ref(),
            &tiles,
            clients,
            ops_per_client,
            &mut tally,
        ),
        WorkloadSpec::CoalesceBurst {
            burst,
            pin_sort_len,
        } => drive_coalesce_burst(&manager, &tiles, burst, pin_sort_len, &mut tally),
        WorkloadSpec::OverloadBurst {
            burst,
            pin_sort_len,
        } => drive_overload_burst(&manager, &tiles, burst, pin_sort_len, &mut tally),
        WorkloadSpec::DefragProbe => {
            drive_defrag_probe(&manager, defrag.as_ref(), &tiles, &mut tally)
        }
        WorkloadSpec::FragmentChurn { rounds } => {
            drive_fragment_churn(seed, &manager, defrag.as_ref(), &tiles, rounds, &mut tally)
        }
    }

    // Final sweep: drain whatever struck during the storm, disarm the
    // fault source, and confirm every tile reads back clean.
    if let Some(daemon) = scrubber.as_ref() {
        if spec.scrubber.final_sweep {
            let _ = daemon.scrub_all_blocking();
            manager.set_fault_plan(None);
            if let Ok(confirm) = daemon.scrub_all_blocking() {
                tally.final_sweep_dirty +=
                    confirm.iter().filter(|(_, r)| !r.is_clean()).count() as u64;
            }
        }
    }

    let scrubber_stats = scrubber.as_ref().map(|d| d.stats());
    if let Some(daemon) = scrubber {
        daemon.shutdown();
    }
    let defrag_stats = defrag.as_ref().map(|d| d.stats());
    if let Some(daemon) = defrag {
        daemon.shutdown();
    }
    // Snapshot only after shutdown joins the workers: a blocking
    // submitter's reply can land while the worker is still mid
    // post-commit bookkeeping, so pre-shutdown counters (and the
    // orphaned-ticket gauge) are not yet quiescent.
    manager.shutdown();
    let mgr_stats = manager.stats();
    let sched_stats = manager.scheduler_stats();
    let cache_stats = manager.cache_stats();
    let injected: InjectedFaults = manager.injected_faults();
    let quarantined = manager.quarantined_tiles();
    let makespan = manager.makespan();
    let sup_stats = manager.supervisor_stats();
    let orphaned_tickets = manager.orphaned_tickets();
    let records = presp_events::sink::snapshot(&sink);
    let trace_log = log_lines(&records);
    let mut event_counts: BTreeMap<String, u64> = BTreeMap::new();
    for record in &records {
        *event_counts
            .entry(record.event.name().to_string())
            .or_insert(0) += 1;
    }

    let mut stats: BTreeMap<&'static str, u64> = BTreeMap::new();
    stats.insert("reconfig_requests", mgr_stats.reconfig_requests);
    stats.insert("reconfigurations", mgr_stats.reconfigurations);
    stats.insert("driver_cache_hits", mgr_stats.cache_hits);
    stats.insert("coalesced", mgr_stats.coalesced);
    stats.insert("retries_exhausted", mgr_stats.retries_exhausted);
    stats.insert("rejected", mgr_stats.rejected);
    stats.insert("retries", mgr_stats.retries);
    stats.insert("quarantines", mgr_stats.quarantines);
    stats.insert("reconfig_cycles", mgr_stats.reconfig_cycles);
    stats.insert("runs", mgr_stats.runs);
    stats.insert("fallback_runs", mgr_stats.fallback_runs);
    stats.insert("scrub_passes", mgr_stats.scrub_passes);
    stats.insert("frames_repaired", mgr_stats.frames_repaired);
    stats.insert("scrub_quarantines", mgr_stats.scrub_quarantines);
    stats.insert("deadline_misses", mgr_stats.deadline_misses);
    stats.insert("shed", mgr_stats.shed);
    stats.insert("oversized_rejected", mgr_stats.oversized_rejected);
    stats.insert("oversized_admitted", mgr_stats.oversized_admitted);
    stats.insert("repack_admitted", mgr_stats.repack_admitted);
    let defrag = defrag_stats.unwrap_or_default();
    stats.insert("defrag_passes", defrag.passes);
    stats.insert("defrag_moves", defrag.moves);
    stats.insert("frames_moved", defrag.frames_moved);
    stats.insert("worker_deaths", sup_stats.worker_deaths);
    stats.insert("worker_respawns", sup_stats.worker_respawns);
    stats.insert("redispatches", sup_stats.redispatches);
    stats.insert("injected_worker_panics", sup_stats.panics_injected);
    stats.insert("injected_worker_hangs", sup_stats.hangs_injected);
    stats.insert("injected_worker_stalls", sup_stats.stalls_injected);
    stats.insert("orphaned_tickets", orphaned_tickets);
    stats.insert("sched_admitted", sched_stats.admitted);
    stats.insert("sched_completed", sched_stats.completed);
    stats.insert("sched_coalesced", sched_stats.coalesced);
    stats.insert("bitstream_cache_hits", cache_stats.hits);
    stats.insert("bitstream_cache_misses", cache_stats.misses);
    stats.insert("bitstream_cache_evictions", cache_stats.evictions);
    let scrub = scrubber_stats.unwrap_or_default();
    stats.insert("scrubber_passes", scrub.passes);
    stats.insert("scrubber_clean_passes", scrub.clean_passes);
    stats.insert("scrubber_frames_repaired", scrub.frames_repaired);
    stats.insert("scrubber_quarantines", scrub.quarantines);
    stats.insert("injected_total", injected.total());
    stats.insert("injected_icap_corruptions", injected.icap_corruptions);
    stats.insert("injected_dfxc_stalls", injected.dfxc_stalls);
    stats.insert("injected_registry_misses", injected.registry_misses);
    stats.insert("injected_decoupler_delays", injected.decoupler_delays);
    stats.insert("injected_seu_upsets", injected.seu_upsets);
    stats.insert("injected_seu_double_bits", injected.seu_double_bits);
    stats.insert("submitted", tally.submitted);
    stats.insert("completed_ok", tally.completed_ok);
    stats.insert("cpu_fallback_completions", tally.cpu_fallbacks);
    stats.insert("value_mismatches", tally.value_mismatches);
    stats.insert("lost_requests", tally.lost_requests);
    stats.insert("overloaded_rejections", tally.overloaded);
    stats.insert("deadline_cancellations", tally.deadline_missed);
    stats.insert("quarantined_tiles", quarantined.len() as u64);
    stats.insert("final_sweep_dirty", tally.final_sweep_dirty);
    stats.insert("region_rejections", tally.region_rejections);

    (
        RunObservation {
            seed,
            workers,
            stats,
            stats_consistent: mgr_stats.consistent(),
            makespan,
            trace_log,
            event_counts,
            quarantined,
        },
        records,
    )
}

/// The seeded blocking submitter: fixed per-client scripts, a seeded
/// draw picking which client issues next, every operation awaited before
/// the next is admitted.
#[allow(clippy::too_many_arguments)]
fn drive_blocking(
    spec: &ScenarioSpec,
    seed: u64,
    manager: &ThreadedManager,
    scrubber: Option<&ScrubberDaemon>,
    tiles: &[TileCoord],
    clients: usize,
    ops_per_client: usize,
    tally: &mut DriveTally,
) {
    let mut queues: Vec<VecDeque<(TileCoord, AcceleratorKind, AccelOp, AccelValue)>> = (0..clients)
        .map(|t| {
            (0..ops_per_client)
                .map(|j| {
                    let (kind, op, expected) = job_op(&spec.catalog, t, j);
                    (tiles[(t + j) % tiles.len()], kind, op, expected)
                })
                .collect()
        })
        .collect();
    let mut sched = SplitMix64::new(seed ^ INTERLEAVE_SALT);
    loop {
        let alive: Vec<usize> = (0..queues.len())
            .filter(|&i| !queues[i].is_empty())
            .collect();
        if alive.is_empty() {
            break;
        }
        let pick = alive[sched.below(alive.len() as u64) as usize];
        let (tile, kind, op, expected) = queues[pick].pop_front().expect("alive queue");
        tally.submitted += 1;
        match manager.execute_blocking(tile, kind, op) {
            Ok((run, path)) => {
                tally.completed_ok += 1;
                if path == ExecPath::CpuFallback {
                    tally.cpu_fallbacks += 1;
                }
                if run.value != expected {
                    tally.value_mismatches += 1;
                }
            }
            Err(e) => tally.record_error(&e),
        }
        if let Some(daemon) = scrubber {
            let every = spec.scrubber.sweep_every_ops;
            if every > 0 && tally.submitted.is_multiple_of(every) {
                let _ = daemon.scrub_all_blocking();
            }
        }
    }
}

/// The coalescing probe: pin the single worker on a large sort, then
/// burst identical reconfigurations at another tile; all but the first
/// tail-fold into one physical load.
fn drive_coalesce_burst(
    manager: &ThreadedManager,
    tiles: &[TileCoord],
    burst: usize,
    pin_sort_len: usize,
    tally: &mut DriveTally,
) {
    let big: Vec<f32> = (0..pin_sort_len).rev().map(|i| i as f32).collect();
    let busy = manager.submit_execute(tiles[1], AcceleratorKind::Sort, AccelOp::Sort { data: big });
    let pending: Vec<_> = (0..burst)
        .map(|_| manager.submit_reconfigure(tiles[0], AcceleratorKind::Mac))
        .collect();
    tally.submitted = burst as u64 + 1;
    for p in pending {
        match p.wait() {
            Ok(()) => tally.completed_ok += 1,
            Err(e) => tally.record_error(&e),
        }
    }
    match busy.wait() {
        Ok((run, path)) => {
            tally.completed_ok += 1;
            if path == ExecPath::CpuFallback {
                tally.cpu_fallbacks += 1;
            }
            let sorted_ok = matches!(
                &run.value,
                AccelValue::Vector(v)
                    if v.len() == pin_sort_len && v.windows(2).all(|w| w[0] <= w[1])
            );
            if !sorted_ok {
                tally.value_mismatches += 1;
            }
        }
        Err(e) => tally.record_error(&e),
    }
}

/// The open-loop overload probe: pin a worker on a large sort at the
/// second tile, then fire `burst` *distinct* MAC executions (distinct
/// operands, so nothing coalesces) at the first tile without awaiting;
/// the admission controller's verdicts are folded into the tally as
/// answered — not lost — requests.
fn drive_overload_burst(
    manager: &ThreadedManager,
    tiles: &[TileCoord],
    burst: usize,
    pin_sort_len: usize,
    tally: &mut DriveTally,
) {
    let big: Vec<f32> = (0..pin_sort_len).rev().map(|i| i as f32).collect();
    let claims_before = manager.scheduler().tile_claims(tiles[1]);
    let busy = manager.submit_execute(tiles[1], AcceleratorKind::Sort, AccelOp::Sort { data: big });
    // The burst must race the bounded queue, not worker startup: spin
    // until the pin sort has been checked out (the claim counter is
    // latching, so a fast completion can't be missed), so a worker is
    // provably pinned when the burst begins and the shed count is
    // reproducible.
    while manager.scheduler().tile_claims(tiles[1]) == claims_before {
        std::thread::yield_now();
    }
    let pending: Vec<_> = (0..burst)
        .map(|j| {
            let a = 1.0 + j as f32;
            (
                4.0 * a * 2.0,
                manager.submit_execute(
                    tiles[0],
                    AcceleratorKind::Mac,
                    AccelOp::Mac {
                        a: vec![a; 4],
                        b: vec![2.0; 4],
                    },
                ),
            )
        })
        .collect();
    tally.submitted = burst as u64 + 1;
    for (expected, p) in pending {
        match p.wait() {
            Ok((run, path)) => {
                tally.completed_ok += 1;
                if path == ExecPath::CpuFallback {
                    tally.cpu_fallbacks += 1;
                }
                if run.value != AccelValue::Scalar(expected) {
                    tally.value_mismatches += 1;
                }
            }
            Err(e) => tally.record_error(&e),
        }
    }
    match busy.wait() {
        Ok((run, path)) => {
            tally.completed_ok += 1;
            if path == ExecPath::CpuFallback {
                tally.cpu_fallbacks += 1;
            }
            let sorted_ok = matches!(
                &run.value,
                AccelValue::Vector(v)
                    if v.len() == pin_sort_len && v.windows(2).all(|w| w[0] <= w[1])
            );
            if !sorted_ok {
                tally.value_mismatches += 1;
            }
        }
        Err(e) => tally.record_error(&e),
    }
}

/// The deterministic fragmentation probe — the amorphous floorplanning
/// recipe driven end to end through the threaded scheduler. Seven
/// 1-column MAC loads pack the region window, one BRAM-sort swap opens
/// two non-adjacent holes, and the 3-column GEMM request is refused for
/// fragmentation (`region_rejections` and the manager's
/// `oversized_rejected` both record it). With a defragmenter attached,
/// one synchronous repack pass slides the fragmented leases left and the
/// retry must be admitted (`repack_admitted`); without one the request
/// stays refused — the same spec with `regions.defrag` toggled proves
/// both directions.
fn drive_defrag_probe(
    manager: &ThreadedManager,
    defrag: Option<&Defragmenter>,
    tiles: &[TileCoord],
    tally: &mut DriveTally,
) {
    let reconfigure = |tile, kind, tally: &mut DriveTally| {
        tally.submitted += 1;
        match manager.reconfigure_blocking(tile, kind) {
            Ok(()) => tally.completed_ok += 1,
            Err(e) => tally.record_error(&e),
        }
    };
    for &tile in &tiles[..7] {
        reconfigure(tile, AcceleratorKind::Mac, tally);
    }
    reconfigure(tiles[5], AcceleratorKind::Sort, tally);
    // Free columns exist now, but no 3-wide span: the wide request is
    // refused at admission.
    reconfigure(tiles[1], AcceleratorKind::Gemm, tally);
    if let Some(daemon) = defrag {
        let _ = daemon.repack_blocking();
        reconfigure(tiles[1], AcceleratorKind::Gemm, tally);
    }
}

/// Seeded region churn: every round each tile draws MAC / sort / GEMM
/// from a seeded stream and reconfigures to it, fragmenting the window
/// as 1- and 3-column leases come and go. A fragmentation refusal
/// triggers one repack-and-retry when a defragmenter is attached; the
/// retry's verdict answers the original request either way.
fn drive_fragment_churn(
    seed: u64,
    manager: &ThreadedManager,
    defrag: Option<&Defragmenter>,
    tiles: &[TileCoord],
    rounds: usize,
    tally: &mut DriveTally,
) {
    const KINDS: [AcceleratorKind; 3] = [
        AcceleratorKind::Mac,
        AcceleratorKind::Sort,
        AcceleratorKind::Gemm,
    ];
    let mut churn = SplitMix64::new(seed ^ CHURN_SALT);
    for _ in 0..rounds {
        for &tile in tiles {
            let kind = KINDS[churn.below(KINDS.len() as u64) as usize];
            tally.submitted += 1;
            match manager.reconfigure_blocking(tile, kind) {
                Ok(()) => tally.completed_ok += 1,
                Err(refusal @ Error::RegionUnavailable { .. }) => match defrag {
                    Some(daemon) => {
                        let _ = daemon.repack_blocking();
                        match manager.reconfigure_blocking(tile, kind) {
                            Ok(()) => tally.completed_ok += 1,
                            Err(e) => tally.record_error(&e),
                        }
                    }
                    None => tally.record_error(&refusal),
                },
                Err(e) => tally.record_error(&e),
            }
        }
    }
}

/// Runs the full `(seed, workers)` matrix of a spec.
pub fn observe(spec: &ScenarioSpec) -> ScenarioObservations {
    let mut runs = Vec::new();
    let mut first_chrome_trace = String::new();
    for offset in 0..spec.seeds.count {
        let seed = spec.seeds.start + offset;
        for &workers in &spec.workers {
            let (obs, records) = run_cell(spec, seed, workers);
            if runs.is_empty() {
                first_chrome_trace = chrome_trace_json(&records);
            }
            runs.push(obs);
        }
    }
    ScenarioObservations {
        runs,
        first_chrome_trace,
    }
}

/// Totals a stat across every run.
fn total(runs: &[RunObservation], key: &str) -> u64 {
    runs.iter()
        .map(|r| r.stats.get(key).copied().unwrap_or(0))
        .sum()
}

/// Totals every stat across every run (the report's `totals` object).
pub fn totals(runs: &[RunObservation]) -> BTreeMap<&'static str, u64> {
    let mut out = BTreeMap::new();
    for key in crate::spec::STAT_KEYS {
        out.insert(*key, total(runs, key));
    }
    out
}

fn pass(check: &str, detail: String, seed: u64) -> AssertionResult {
    AssertionResult {
        check: check.to_string(),
        passed: true,
        detail,
        replay_seed: seed,
    }
}

fn fail(check: &str, detail: String, seed: u64) -> AssertionResult {
    AssertionResult {
        check: check.to_string(),
        passed: false,
        detail,
        replay_seed: seed,
    }
}

/// Evaluates one assertion against the observation set.
fn evaluate(
    assertion: &Assertion,
    spec: &ScenarioSpec,
    obs: &ScenarioObservations,
) -> AssertionResult {
    let runs = &obs.runs;
    let first_seed = spec.seeds.start;
    match assertion {
        Assertion::StatsConsistent => match runs.iter().find(|r| !r.stats_consistent) {
            None => pass(
                "stats_consistent",
                format!("ManagerStats::consistent() held across {} runs", runs.len()),
                first_seed,
            ),
            Some(r) => fail(
                "stats_consistent",
                format!(
                    "request accounting inconsistent at seed {} / {} workers",
                    r.seed, r.workers
                ),
                r.seed,
            ),
        },
        Assertion::NoLostRequests => {
            // A shed or deadline-cancelled request was *answered* (the
            // caller got a verdict); only a silently vanished one is lost.
            match runs.iter().find(|r| {
                let answered = r.stats["completed_ok"]
                    + r.stats["overloaded_rejections"]
                    + r.stats["deadline_cancellations"]
                    + r.stats["region_rejections"];
                r.stats["lost_requests"] != 0 || answered != r.stats["submitted"]
            }) {
                None => pass(
                    "no_lost_requests",
                    format!(
                        "all {} submitted operations were answered \
                         (completed, shed, deadline-cancelled, or refused \
                         for fragmentation)",
                        total(runs, "submitted")
                    ),
                    first_seed,
                ),
                Some(r) => fail(
                    "no_lost_requests",
                    format!(
                        "seed {} / {} workers: {} of {} submissions answered ({} lost)",
                        r.seed,
                        r.workers,
                        r.stats["completed_ok"]
                            + r.stats["overloaded_rejections"]
                            + r.stats["deadline_cancellations"]
                            + r.stats["region_rejections"],
                        r.stats["submitted"],
                        r.stats["lost_requests"]
                    ),
                    r.seed,
                ),
            }
        }
        Assertion::BitIdenticalOutputs => {
            match runs.iter().find(|r| r.stats["value_mismatches"] != 0) {
                None => pass(
                    "bit_identical_outputs",
                    "every completed value matched the CPU model bit for bit".to_string(),
                    first_seed,
                ),
                Some(r) => fail(
                    "bit_identical_outputs",
                    format!(
                        "seed {} / {} workers: {} values diverged from the CPU model",
                        r.seed, r.workers, r.stats["value_mismatches"]
                    ),
                    r.seed,
                ),
            }
        }
        Assertion::SameSeedTraceIdentical => {
            let first = &runs[0];
            let (replay, _records) = run_cell(spec, first.seed, first.workers);
            let mut diffs = Vec::new();
            if replay.stats != first.stats {
                diffs.push("stats");
            }
            if replay.makespan != first.makespan {
                diffs.push("makespan");
            }
            if replay.trace_log != first.trace_log {
                diffs.push("trace log");
            }
            if diffs.is_empty() {
                pass(
                    "same_seed_trace_identical",
                    format!(
                        "re-running seed {} / {} workers reproduced stats, makespan \
                         and trace byte for byte",
                        first.seed, first.workers
                    ),
                    first.seed,
                )
            } else {
                fail(
                    "same_seed_trace_identical",
                    format!(
                        "seed {} / {} workers diverged on replay: {}",
                        first.seed,
                        first.workers,
                        diffs.join(", ")
                    ),
                    first.seed,
                )
            }
        }
        Assertion::OutcomeEqualityAcrossWorkers => {
            // Runs are grouped seeds-outer: runs[i * W + w] is seed i
            // under spec.workers[w].
            let w = spec.workers.len();
            for group in runs.chunks(w) {
                let base = &group[0];
                for other in &group[1..] {
                    let mut diffs = Vec::new();
                    if other.stats != base.stats {
                        diffs.push("stats");
                    }
                    if other.makespan != base.makespan {
                        diffs.push("makespan");
                    }
                    if other.trace_log != base.trace_log {
                        diffs.push("trace log");
                    }
                    if !diffs.is_empty() {
                        return fail(
                            "outcome_equality_across_workers",
                            format!(
                                "seed {}: workers={} and workers={} diverged on {}",
                                base.seed,
                                base.workers,
                                other.workers,
                                diffs.join(", ")
                            ),
                            base.seed,
                        );
                    }
                }
            }
            pass(
                "outcome_equality_across_workers",
                format!(
                    "worker counts {:?} produced identical outcomes across {} seeds",
                    spec.workers, spec.seeds.count
                ),
                first_seed,
            )
        }
        Assertion::FinalScrubClean => {
            match runs.iter().find(|r| r.stats["final_sweep_dirty"] != 0) {
                None => pass(
                    "final_scrub_clean",
                    "every confirmation sweep came back clean".to_string(),
                    first_seed,
                ),
                Some(r) => fail(
                    "final_scrub_clean",
                    format!(
                        "seed {} / {} workers: {} tiles still dirty after the \
                         confirmation sweep",
                        r.seed, r.workers, r.stats["final_sweep_dirty"]
                    ),
                    r.seed,
                ),
            }
        }
        Assertion::StatMin { stat, value } => {
            let observed = total(runs, stat);
            if observed >= *value {
                pass(
                    "stat_min",
                    format!("total {stat} = {observed} >= {value}"),
                    first_seed,
                )
            } else {
                fail(
                    "stat_min",
                    format!("total {stat} = {observed}, expected at least {value}"),
                    first_seed,
                )
            }
        }
        Assertion::StatMax { stat, value } => {
            let observed = total(runs, stat);
            if observed <= *value {
                pass(
                    "stat_max",
                    format!("total {stat} = {observed} <= {value}"),
                    first_seed,
                )
            } else {
                fail(
                    "stat_max",
                    format!("total {stat} = {observed}, expected at most {value}"),
                    first_seed,
                )
            }
        }
        Assertion::StatEq { stat, value } => {
            let observed = total(runs, stat);
            if observed == *value {
                pass("stat_eq", format!("total {stat} = {observed}"), first_seed)
            } else {
                fail(
                    "stat_eq",
                    format!("total {stat} = {observed}, expected exactly {value}"),
                    first_seed,
                )
            }
        }
        Assertion::TraceContains { event } => {
            let hits: u64 = runs
                .iter()
                .map(|r| r.event_counts.get(event).copied().unwrap_or(0))
                .sum();
            if hits > 0 {
                pass(
                    "trace_contains",
                    format!("event '{event}' appeared {hits} times across all traces"),
                    first_seed,
                )
            } else {
                let mut detail =
                    format!("event '{event}' never appeared in any trace; seen events: ");
                let mut seen: Vec<&String> =
                    runs.iter().flat_map(|r| r.event_counts.keys()).collect();
                seen.sort();
                seen.dedup();
                for (i, name) in seen.iter().enumerate() {
                    if i > 0 {
                        detail.push_str(", ");
                    }
                    let _ = write!(detail, "{name}");
                }
                fail("trace_contains", detail, first_seed)
            }
        }
        Assertion::TraceAbsent { event } => {
            match runs
                .iter()
                .find(|r| r.event_counts.get(event).copied().unwrap_or(0) > 0)
            {
                None => pass(
                    "trace_absent",
                    format!("event '{event}' never appeared, as required"),
                    first_seed,
                ),
                Some(r) => fail(
                    "trace_absent",
                    format!(
                        "seed {} / {} workers: forbidden event '{event}' appeared {} times",
                        r.seed, r.workers, r.event_counts[event]
                    ),
                    r.seed,
                ),
            }
        }
        Assertion::MakespanMax { value } => match runs.iter().max_by_key(|r| r.makespan) {
            Some(r) if r.makespan > *value => fail(
                "makespan_max",
                format!(
                    "seed {} / {} workers: makespan {} cycles exceeds the {} bound",
                    r.seed, r.workers, r.makespan, value
                ),
                r.seed,
            ),
            Some(r) => pass(
                "makespan_max",
                format!("worst makespan {} cycles <= {} bound", r.makespan, value),
                first_seed,
            ),
            None => fail("makespan_max", "no runs observed".to_string(), first_seed),
        },
        Assertion::DeadlineMissMax { value } => {
            let observed = total(runs, "deadline_misses");
            if observed <= *value {
                pass(
                    "deadline_miss_max",
                    format!("total deadline_misses = {observed} <= {value}"),
                    first_seed,
                )
            } else {
                fail(
                    "deadline_miss_max",
                    format!("total deadline_misses = {observed}, expected at most {value}"),
                    first_seed,
                )
            }
        }
        Assertion::ShedRateMax { percent } => {
            let submitted = total(runs, "submitted");
            let shed = total(runs, "shed");
            // Integer cross-multiply: shed/submitted <= percent/100
            // without rounding surprises.
            if shed * 100 <= *percent * submitted {
                pass(
                    "shed_rate_max",
                    format!("{shed} of {submitted} submissions shed, within the {percent}% bound"),
                    first_seed,
                )
            } else {
                fail(
                    "shed_rate_max",
                    format!("{shed} of {submitted} submissions shed, above the {percent}% bound"),
                    first_seed,
                )
            }
        }
        Assertion::NoOrphanedTickets => {
            match runs.iter().find(|r| r.stats["orphaned_tickets"] != 0) {
                None => pass(
                    "no_orphaned_tickets",
                    format!(
                        "every run quiesced with zero claimed-but-uncommitted \
                         tickets across {} runs",
                        runs.len()
                    ),
                    first_seed,
                ),
                Some(r) => fail(
                    "no_orphaned_tickets",
                    format!(
                        "seed {} / {} workers: {} tickets were claimed but never \
                         committed or retired",
                        r.seed, r.workers, r.stats["orphaned_tickets"]
                    ),
                    r.seed,
                ),
            }
        }
    }
}

/// Runs a scenario end to end: the full matrix, then every assertion.
pub fn run(spec: &ScenarioSpec) -> ScenarioVerdict {
    let observations = observe(spec);
    let results = spec
        .assertions
        .iter()
        .map(|a| evaluate(a, spec, &observations))
        .collect();
    ScenarioVerdict {
        spec: spec.clone(),
        observations,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(doc: &str) -> ScenarioSpec {
        ScenarioSpec::parse(doc).expect("valid spec")
    }

    #[test]
    fn fault_free_blocking_scenario_passes_its_invariants() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_smoke",
                "fabric": {"soc_name": "engine-smoke", "reconf_tiles": 2},
                "catalog": ["mac", "sort"],
                "seeds": {"count": 2},
                "workload": {"kind": "blocking", "clients": 2, "ops_per_client": 4},
                "assertions": [
                    {"check": "stats_consistent"},
                    {"check": "no_lost_requests"},
                    {"check": "bit_identical_outputs"},
                    {"check": "same_seed_trace_identical"},
                    {"check": "stat_eq", "stat": "cpu_fallback_completions", "value": 0},
                    {"check": "stat_eq", "stat": "injected_total", "value": 0}
                ]
            }"#,
        ));
        assert!(
            verdict.passed(),
            "{:#?}",
            verdict
                .results
                .iter()
                .filter(|r| !r.passed)
                .collect::<Vec<_>>()
        );
        assert_eq!(verdict.observations.runs.len(), 2);
        assert!(verdict
            .observations
            .first_chrome_trace
            .contains("traceEvents"));
    }

    #[test]
    fn failing_stat_bound_reports_observed_and_expected() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_bound",
                "fabric": {"soc_name": "engine-bound", "reconf_tiles": 1},
                "catalog": ["mac"],
                "seeds": {"count": 1},
                "workload": {"kind": "blocking", "clients": 1, "ops_per_client": 2},
                "assertions": [{"check": "stat_min", "stat": "retries", "value": 999}]
            }"#,
        ));
        assert!(!verdict.passed());
        let r = &verdict.results[0];
        assert!(r.detail.contains("retries"), "{}", r.detail);
        assert!(r.detail.contains("999"), "{}", r.detail);
    }

    #[test]
    fn supervised_crash_storm_heals_every_request() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_crash",
                "fabric": {"soc_name": "engine-crash", "reconf_tiles": 2},
                "catalog": ["mac", "sort"],
                "seeds": {"count": 3},
                "workers": [2],
                "worker_faults": {"panic_rate": 0.25, "hang_rate": 0.15,
                                  "max_panics": 4, "max_hangs": 4},
                "policy": {"supervised": true, "restart_budget": 8},
                "workload": {"kind": "blocking", "clients": 3, "ops_per_client": 6},
                "assertions": [
                    {"check": "stats_consistent"},
                    {"check": "no_lost_requests"},
                    {"check": "bit_identical_outputs"},
                    {"check": "no_orphaned_tickets"},
                    {"check": "stat_min", "stat": "injected_worker_panics", "value": 1},
                    {"check": "stat_eq", "stat": "lost_requests", "value": 0}
                ]
            }"#,
        ));
        assert!(
            verdict.passed(),
            "{:#?}",
            verdict
                .results
                .iter()
                .filter(|r| !r.passed)
                .collect::<Vec<_>>()
        );
        let deaths: u64 = verdict
            .observations
            .runs
            .iter()
            .map(|r| r.stats["worker_deaths"])
            .sum();
        let redispatches: u64 = verdict
            .observations
            .runs
            .iter()
            .map(|r| r.stats["redispatches"])
            .sum();
        assert!(
            deaths >= 1,
            "a 25% panic rate over 18 ops must kill someone"
        );
        assert!(
            redispatches >= deaths,
            "every death's claim is redispatched"
        );
    }

    #[test]
    fn overload_burst_sheds_and_stays_consistent() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_overload",
                "fabric": {"soc_name": "engine-overload", "reconf_tiles": 2},
                "catalog": ["mac", "sort"],
                "seeds": {"count": 1},
                "policy": {"queue_capacity": 2, "overload": "reject_new"},
                "workload": {"kind": "overload_burst", "burst": 12, "pin_sort_len": 20000},
                "assertions": [
                    {"check": "stats_consistent"},
                    {"check": "no_lost_requests"},
                    {"check": "no_orphaned_tickets"},
                    {"check": "shed_rate_max", "percent": 100}
                ]
            }"#,
        ));
        assert!(
            verdict.passed(),
            "{:#?}",
            verdict
                .results
                .iter()
                .filter(|r| !r.passed)
                .collect::<Vec<_>>()
        );
        let r = &verdict.observations.runs[0];
        assert_eq!(
            r.stats["completed_ok"] + r.stats["overloaded_rejections"],
            r.stats["submitted"],
            "every burst request is answered: completed or shed"
        );
    }

    #[test]
    fn defrag_probe_turns_reject_into_admit() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_defrag",
                "fabric": {"soc_name": "engine-defrag", "reconf_tiles": 7},
                "catalog": ["mac", "sort"],
                "seeds": {"count": 1},
                "workers": [1, 2],
                "regions": {"enabled": true, "policy": "first_fit",
                            "window": [1, 12], "defrag": true},
                "workload": {"kind": "defrag_probe"},
                "assertions": [
                    {"check": "stats_consistent"},
                    {"check": "no_lost_requests"},
                    {"check": "same_seed_trace_identical"},
                    {"check": "outcome_equality_across_workers"},
                    {"check": "stat_eq", "stat": "oversized_rejected", "value": 2},
                    {"check": "stat_eq", "stat": "repack_admitted", "value": 2},
                    {"check": "stat_eq", "stat": "defrag_moves", "value": 2},
                    {"check": "trace_contains", "event": "defrag.pass"},
                    {"check": "trace_contains", "event": "region.moved"}
                ]
            }"#,
        ));
        assert!(
            verdict.passed(),
            "{:#?}",
            verdict
                .results
                .iter()
                .filter(|r| !r.passed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn defrag_probe_without_defragmenter_stays_refused() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_defrag_off",
                "fabric": {"soc_name": "engine-defrag-off", "reconf_tiles": 7},
                "catalog": ["mac", "sort"],
                "seeds": {"count": 1},
                "regions": {"enabled": true, "window": [1, 12]},
                "workload": {"kind": "defrag_probe"},
                "assertions": [
                    {"check": "stats_consistent"},
                    {"check": "no_lost_requests"},
                    {"check": "stat_eq", "stat": "oversized_rejected", "value": 1},
                    {"check": "stat_eq", "stat": "oversized_admitted", "value": 0},
                    {"check": "stat_eq", "stat": "repack_admitted", "value": 0},
                    {"check": "stat_eq", "stat": "defrag_passes", "value": 0},
                    {"check": "trace_absent", "event": "defrag.pass"}
                ]
            }"#,
        ));
        assert!(
            verdict.passed(),
            "{:#?}",
            verdict
                .results
                .iter()
                .filter(|r| !r.passed)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fault_storm_injects_and_recovers() {
        let verdict = run(&spec(
            r#"{
                "name": "engine_storm",
                "fabric": {"soc_name": "engine-storm", "reconf_tiles": 2},
                "catalog": ["mac", "sort"],
                "seeds": {"count": 5},
                "faults": {"uniform_rate": 0.15},
                "policy": {"max_retries": 2, "backoff_cycles": 32,
                           "backoff_multiplier": 2, "quarantine_after": 2,
                           "cpu_fallback": true},
                "workload": {"kind": "blocking", "clients": 4, "ops_per_client": 6},
                "assertions": [
                    {"check": "stats_consistent"},
                    {"check": "no_lost_requests"},
                    {"check": "bit_identical_outputs"},
                    {"check": "stat_min", "stat": "injected_total", "value": 1}
                ]
            }"#,
        ));
        assert!(
            verdict.passed(),
            "{:#?}",
            verdict
                .results
                .iter()
                .filter(|r| !r.passed)
                .collect::<Vec<_>>()
        );
    }
}
