//! The machine-readable scenario report.
//!
//! The report is the runner's contract with CI: a single JSON document
//! whose bytes are a pure function of the scenario files and their
//! seeds. Nothing wall-clock shaped is included — queue-wait
//! percentiles, backlog high-water marks and timestamps are all
//! excluded — so running the same matrix twice and `diff`-ing the two
//! reports is a complete determinism check.

use crate::engine::ScenarioVerdict;
use presp_events::json::JsonValue;

/// Schema tag stamped into every report.
pub const REPORT_SCHEMA: &str = "presp-scenario-report/v1";

/// A scenario outcome the report can carry: a verdict from the engine,
/// or a file that failed to load/parse (reported as a failure without
/// ever booting a SoC).
pub enum ReportEntry {
    /// The scenario ran to completion (assertions may still have failed).
    Ran {
        /// Path the scenario was loaded from (repo-relative as given).
        file: String,
        /// The engine's verdict.
        verdict: Box<ScenarioVerdict>,
    },
    /// The file never became a spec.
    LoadFailed {
        /// Path as given.
        file: String,
        /// The parse/IO error message.
        error: String,
    },
}

impl ReportEntry {
    /// Whether this entry counts as passed.
    pub fn passed(&self) -> bool {
        match self {
            ReportEntry::Ran { verdict, .. } => verdict.passed(),
            ReportEntry::LoadFailed { .. } => false,
        }
    }

    /// The scenario name (the file stem when the spec never parsed).
    pub fn name(&self) -> String {
        match self {
            ReportEntry::Ran { verdict, .. } => verdict.spec.name.clone(),
            ReportEntry::LoadFailed { file, .. } => std::path::Path::new(file)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| file.clone()),
        }
    }
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn n(v: u64) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn entry_json(entry: &ReportEntry) -> JsonValue {
    match entry {
        ReportEntry::LoadFailed { file, error } => obj(vec![
            ("name", s(&entry.name())),
            ("file", s(file)),
            ("passed", JsonValue::Bool(false)),
            ("load_error", s(error)),
        ]),
        ReportEntry::Ran { file, verdict } => {
            let totals = crate::engine::totals(&verdict.observations.runs);
            let assertions: Vec<JsonValue> = verdict
                .results
                .iter()
                .map(|r| {
                    obj(vec![
                        ("check", s(&r.check)),
                        ("passed", JsonValue::Bool(r.passed)),
                        ("detail", s(&r.detail)),
                        ("replay_seed", n(r.replay_seed)),
                    ])
                })
                .collect();
            obj(vec![
                ("name", s(&verdict.spec.name)),
                ("file", s(file)),
                ("passed", JsonValue::Bool(verdict.passed())),
                ("runs", n(verdict.observations.runs.len() as u64)),
                (
                    "workers",
                    JsonValue::Array(verdict.spec.workers.iter().map(|&w| n(w as u64)).collect()),
                ),
                (
                    "seeds",
                    obj(vec![
                        ("start", n(verdict.spec.seeds.start)),
                        ("count", n(verdict.spec.seeds.count)),
                    ]),
                ),
                (
                    "totals",
                    JsonValue::Object(
                        totals
                            .iter()
                            .map(|(k, &v)| ((*k).to_string(), n(v)))
                            .collect(),
                    ),
                ),
                ("assertions", JsonValue::Array(assertions)),
            ])
        }
    }
}

/// Renders the full run as the canonical JSON report. Byte-identical
/// across repeats of the same scenario set: every value in it is
/// virtual-time deterministic.
pub fn render(entries: &[ReportEntry]) -> String {
    let passed = entries.iter().filter(|e| e.passed()).count() as u64;
    let doc = obj(vec![
        ("schema", s(REPORT_SCHEMA)),
        ("total", n(entries.len() as u64)),
        ("passed", n(passed)),
        ("failed", n(entries.len() as u64 - passed)),
        (
            "scenarios",
            JsonValue::Array(entries.iter().map(entry_json).collect()),
        ),
    ]);
    let mut out = doc.pretty();
    out.push('\n');
    out
}
