//! The declarative scenario language.
//!
//! A scenario file is a single JSON document describing everything a
//! runtime experiment needs — fabric shape, accelerator catalog, seed
//! matrix, worker counts, fault/SEU plan, scrubber policy, workload mix
//! and the list of assertions that make it a *test* rather than a demo.
//! [`ScenarioSpec::parse`] is strict: unknown keys, out-of-range rates
//! and structurally impossible combinations are rejected with an error
//! message that names the offending key and the accepted values, so a
//! typo in a data file fails loudly instead of silently weakening a
//! scenario.
//!
//! The parser and serializer round-trip exactly:
//! `parse(serialize(spec)) == spec` for every valid spec (property-tested
//! in `tests/parser_roundtrip.rs`).

use presp_events::json::{self, JsonValue};
use presp_floorplan::FitPolicy;
use presp_fpga::fault::FaultConfig;
use presp_runtime::manager::{OverloadPolicy, RecoveryPolicy};
use presp_runtime::supervisor::WorkerFaultConfig;
use std::fmt;

/// A scenario-language error: parse failures and semantic validation
/// failures, always with an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ScenarioError> {
    Err(ScenarioError(msg.into()))
}

/// The accelerator kinds a scenario workload can exercise. Restricted to
/// the kinds whose expected outputs the engine can recompute bit-exactly
/// on the CPU (the `bit_identical_outputs` oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogKind {
    /// Multiply-accumulate (dot product).
    Mac,
    /// Vector sort.
    Sort,
}

impl CatalogKind {
    /// The JSON token.
    pub fn token(self) -> &'static str {
        match self {
            CatalogKind::Mac => "mac",
            CatalogKind::Sort => "sort",
        }
    }

    fn from_token(token: &str) -> Option<CatalogKind> {
        match token {
            "mac" => Some(CatalogKind::Mac),
            "sort" => Some(CatalogKind::Sort),
            _ => None,
        }
    }
}

/// The simulated fabric: an ESP-style grid (CPU + MEM + AUX) with
/// `reconf_tiles` reconfigurable sockets — the shape of the paper's
/// SoC_A–SoC_D / SoC_X–SoC_Z deployments. Up to 6 tiles boot the
/// canonical 3×3 grid; larger counts boot a near-square scaled grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricSpec {
    /// SoC configuration name (appears in traces and reports).
    pub soc_name: String,
    /// Reconfigurable tile count, `1..=64`.
    pub reconf_tiles: usize,
}

/// The seed matrix: scenarios run once per seed in
/// `start..start + count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSpec {
    /// First seed.
    pub start: u64,
    /// Number of consecutive seeds.
    pub count: u64,
}

/// Scrubber-daemon policy for the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubberSpec {
    /// Whether a [`presp_runtime::scrubber::ScrubberDaemon`] is attached.
    pub enabled: bool,
    /// Synchronous full sweep every N submitted operations (0 = never).
    pub sweep_every_ops: u64,
    /// After the workload drains: sweep, disarm the fault plan, and sweep
    /// again — the `final_scrub_clean` assertion checks the second sweep.
    pub final_sweep: bool,
}

/// Amorphous-floorplanning policy for the run: flexible-boundary
/// regions leased from the [`presp_floorplan`] allocator instead of
/// fixed sockets, with an optional online defragmenter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionsSpec {
    /// Whether admission goes through the dynamic region allocator.
    pub enabled: bool,
    /// Span-selection policy.
    pub policy: FitPolicy,
    /// Reconfigurable column window `[lo, hi)`; `None` manages every
    /// reconfigurable column of the device.
    pub window: Option<(u32, u32)>,
    /// Whether a [`presp_runtime::defrag::Defragmenter`] is attached —
    /// and whether a request refused for fragmentation is retried after
    /// one synchronous repack pass.
    pub defrag: bool,
}

/// The workload the engine drives through the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// `clients` logical application threads, each with a fixed script of
    /// `ops_per_client` operations cycling through the catalog; a seeded
    /// scheduler draws which client issues next (the stress-harness
    /// interleaving), and every operation blocks until it completes.
    Blocking {
        /// Logical application threads.
        clients: usize,
        /// Operations per thread.
        ops_per_client: usize,
    },
    /// The deterministic coalescing probe: a single worker is pinned on a
    /// large sort while `burst` identical reconfigurations queue behind
    /// it — all but the first must tail-fold. Requires `workers == [1]`
    /// and at least two tiles.
    CoalesceBurst {
        /// Identical reconfiguration requests issued while the worker is
        /// pinned.
        burst: usize,
        /// Length of the worker-pinning sort (bigger = more wall-clock
        /// headroom for the burst to enqueue).
        pin_sort_len: usize,
    },
    /// The open-loop overload probe: a worker is pinned on a large sort
    /// while `burst` *distinct* MAC executions (so nothing coalesces)
    /// are fired at the first tile without awaiting; the admission
    /// controller's verdicts (`Overloaded`, `DeadlineExceeded`) are then
    /// collected. Requires at least two tiles and both catalog kinds.
    OverloadBurst {
        /// Distinct execute requests fired at the first tile while the
        /// worker is pinned.
        burst: usize,
        /// Length of the worker-pinning sort.
        pin_sort_len: usize,
    },
    /// The deterministic fragmentation probe: seven 1-column loads pack
    /// the region window, one swap opens two non-adjacent holes, and a
    /// 3-column GEMM request is refused for fragmentation. With
    /// `regions.defrag` on, one synchronous repack pass runs and the
    /// retry must be admitted; with it off, the request stays refused.
    /// Requires `regions.enabled`, a window, at least seven tiles and
    /// both catalog kinds (the engine registers the wide GEMM bitstream
    /// itself).
    DefragProbe,
    /// Seeded region churn: every round each tile draws an accelerator
    /// (1-column MAC, 1-column BRAM sort, 3-column GEMM) from a seeded
    /// stream and reconfigures to it, fragmenting the window; a request
    /// refused for fragmentation triggers one repack-and-retry when
    /// `regions.defrag` is on. Requires `regions.enabled` and both
    /// catalog kinds.
    FragmentChurn {
        /// Churn rounds (each round issues one draw per tile).
        rounds: usize,
    },
}

/// One declarative assertion over a scenario's observations.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// Every run's [`presp_runtime::manager::ManagerStats::consistent`]
    /// holds.
    StatsConsistent,
    /// Every submitted operation completed (accelerator or CPU fallback)
    /// and was counted exactly once.
    NoLostRequests,
    /// Every completed operation's value equals the CPU-model expectation
    /// bit for bit.
    BitIdenticalOutputs,
    /// Re-running the first (seed, worker-count) cell reproduces stats,
    /// makespan and the trace log byte for byte.
    SameSeedTraceIdentical,
    /// For every seed, all configured worker counts produce identical
    /// stats, makespan and trace logs. Requires at least two entries in
    /// `workers`.
    OutcomeEqualityAcrossWorkers,
    /// The post-drain confirmation sweep (fault plan disarmed) finds
    /// every tile clean: each upset was repaired or its tile
    /// quarantined. Requires the scrubber with `final_sweep`.
    FinalScrubClean,
    /// The named stat, totalled across all runs, is at least `value`.
    StatMin {
        /// A key from [`STAT_KEYS`].
        stat: String,
        /// Inclusive lower bound.
        value: u64,
    },
    /// The named stat, totalled across all runs, is at most `value`.
    StatMax {
        /// A key from [`STAT_KEYS`].
        stat: String,
        /// Inclusive upper bound.
        value: u64,
    },
    /// The named stat, totalled across all runs, equals `value` exactly.
    StatEq {
        /// A key from [`STAT_KEYS`].
        stat: String,
        /// Expected total.
        value: u64,
    },
    /// At least one run's trace contains an event with this name (the
    /// stable name from `TraceEvent::name()`, e.g. `"seu.injected"`).
    TraceContains {
        /// Trace event name.
        event: String,
    },
    /// No run's trace contains an event with this name.
    TraceAbsent {
        /// Trace event name.
        event: String,
    },
    /// Every run's virtual-time makespan is at most `value` cycles.
    MakespanMax {
        /// Inclusive bound, in SoC cycles.
        value: u64,
    },
    /// The manager's `deadline_misses` counter, totalled across all
    /// runs, is at most `value`.
    DeadlineMissMax {
        /// Inclusive upper bound on total deadline misses.
        value: u64,
    },
    /// Shed requests (admission refusals and displaced victims) as a
    /// percentage of submissions, across all runs, is at most `percent`.
    ShedRateMax {
        /// Inclusive upper bound, in whole percent (`0..=100`).
        percent: u64,
    },
    /// Every run ends (post-shutdown, so the scheduler is quiescent)
    /// with zero claimed-but-uncommitted tickets — nothing the
    /// supervisor failed to heal.
    NoOrphanedTickets,
}

/// Every stat key the `stat_min`/`stat_max`/`stat_eq` assertions accept.
/// Totals are summed across all runs of the scenario.
pub const STAT_KEYS: &[&str] = &[
    // ManagerStats
    "reconfig_requests",
    "reconfigurations",
    "driver_cache_hits",
    "coalesced",
    "retries_exhausted",
    "rejected",
    "retries",
    "quarantines",
    "reconfig_cycles",
    "runs",
    "fallback_runs",
    "scrub_passes",
    "frames_repaired",
    "scrub_quarantines",
    "deadline_misses",
    "shed",
    // Amorphous-floorplanning accounting (ManagerStats)
    "oversized_rejected",
    "oversized_admitted",
    "repack_admitted",
    // Defragmenter counters
    "defrag_passes",
    "defrag_moves",
    "frames_moved",
    // SupervisorStats
    "worker_deaths",
    "worker_respawns",
    "redispatches",
    "injected_worker_panics",
    "injected_worker_hangs",
    "injected_worker_stalls",
    "orphaned_tickets",
    // SchedulerStats (the deterministic subset)
    "sched_admitted",
    "sched_completed",
    "sched_coalesced",
    // Verified-bitstream cache
    "bitstream_cache_hits",
    "bitstream_cache_misses",
    "bitstream_cache_evictions",
    // ScrubberDaemon counters
    "scrubber_passes",
    "scrubber_clean_passes",
    "scrubber_frames_repaired",
    "scrubber_quarantines",
    // Injected faults
    "injected_total",
    "injected_icap_corruptions",
    "injected_dfxc_stalls",
    "injected_registry_misses",
    "injected_decoupler_delays",
    "injected_seu_upsets",
    "injected_seu_double_bits",
    // Engine-level accounting
    "submitted",
    "completed_ok",
    "cpu_fallback_completions",
    "value_mismatches",
    "lost_requests",
    "overloaded_rejections",
    "deadline_cancellations",
    "quarantined_tiles",
    "final_sweep_dirty",
    "region_rejections",
];

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (the JUnit test-case name).
    pub name: String,
    /// Human-readable intent.
    pub description: String,
    /// Fabric shape.
    pub fabric: FabricSpec,
    /// Accelerator kinds registered on every reconfigurable tile.
    pub catalog: Vec<CatalogKind>,
    /// Seed matrix.
    pub seeds: SeedSpec,
    /// Worker counts to run the matrix under (each seed runs once per
    /// count).
    pub workers: Vec<usize>,
    /// Verified-bitstream cache capacity (0 disables the cache).
    pub cache_capacity: usize,
    /// Fault/SEU plan knobs (a [`FaultConfig`], seeded per run).
    pub faults: FaultConfig,
    /// Software worker-fault knobs (a [`WorkerFaultConfig`], seeded per
    /// run; all-zero injects nothing).
    pub worker_faults: WorkerFaultConfig,
    /// Manager recovery policy.
    pub policy: RecoveryPolicy,
    /// Scrubber policy.
    pub scrubber: ScrubberSpec,
    /// Amorphous-floorplanning policy.
    pub regions: RegionsSpec,
    /// The workload mix.
    pub workload: WorkloadSpec,
    /// The checks that decide pass/fail.
    pub assertions: Vec<Assertion>,
}

// ---- parsing helpers -----------------------------------------------------

/// Checks an object for keys outside `allowed`, reporting the context.
fn reject_unknown_keys(
    value: &JsonValue,
    ctx: &str,
    allowed: &[&str],
) -> Result<(), ScenarioError> {
    let JsonValue::Object(fields) = value else {
        return err(format!("{ctx} must be a JSON object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return err(format!(
                "unknown key '{key}' in {ctx} (expected one of: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn get_str(value: &JsonValue, ctx: &str, key: &str) -> Result<String, ScenarioError> {
    match value.get(key) {
        Some(JsonValue::String(s)) => Ok(s.clone()),
        Some(_) => err(format!("'{key}' in {ctx} must be a string")),
        None => err(format!("missing required key '{key}' in {ctx}")),
    }
}

fn get_usize(value: &JsonValue, ctx: &str, key: &str) -> Result<usize, ScenarioError> {
    match value.get(key) {
        Some(v) => v.as_usize().ok_or_else(|| {
            ScenarioError(format!("'{key}' in {ctx} must be a non-negative integer"))
        }),
        None => err(format!("missing required key '{key}' in {ctx}")),
    }
}

fn get_u64(value: &JsonValue, ctx: &str, key: &str) -> Result<u64, ScenarioError> {
    get_usize(value, ctx, key).map(|v| v as u64)
}

fn opt_u64(value: &JsonValue, ctx: &str, key: &str, default: u64) -> Result<u64, ScenarioError> {
    match value.get(key) {
        None => Ok(default),
        Some(_) => get_u64(value, ctx, key),
    }
}

fn opt_bool(value: &JsonValue, ctx: &str, key: &str, default: bool) -> Result<bool, ScenarioError> {
    match value.get(key) {
        None => Ok(default),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => err(format!("'{key}' in {ctx} must be true or false")),
    }
}

/// A probability knob: must be a number in `[0, 1]`.
fn opt_rate(value: &JsonValue, ctx: &str, key: &str, default: f64) -> Result<f64, ScenarioError> {
    match value.get(key) {
        None => Ok(default),
        Some(JsonValue::Number(n)) if (0.0..=1.0).contains(n) => Ok(*n),
        Some(JsonValue::Number(n)) => err(format!(
            "'{key}' in {ctx} must be a probability between 0 and 1 (got {n})"
        )),
        Some(_) => err(format!("'{key}' in {ctx} must be a number")),
    }
}

fn opt_nonneg(value: &JsonValue, ctx: &str, key: &str, default: f64) -> Result<f64, ScenarioError> {
    match value.get(key) {
        None => Ok(default),
        Some(JsonValue::Number(n)) if *n >= 0.0 => Ok(*n),
        Some(JsonValue::Number(n)) => {
            err(format!("'{key}' in {ctx} must be non-negative (got {n})"))
        }
        Some(_) => err(format!("'{key}' in {ctx} must be a number")),
    }
}

// ---- section parsers -----------------------------------------------------

fn parse_fabric(doc: &JsonValue) -> Result<FabricSpec, ScenarioError> {
    let Some(fabric) = doc.get("fabric") else {
        return err("missing required key 'fabric' at the top level");
    };
    reject_unknown_keys(fabric, "'fabric'", &["soc_name", "reconf_tiles"])?;
    let soc_name = get_str(fabric, "'fabric'", "soc_name")?;
    let reconf_tiles = get_usize(fabric, "'fabric'", "reconf_tiles")?;
    if !(1..=64).contains(&reconf_tiles) {
        return err(format!(
            "'fabric.reconf_tiles' must be between 1 and 64 (got {reconf_tiles}): \
             up to 6 tiles boot the canonical 3x3 grid, larger counts a \
             near-square scaled grid"
        ));
    }
    Ok(FabricSpec {
        soc_name,
        reconf_tiles,
    })
}

fn parse_catalog(doc: &JsonValue) -> Result<Vec<CatalogKind>, ScenarioError> {
    let Some(catalog) = doc.get("catalog") else {
        return err("missing required key 'catalog' at the top level");
    };
    let Some(items) = catalog.as_array() else {
        return err("'catalog' must be an array of accelerator kinds");
    };
    if items.is_empty() {
        return err("'catalog' must name at least one accelerator kind");
    }
    let mut kinds = Vec::with_capacity(items.len());
    for item in items {
        let token = item
            .as_str()
            .ok_or_else(|| ScenarioError("'catalog' entries must be strings".into()))?;
        let kind = CatalogKind::from_token(token).ok_or_else(|| {
            ScenarioError(format!(
                "unknown accelerator kind '{token}' in 'catalog' (expected one of: mac, sort)"
            ))
        })?;
        if kinds.contains(&kind) {
            return err(format!("duplicate accelerator kind '{token}' in 'catalog'"));
        }
        kinds.push(kind);
    }
    Ok(kinds)
}

fn parse_seeds(doc: &JsonValue) -> Result<SeedSpec, ScenarioError> {
    let Some(seeds) = doc.get("seeds") else {
        return err("missing required key 'seeds' at the top level");
    };
    reject_unknown_keys(seeds, "'seeds'", &["start", "count"])?;
    let start = opt_u64(seeds, "'seeds'", "start", 0)?;
    let count = get_u64(seeds, "'seeds'", "count")?;
    if !(1..=10_000).contains(&count) {
        return err(format!(
            "'seeds.count' must be between 1 and 10000 (got {count})"
        ));
    }
    Ok(SeedSpec { start, count })
}

fn parse_workers(doc: &JsonValue) -> Result<Vec<usize>, ScenarioError> {
    let Some(workers) = doc.get("workers") else {
        return Ok(vec![1]);
    };
    let Some(items) = workers.as_array() else {
        return err("'workers' must be an array of worker counts, e.g. [1, 4]");
    };
    if items.is_empty() {
        return err("'workers' must list at least one worker count");
    }
    let mut counts = Vec::with_capacity(items.len());
    for item in items {
        let n = item
            .as_usize()
            .ok_or_else(|| ScenarioError("'workers' entries must be positive integers".into()))?;
        if !(1..=64).contains(&n) {
            return err(format!(
                "'workers' entries must be between 1 and 64 (got {n})"
            ));
        }
        if counts.contains(&n) {
            return err(format!("duplicate worker count {n} in 'workers'"));
        }
        counts.push(n);
    }
    Ok(counts)
}

const FAULT_KEYS: &[&str] = &[
    "uniform_rate",
    "icap_flip_rate",
    "dfxc_stall_rate",
    "dfxc_stall_max_cycles",
    "registry_miss_rate",
    "decoupler_delay_rate",
    "decoupler_delay_max_cycles",
    "seu_per_mcycle",
    "seu_double_bit_rate",
];

fn parse_faults(doc: &JsonValue) -> Result<FaultConfig, ScenarioError> {
    let Some(faults) = doc.get("faults") else {
        return Ok(FaultConfig::default());
    };
    reject_unknown_keys(faults, "'faults'", FAULT_KEYS)?;
    let ctx = "'faults'";
    // `uniform_rate` seeds every probability knob; explicit keys override.
    let base = match faults.get("uniform_rate") {
        Some(_) => FaultConfig::uniform(opt_rate(faults, ctx, "uniform_rate", 0.0)?),
        None => FaultConfig::default(),
    };
    Ok(FaultConfig {
        icap_flip_rate: opt_rate(faults, ctx, "icap_flip_rate", base.icap_flip_rate)?,
        dfxc_stall_rate: opt_rate(faults, ctx, "dfxc_stall_rate", base.dfxc_stall_rate)?,
        dfxc_stall_max_cycles: opt_u64(
            faults,
            ctx,
            "dfxc_stall_max_cycles",
            base.dfxc_stall_max_cycles,
        )?,
        registry_miss_rate: opt_rate(faults, ctx, "registry_miss_rate", base.registry_miss_rate)?,
        decoupler_delay_rate: opt_rate(
            faults,
            ctx,
            "decoupler_delay_rate",
            base.decoupler_delay_rate,
        )?,
        decoupler_delay_max_cycles: opt_u64(
            faults,
            ctx,
            "decoupler_delay_max_cycles",
            base.decoupler_delay_max_cycles,
        )?,
        seu_per_mcycle: opt_nonneg(faults, ctx, "seu_per_mcycle", 0.0)?,
        seu_double_bit_rate: opt_rate(faults, ctx, "seu_double_bit_rate", 0.0)?,
    })
}

/// The JSON token of an overload policy.
fn overload_token(policy: OverloadPolicy) -> &'static str {
    match policy {
        OverloadPolicy::RejectNew => "reject_new",
        OverloadPolicy::ShedOldest => "shed_oldest",
    }
}

fn parse_policy(doc: &JsonValue) -> Result<RecoveryPolicy, ScenarioError> {
    let Some(policy) = doc.get("policy") else {
        return Ok(RecoveryPolicy::default());
    };
    reject_unknown_keys(
        policy,
        "'policy'",
        &[
            "max_retries",
            "backoff_cycles",
            "backoff_multiplier",
            "quarantine_after",
            "cpu_fallback",
            "deadline_cycles",
            "queue_capacity",
            "overload",
            "breaker",
            "supervised",
            "restart_budget",
        ],
    )?;
    let ctx = "'policy'";
    let default = RecoveryPolicy::default();
    let overload = match policy.get("overload") {
        None => default.overload,
        Some(JsonValue::String(s)) => match s.as_str() {
            "reject_new" => OverloadPolicy::RejectNew,
            "shed_oldest" => OverloadPolicy::ShedOldest,
            other => {
                return err(format!(
                    "unknown 'policy.overload' value '{other}' \
                     (expected one of: reject_new, shed_oldest)"
                ))
            }
        },
        Some(_) => return err("'overload' in 'policy' must be a string"),
    };
    Ok(RecoveryPolicy {
        max_retries: opt_u64(policy, ctx, "max_retries", u64::from(default.max_retries))? as u32,
        backoff_cycles: opt_u64(policy, ctx, "backoff_cycles", default.backoff_cycles)?,
        backoff_multiplier: opt_u64(
            policy,
            ctx,
            "backoff_multiplier",
            default.backoff_multiplier,
        )?,
        quarantine_after: opt_u64(
            policy,
            ctx,
            "quarantine_after",
            u64::from(default.quarantine_after),
        )? as u32,
        cpu_fallback: opt_bool(policy, ctx, "cpu_fallback", default.cpu_fallback)?,
        deadline_cycles: opt_u64(policy, ctx, "deadline_cycles", default.deadline_cycles)?,
        queue_capacity: opt_u64(policy, ctx, "queue_capacity", default.queue_capacity)?,
        overload,
        breaker: opt_bool(policy, ctx, "breaker", default.breaker)?,
        supervised: opt_bool(policy, ctx, "supervised", default.supervised)?,
        restart_budget: opt_u64(
            policy,
            ctx,
            "restart_budget",
            u64::from(default.restart_budget),
        )? as u32,
    })
}

const WORKER_FAULT_KEYS: &[&str] = &[
    "panic_rate",
    "hang_rate",
    "stall_rate",
    "stall_max_micros",
    "max_panics",
    "max_hangs",
];

fn parse_worker_faults(doc: &JsonValue) -> Result<WorkerFaultConfig, ScenarioError> {
    let Some(wf) = doc.get("worker_faults") else {
        return Ok(WorkerFaultConfig::default());
    };
    reject_unknown_keys(wf, "'worker_faults'", WORKER_FAULT_KEYS)?;
    let ctx = "'worker_faults'";
    Ok(WorkerFaultConfig {
        panic_rate: opt_rate(wf, ctx, "panic_rate", 0.0)?,
        hang_rate: opt_rate(wf, ctx, "hang_rate", 0.0)?,
        stall_rate: opt_rate(wf, ctx, "stall_rate", 0.0)?,
        stall_max_micros: opt_u64(wf, ctx, "stall_max_micros", 0)?,
        max_panics: opt_u64(wf, ctx, "max_panics", 0)?,
        max_hangs: opt_u64(wf, ctx, "max_hangs", 0)?,
    })
}

fn parse_scrubber(doc: &JsonValue) -> Result<ScrubberSpec, ScenarioError> {
    let Some(scrubber) = doc.get("scrubber") else {
        return Ok(ScrubberSpec::default());
    };
    reject_unknown_keys(
        scrubber,
        "'scrubber'",
        &["enabled", "sweep_every_ops", "final_sweep"],
    )?;
    let ctx = "'scrubber'";
    Ok(ScrubberSpec {
        enabled: opt_bool(scrubber, ctx, "enabled", false)?,
        sweep_every_ops: opt_u64(scrubber, ctx, "sweep_every_ops", 0)?,
        final_sweep: opt_bool(scrubber, ctx, "final_sweep", false)?,
    })
}

/// The JSON token of a fit policy.
fn fit_token(policy: FitPolicy) -> &'static str {
    match policy {
        FitPolicy::FirstFit => "first_fit",
        FitPolicy::BestFit => "best_fit",
    }
}

fn parse_regions(doc: &JsonValue) -> Result<RegionsSpec, ScenarioError> {
    let Some(regions) = doc.get("regions") else {
        return Ok(RegionsSpec::default());
    };
    reject_unknown_keys(
        regions,
        "'regions'",
        &["enabled", "policy", "window", "defrag"],
    )?;
    let ctx = "'regions'";
    let policy = match regions.get("policy") {
        None => FitPolicy::default(),
        Some(JsonValue::String(s)) => match s.as_str() {
            "first_fit" => FitPolicy::FirstFit,
            "best_fit" => FitPolicy::BestFit,
            other => {
                return err(format!(
                    "unknown 'regions.policy' value '{other}' \
                     (expected one of: first_fit, best_fit)"
                ))
            }
        },
        Some(_) => return err("'policy' in 'regions' must be a string"),
    };
    let window = match regions.get("window") {
        None => None,
        Some(JsonValue::Array(items)) => {
            let bounds: Option<Vec<u32>> = items
                .iter()
                .map(|v| v.as_usize().map(|n| n as u32))
                .collect();
            match bounds.as_deref() {
                Some([lo, hi]) if lo < hi => Some((*lo, *hi)),
                _ => {
                    return err("'regions.window' must be a two-element array [lo, hi] \
                         of column indices with lo < hi")
                }
            }
        }
        Some(_) => {
            return err("'regions.window' must be a two-element array [lo, hi] \
                 of column indices with lo < hi")
        }
    };
    Ok(RegionsSpec {
        enabled: opt_bool(regions, ctx, "enabled", false)?,
        policy,
        window,
        defrag: opt_bool(regions, ctx, "defrag", false)?,
    })
}

fn parse_workload(doc: &JsonValue) -> Result<WorkloadSpec, ScenarioError> {
    let Some(workload) = doc.get("workload") else {
        return err("missing required key 'workload' at the top level");
    };
    let kind = get_str(workload, "'workload'", "kind")?;
    match kind.as_str() {
        "blocking" => {
            reject_unknown_keys(
                workload,
                "'workload'",
                &["kind", "clients", "ops_per_client"],
            )?;
            let clients = get_usize(workload, "'workload'", "clients")?;
            let ops = get_usize(workload, "'workload'", "ops_per_client")?;
            if clients == 0 || ops == 0 {
                return err(format!(
                    "'workload.clients' and 'workload.ops_per_client' must be at least 1 \
                     (got {clients} and {ops})"
                ));
            }
            Ok(WorkloadSpec::Blocking {
                clients,
                ops_per_client: ops,
            })
        }
        "coalesce_burst" => {
            reject_unknown_keys(workload, "'workload'", &["kind", "burst", "pin_sort_len"])?;
            let burst = get_usize(workload, "'workload'", "burst")?;
            let pin = get_usize(workload, "'workload'", "pin_sort_len")?;
            if burst < 2 {
                return err(format!(
                    "'workload.burst' must be at least 2 to observe coalescing (got {burst})"
                ));
            }
            if pin < 1000 {
                return err(format!(
                    "'workload.pin_sort_len' must be at least 1000 to pin the worker (got {pin})"
                ));
            }
            Ok(WorkloadSpec::CoalesceBurst {
                burst,
                pin_sort_len: pin,
            })
        }
        "overload_burst" => {
            reject_unknown_keys(workload, "'workload'", &["kind", "burst", "pin_sort_len"])?;
            let burst = get_usize(workload, "'workload'", "burst")?;
            let pin = get_usize(workload, "'workload'", "pin_sort_len")?;
            if burst < 1 {
                return err("'workload.burst' must be at least 1 (got 0)".to_string());
            }
            if pin < 1000 {
                return err(format!(
                    "'workload.pin_sort_len' must be at least 1000 to pin the worker (got {pin})"
                ));
            }
            Ok(WorkloadSpec::OverloadBurst {
                burst,
                pin_sort_len: pin,
            })
        }
        "defrag_probe" => {
            reject_unknown_keys(workload, "'workload'", &["kind"])?;
            Ok(WorkloadSpec::DefragProbe)
        }
        "fragment_churn" => {
            reject_unknown_keys(workload, "'workload'", &["kind", "rounds"])?;
            let rounds = get_usize(workload, "'workload'", "rounds")?;
            if !(1..=1_000).contains(&rounds) {
                return err(format!(
                    "'workload.rounds' must be between 1 and 1000 (got {rounds})"
                ));
            }
            Ok(WorkloadSpec::FragmentChurn { rounds })
        }
        other => err(format!(
            "unknown workload kind '{other}' \
             (expected one of: blocking, coalesce_burst, overload_burst, \
             defrag_probe, fragment_churn)"
        )),
    }
}

fn parse_assertion(value: &JsonValue, index: usize) -> Result<Assertion, ScenarioError> {
    let ctx = format!("'assertions[{index}]'");
    let check = get_str(value, &ctx, "check")?;
    let stat_arg = |value: &JsonValue| -> Result<(String, u64), ScenarioError> {
        reject_unknown_keys(value, &ctx, &["check", "stat", "value"])?;
        let stat = get_str(value, &ctx, "stat")?;
        if !STAT_KEYS.contains(&stat.as_str()) {
            return err(format!(
                "unknown stat '{stat}' in {ctx} (expected one of: {})",
                STAT_KEYS.join(", ")
            ));
        }
        let v = get_u64(value, &ctx, "value")?;
        Ok((stat, v))
    };
    let bare = |value: &JsonValue, a: Assertion| -> Result<Assertion, ScenarioError> {
        reject_unknown_keys(value, &ctx, &["check"])?;
        Ok(a)
    };
    match check.as_str() {
        "stats_consistent" => bare(value, Assertion::StatsConsistent),
        "no_lost_requests" => bare(value, Assertion::NoLostRequests),
        "bit_identical_outputs" => bare(value, Assertion::BitIdenticalOutputs),
        "same_seed_trace_identical" => bare(value, Assertion::SameSeedTraceIdentical),
        "outcome_equality_across_workers" => bare(value, Assertion::OutcomeEqualityAcrossWorkers),
        "final_scrub_clean" => bare(value, Assertion::FinalScrubClean),
        "stat_min" => stat_arg(value).map(|(stat, value)| Assertion::StatMin { stat, value }),
        "stat_max" => stat_arg(value).map(|(stat, value)| Assertion::StatMax { stat, value }),
        "stat_eq" => stat_arg(value).map(|(stat, value)| Assertion::StatEq { stat, value }),
        "trace_contains" => {
            reject_unknown_keys(value, &ctx, &["check", "event"])?;
            Ok(Assertion::TraceContains {
                event: get_str(value, &ctx, "event")?,
            })
        }
        "trace_absent" => {
            reject_unknown_keys(value, &ctx, &["check", "event"])?;
            Ok(Assertion::TraceAbsent {
                event: get_str(value, &ctx, "event")?,
            })
        }
        "makespan_max" => {
            reject_unknown_keys(value, &ctx, &["check", "value"])?;
            Ok(Assertion::MakespanMax {
                value: get_u64(value, &ctx, "value")?,
            })
        }
        "deadline_miss_max" => {
            reject_unknown_keys(value, &ctx, &["check", "value"])?;
            Ok(Assertion::DeadlineMissMax {
                value: get_u64(value, &ctx, "value")?,
            })
        }
        "shed_rate_max" => {
            reject_unknown_keys(value, &ctx, &["check", "percent"])?;
            let percent = get_u64(value, &ctx, "percent")?;
            if percent > 100 {
                return err(format!(
                    "'percent' in {ctx} must be between 0 and 100 (got {percent})"
                ));
            }
            Ok(Assertion::ShedRateMax { percent })
        }
        "no_orphaned_tickets" => bare(value, Assertion::NoOrphanedTickets),
        other => err(format!(
            "unknown check '{other}' in {ctx} (expected one of: stats_consistent, \
             no_lost_requests, bit_identical_outputs, same_seed_trace_identical, \
             outcome_equality_across_workers, final_scrub_clean, stat_min, stat_max, \
             stat_eq, trace_contains, trace_absent, makespan_max, deadline_miss_max, \
             shed_rate_max, no_orphaned_tickets)"
        )),
    }
}

const TOP_KEYS: &[&str] = &[
    "name",
    "description",
    "fabric",
    "catalog",
    "seeds",
    "workers",
    "cache_capacity",
    "faults",
    "worker_faults",
    "policy",
    "scrubber",
    "regions",
    "workload",
    "assertions",
];

impl ScenarioSpec {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the offending key and the
    /// accepted values for JSON syntax errors, unknown keys, out-of-range
    /// values and structurally impossible combinations.
    pub fn parse(input: &str) -> Result<ScenarioSpec, ScenarioError> {
        let doc = json::parse(input).map_err(|e| ScenarioError(format!("invalid JSON: {e}")))?;
        ScenarioSpec::from_json_value(&doc)
    }

    /// Parses a scenario from an already-parsed JSON document.
    ///
    /// # Errors
    ///
    /// See [`ScenarioSpec::parse`].
    pub fn from_json_value(doc: &JsonValue) -> Result<ScenarioSpec, ScenarioError> {
        reject_unknown_keys(doc, "the top-level scenario object", TOP_KEYS)?;
        let name = get_str(doc, "the top level", "name")?;
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return err(format!(
                "'name' must be a non-empty identifier of [a-zA-Z0-9_] (got '{name}')"
            ));
        }
        let description = match doc.get("description") {
            None => String::new(),
            Some(JsonValue::String(s)) => s.clone(),
            Some(_) => return err("'description' must be a string"),
        };
        let fabric = parse_fabric(doc)?;
        let catalog = parse_catalog(doc)?;
        let seeds = parse_seeds(doc)?;
        let workers = parse_workers(doc)?;
        let cache_capacity = match doc.get("cache_capacity") {
            None => 0,
            Some(_) => get_usize(doc, "the top level", "cache_capacity")?,
        };
        let faults = parse_faults(doc)?;
        let worker_faults = parse_worker_faults(doc)?;
        let policy = parse_policy(doc)?;
        let scrubber = parse_scrubber(doc)?;
        let regions = parse_regions(doc)?;
        let workload = parse_workload(doc)?;

        let Some(assertions_value) = doc.get("assertions") else {
            return err("missing required key 'assertions' at the top level");
        };
        let Some(items) = assertions_value.as_array() else {
            return err("'assertions' must be an array of checks");
        };
        if items.is_empty() {
            return err("'assertions' must contain at least one check — \
                        a scenario without assertions tests nothing");
        }
        let assertions = items
            .iter()
            .enumerate()
            .map(|(i, v)| parse_assertion(v, i))
            .collect::<Result<Vec<_>, _>>()?;

        let spec = ScenarioSpec {
            name,
            description,
            fabric,
            catalog,
            seeds,
            workers,
            cache_capacity,
            faults,
            worker_faults,
            policy,
            scrubber,
            regions,
            workload,
            assertions,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field validation: combinations the engine cannot execute.
    fn validate(&self) -> Result<(), ScenarioError> {
        if let WorkloadSpec::CoalesceBurst { .. } = self.workload {
            if self.workers != [1] {
                return err(
                    "workload 'coalesce_burst' requires \"workers\": [1] — coalescing is \
                     only deterministic when a single pinned worker drains the queue",
                );
            }
            if self.fabric.reconf_tiles < 2 {
                return err(
                    "workload 'coalesce_burst' requires 'fabric.reconf_tiles' >= 2 \
                     (one tile pins the worker, the other receives the burst)",
                );
            }
            if !self.catalog.contains(&CatalogKind::Mac)
                || !self.catalog.contains(&CatalogKind::Sort)
            {
                return err(
                    "workload 'coalesce_burst' requires both 'mac' and 'sort' in 'catalog'",
                );
            }
        }
        if let WorkloadSpec::OverloadBurst { .. } = self.workload {
            if self.fabric.reconf_tiles < 2 {
                return err(
                    "workload 'overload_burst' requires 'fabric.reconf_tiles' >= 2 \
                     (one tile pins the worker, the other receives the burst)",
                );
            }
            if !self.catalog.contains(&CatalogKind::Mac)
                || !self.catalog.contains(&CatalogKind::Sort)
            {
                return err(
                    "workload 'overload_burst' requires both 'mac' and 'sort' in 'catalog'",
                );
            }
        }
        if self.regions.defrag && !self.regions.enabled {
            return err(
                "\"regions\": {\"defrag\": true} requires \"enabled\": true — \
                 the defragmenter repacks allocator leases, which only exist \
                 under amorphous floorplanning",
            );
        }
        if let WorkloadSpec::DefragProbe = self.workload {
            if !self.regions.enabled {
                return err(
                    "workload 'defrag_probe' requires \"regions\": {\"enabled\": true} — \
                     the probe exercises the dynamic region allocator",
                );
            }
            if self.regions.window.is_none() {
                return err(
                    "workload 'defrag_probe' requires 'regions.window' (e.g. [1, 12]) — \
                     the packing recipe is calibrated to an 11-column window",
                );
            }
            if self.fabric.reconf_tiles < 7 {
                return err(
                    "workload 'defrag_probe' requires 'fabric.reconf_tiles' >= 7 \
                     (seven 1-column loads pack the window before the wide request)",
                );
            }
            if !self.catalog.contains(&CatalogKind::Mac)
                || !self.catalog.contains(&CatalogKind::Sort)
            {
                return err("workload 'defrag_probe' requires both 'mac' and 'sort' in 'catalog'");
            }
        }
        if let WorkloadSpec::FragmentChurn { .. } = self.workload {
            if !self.regions.enabled {
                return err(
                    "workload 'fragment_churn' requires \"regions\": {\"enabled\": true} — \
                     churn only fragments when admission leases flexible regions",
                );
            }
            if !self.catalog.contains(&CatalogKind::Mac)
                || !self.catalog.contains(&CatalogKind::Sort)
            {
                return err(
                    "workload 'fragment_churn' requires both 'mac' and 'sort' in 'catalog'",
                );
            }
        }
        if (self.worker_faults.panic_rate > 0.0 || self.worker_faults.hang_rate > 0.0)
            && !self.policy.supervised
        {
            return err(
                "'worker_faults' with 'panic_rate' or 'hang_rate' > 0 requires \
                 \"policy\": {\"supervised\": true} — without the supervisor a \
                 crashed or wedged claim is never healed and its request is lost",
            );
        }
        for assertion in &self.assertions {
            match assertion {
                Assertion::OutcomeEqualityAcrossWorkers if self.workers.len() < 2 => {
                    return err(
                        "check 'outcome_equality_across_workers' requires at least two \
                         entries in 'workers' (e.g. [1, 4]) to compare",
                    );
                }
                Assertion::FinalScrubClean
                    if !(self.scrubber.enabled && self.scrubber.final_sweep) =>
                {
                    return err("check 'final_scrub_clean' requires \"scrubber\": \
                         {\"enabled\": true, \"final_sweep\": true}");
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serializes to the canonical JSON document: every section explicit,
    /// so `parse(serialize(spec)) == spec`.
    pub fn to_json_value(&self) -> JsonValue {
        let n = |v: u64| JsonValue::Number(v as f64);
        let f = JsonValue::Number;
        let s = |v: &str| JsonValue::String(v.to_string());
        let obj = |fields: Vec<(&str, JsonValue)>| {
            JsonValue::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };

        let workload = match &self.workload {
            WorkloadSpec::Blocking {
                clients,
                ops_per_client,
            } => obj(vec![
                ("kind", s("blocking")),
                ("clients", n(*clients as u64)),
                ("ops_per_client", n(*ops_per_client as u64)),
            ]),
            WorkloadSpec::CoalesceBurst {
                burst,
                pin_sort_len,
            } => obj(vec![
                ("kind", s("coalesce_burst")),
                ("burst", n(*burst as u64)),
                ("pin_sort_len", n(*pin_sort_len as u64)),
            ]),
            WorkloadSpec::OverloadBurst {
                burst,
                pin_sort_len,
            } => obj(vec![
                ("kind", s("overload_burst")),
                ("burst", n(*burst as u64)),
                ("pin_sort_len", n(*pin_sort_len as u64)),
            ]),
            WorkloadSpec::DefragProbe => obj(vec![("kind", s("defrag_probe"))]),
            WorkloadSpec::FragmentChurn { rounds } => obj(vec![
                ("kind", s("fragment_churn")),
                ("rounds", n(*rounds as u64)),
            ]),
        };

        let assertion_json = |a: &Assertion| match a {
            Assertion::StatsConsistent => obj(vec![("check", s("stats_consistent"))]),
            Assertion::NoLostRequests => obj(vec![("check", s("no_lost_requests"))]),
            Assertion::BitIdenticalOutputs => obj(vec![("check", s("bit_identical_outputs"))]),
            Assertion::SameSeedTraceIdentical => {
                obj(vec![("check", s("same_seed_trace_identical"))])
            }
            Assertion::OutcomeEqualityAcrossWorkers => {
                obj(vec![("check", s("outcome_equality_across_workers"))])
            }
            Assertion::FinalScrubClean => obj(vec![("check", s("final_scrub_clean"))]),
            Assertion::StatMin { stat, value } => obj(vec![
                ("check", s("stat_min")),
                ("stat", s(stat)),
                ("value", n(*value)),
            ]),
            Assertion::StatMax { stat, value } => obj(vec![
                ("check", s("stat_max")),
                ("stat", s(stat)),
                ("value", n(*value)),
            ]),
            Assertion::StatEq { stat, value } => obj(vec![
                ("check", s("stat_eq")),
                ("stat", s(stat)),
                ("value", n(*value)),
            ]),
            Assertion::TraceContains { event } => {
                obj(vec![("check", s("trace_contains")), ("event", s(event))])
            }
            Assertion::TraceAbsent { event } => {
                obj(vec![("check", s("trace_absent")), ("event", s(event))])
            }
            Assertion::MakespanMax { value } => {
                obj(vec![("check", s("makespan_max")), ("value", n(*value))])
            }
            Assertion::DeadlineMissMax { value } => obj(vec![
                ("check", s("deadline_miss_max")),
                ("value", n(*value)),
            ]),
            Assertion::ShedRateMax { percent } => obj(vec![
                ("check", s("shed_rate_max")),
                ("percent", n(*percent)),
            ]),
            Assertion::NoOrphanedTickets => obj(vec![("check", s("no_orphaned_tickets"))]),
        };

        obj(vec![
            ("name", s(&self.name)),
            ("description", s(&self.description)),
            (
                "fabric",
                obj(vec![
                    ("soc_name", s(&self.fabric.soc_name)),
                    ("reconf_tiles", n(self.fabric.reconf_tiles as u64)),
                ]),
            ),
            (
                "catalog",
                JsonValue::Array(self.catalog.iter().map(|k| s(k.token())).collect()),
            ),
            (
                "seeds",
                obj(vec![
                    ("start", n(self.seeds.start)),
                    ("count", n(self.seeds.count)),
                ]),
            ),
            (
                "workers",
                JsonValue::Array(self.workers.iter().map(|&w| n(w as u64)).collect()),
            ),
            ("cache_capacity", n(self.cache_capacity as u64)),
            (
                "faults",
                obj(vec![
                    ("icap_flip_rate", f(self.faults.icap_flip_rate)),
                    ("dfxc_stall_rate", f(self.faults.dfxc_stall_rate)),
                    (
                        "dfxc_stall_max_cycles",
                        n(self.faults.dfxc_stall_max_cycles),
                    ),
                    ("registry_miss_rate", f(self.faults.registry_miss_rate)),
                    ("decoupler_delay_rate", f(self.faults.decoupler_delay_rate)),
                    (
                        "decoupler_delay_max_cycles",
                        n(self.faults.decoupler_delay_max_cycles),
                    ),
                    ("seu_per_mcycle", f(self.faults.seu_per_mcycle)),
                    ("seu_double_bit_rate", f(self.faults.seu_double_bit_rate)),
                ]),
            ),
            (
                "worker_faults",
                obj(vec![
                    ("panic_rate", f(self.worker_faults.panic_rate)),
                    ("hang_rate", f(self.worker_faults.hang_rate)),
                    ("stall_rate", f(self.worker_faults.stall_rate)),
                    ("stall_max_micros", n(self.worker_faults.stall_max_micros)),
                    ("max_panics", n(self.worker_faults.max_panics)),
                    ("max_hangs", n(self.worker_faults.max_hangs)),
                ]),
            ),
            (
                "policy",
                obj(vec![
                    ("max_retries", n(u64::from(self.policy.max_retries))),
                    ("backoff_cycles", n(self.policy.backoff_cycles)),
                    ("backoff_multiplier", n(self.policy.backoff_multiplier)),
                    (
                        "quarantine_after",
                        n(u64::from(self.policy.quarantine_after)),
                    ),
                    ("cpu_fallback", JsonValue::Bool(self.policy.cpu_fallback)),
                    ("deadline_cycles", n(self.policy.deadline_cycles)),
                    ("queue_capacity", n(self.policy.queue_capacity)),
                    ("overload", s(overload_token(self.policy.overload))),
                    ("breaker", JsonValue::Bool(self.policy.breaker)),
                    ("supervised", JsonValue::Bool(self.policy.supervised)),
                    ("restart_budget", n(u64::from(self.policy.restart_budget))),
                ]),
            ),
            (
                "scrubber",
                obj(vec![
                    ("enabled", JsonValue::Bool(self.scrubber.enabled)),
                    ("sweep_every_ops", n(self.scrubber.sweep_every_ops)),
                    ("final_sweep", JsonValue::Bool(self.scrubber.final_sweep)),
                ]),
            ),
            ("regions", {
                let mut fields = vec![
                    ("enabled", JsonValue::Bool(self.regions.enabled)),
                    ("policy", s(fit_token(self.regions.policy))),
                ];
                if let Some((lo, hi)) = self.regions.window {
                    fields.push(("window", JsonValue::Array(vec![n(lo as u64), n(hi as u64)])));
                }
                fields.push(("defrag", JsonValue::Bool(self.regions.defrag)));
                obj(fields)
            }),
            ("workload", workload),
            (
                "assertions",
                JsonValue::Array(self.assertions.iter().map(assertion_json).collect()),
            ),
        ])
    }

    /// Serializes to pretty-printed canonical JSON.
    pub fn serialize(&self) -> String {
        self.to_json_value().pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{
            "name": "smoke",
            "fabric": {"soc_name": "smoke", "reconf_tiles": 2},
            "catalog": ["mac", "sort"],
            "seeds": {"count": 2},
            "workload": {"kind": "blocking", "clients": 2, "ops_per_client": 3},
            "assertions": [{"check": "stats_consistent"}]
        }"#
        .to_string()
    }

    #[test]
    fn minimal_document_fills_defaults() {
        let spec = ScenarioSpec::parse(&minimal()).unwrap();
        assert_eq!(spec.seeds, SeedSpec { start: 0, count: 2 });
        assert_eq!(spec.workers, vec![1]);
        assert_eq!(spec.cache_capacity, 0);
        assert_eq!(spec.faults, FaultConfig::default());
        assert_eq!(spec.policy, RecoveryPolicy::default());
        assert!(!spec.scrubber.enabled);
    }

    #[test]
    fn regions_section_parses_and_roundtrips() {
        let doc = minimal().replace(
            "\"assertions\"",
            r#""regions": {"enabled": true, "policy": "best_fit",
                          "window": [1, 12], "defrag": true},
            "assertions""#,
        );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert!(spec.regions.enabled);
        assert_eq!(spec.regions.policy, FitPolicy::BestFit);
        assert_eq!(spec.regions.window, Some((1, 12)));
        assert!(spec.regions.defrag);
        let round = ScenarioSpec::parse(&spec.serialize()).unwrap();
        assert_eq!(spec, round);
    }

    #[test]
    fn defrag_workloads_parse_with_their_envelope() {
        let doc = minimal()
            .replace("\"reconf_tiles\": 2", "\"reconf_tiles\": 7")
            .replace(
                "\"assertions\"",
                "\"regions\": {\"enabled\": true, \"window\": [1, 12], \
                 \"defrag\": true}, \"assertions\"",
            )
            .replace(
                "{\"kind\": \"blocking\", \"clients\": 2, \"ops_per_client\": 3}",
                "{\"kind\": \"defrag_probe\"}",
            );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert_eq!(spec.workload, WorkloadSpec::DefragProbe);
        let churn = doc.replace(
            "{\"kind\": \"defrag_probe\"}",
            "{\"kind\": \"fragment_churn\", \"rounds\": 6}",
        );
        let spec = ScenarioSpec::parse(&churn).unwrap();
        assert_eq!(spec.workload, WorkloadSpec::FragmentChurn { rounds: 6 });
        let round = ScenarioSpec::parse(&spec.serialize()).unwrap();
        assert_eq!(spec, round);
    }

    #[test]
    fn canonical_serialization_roundtrips() {
        let spec = ScenarioSpec::parse(&minimal()).unwrap();
        let round = ScenarioSpec::parse(&spec.serialize()).unwrap();
        assert_eq!(spec, round);
    }

    #[test]
    fn unknown_top_level_key_is_named() {
        let bad = minimal().replace("\"name\": \"smoke\"", "\"nam\": \"smoke\", \"name\": \"x\"");
        let e = ScenarioSpec::parse(&bad).unwrap_err();
        assert!(e.0.contains("unknown key 'nam'"), "{e}");
        assert!(e.0.contains("expected one of"), "{e}");
    }

    #[test]
    fn uniform_rate_seeds_every_knob_and_overrides_apply() {
        let doc = minimal().replace(
            "\"assertions\"",
            "\"faults\": {\"uniform_rate\": 0.2, \"registry_miss_rate\": 0.5}, \"assertions\"",
        );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert_eq!(spec.faults.icap_flip_rate, 0.2);
        assert_eq!(spec.faults.dfxc_stall_rate, 0.2);
        assert_eq!(spec.faults.registry_miss_rate, 0.5);
        assert_eq!(spec.faults.dfxc_stall_max_cycles, 256);
    }

    #[test]
    fn out_of_range_rate_is_actionable() {
        let doc = minimal().replace(
            "\"assertions\"",
            "\"faults\": {\"icap_flip_rate\": 1.5}, \"assertions\"",
        );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("between 0 and 1"), "{e}");
        assert!(e.0.contains("icap_flip_rate"), "{e}");
    }

    #[test]
    fn worker_equality_needs_two_counts() {
        let doc = minimal().replace(
            "{\"check\": \"stats_consistent\"}",
            "{\"check\": \"outcome_equality_across_workers\"}",
        );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("at least two"), "{e}");
    }

    #[test]
    fn unknown_stat_lists_the_valid_keys() {
        let doc = minimal().replace(
            "{\"check\": \"stats_consistent\"}",
            "{\"check\": \"stat_min\", \"stat\": \"retrys\", \"value\": 1}",
        );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("unknown stat 'retrys'"), "{e}");
        assert!(e.0.contains("retries"), "{e}");
    }

    #[test]
    fn supervision_policy_and_worker_faults_parse_and_roundtrip() {
        let doc = minimal().replace(
            "\"assertions\": [{\"check\": \"stats_consistent\"}]",
            r#""worker_faults": {"panic_rate": 0.1, "hang_rate": 0.05,
                               "max_panics": 3, "max_hangs": 2},
            "policy": {"supervised": true, "restart_budget": 6,
                       "deadline_cycles": 50000, "queue_capacity": 8,
                       "overload": "shed_oldest", "breaker": true},
            "assertions": [
                {"check": "no_orphaned_tickets"},
                {"check": "deadline_miss_max", "value": 4},
                {"check": "shed_rate_max", "percent": 25}
            ]"#,
        );
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert!(spec.policy.supervised);
        assert_eq!(spec.policy.restart_budget, 6);
        assert_eq!(spec.policy.deadline_cycles, 50_000);
        assert_eq!(spec.policy.queue_capacity, 8);
        assert_eq!(spec.policy.overload, OverloadPolicy::ShedOldest);
        assert!(spec.policy.breaker);
        assert_eq!(spec.worker_faults.panic_rate, 0.1);
        assert_eq!(spec.worker_faults.max_hangs, 2);
        assert_eq!(
            spec.assertions,
            vec![
                Assertion::NoOrphanedTickets,
                Assertion::DeadlineMissMax { value: 4 },
                Assertion::ShedRateMax { percent: 25 },
            ]
        );
        let round = ScenarioSpec::parse(&spec.serialize()).unwrap();
        assert_eq!(spec, round);
    }

    #[test]
    fn unknown_overload_token_names_the_accepted_values() {
        let doc = minimal().replace(
            "\"assertions\"",
            "\"policy\": {\"overload\": \"drop_random\"}, \"assertions\"",
        );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("drop_random"), "{e}");
        assert!(e.0.contains("reject_new, shed_oldest"), "{e}");
    }

    #[test]
    fn worker_faults_without_supervision_are_rejected() {
        let doc = minimal().replace(
            "\"assertions\"",
            "\"worker_faults\": {\"panic_rate\": 0.2, \"max_panics\": 1}, \"assertions\"",
        );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("supervised"), "{e}");
    }

    #[test]
    fn shed_rate_percent_above_100_is_rejected() {
        let doc = minimal().replace(
            "{\"check\": \"stats_consistent\"}",
            "{\"check\": \"shed_rate_max\", \"percent\": 101}",
        );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("between 0 and 100"), "{e}");
    }

    #[test]
    fn overload_burst_requires_two_tiles() {
        let doc = minimal()
            .replace("\"reconf_tiles\": 2", "\"reconf_tiles\": 1")
            .replace(
                "{\"kind\": \"blocking\", \"clients\": 2, \"ops_per_client\": 3}",
                "{\"kind\": \"overload_burst\", \"burst\": 8, \"pin_sort_len\": 4000}",
            );
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("reconf_tiles"), "{e}");
    }

    #[test]
    fn too_many_tiles_is_rejected_with_the_bound() {
        let doc = minimal().replace("\"reconf_tiles\": 2", "\"reconf_tiles\": 65");
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("between 1 and 64"), "{e}");
    }

    #[test]
    fn large_fabrics_up_to_64_tiles_parse() {
        let doc = minimal().replace("\"reconf_tiles\": 2", "\"reconf_tiles\": 64");
        let spec = ScenarioSpec::parse(&doc).unwrap();
        assert_eq!(spec.fabric.reconf_tiles, 64);
    }

    #[test]
    fn zero_tiles_is_rejected_with_the_bound() {
        let doc = minimal().replace("\"reconf_tiles\": 2", "\"reconf_tiles\": 0");
        let e = ScenarioSpec::parse(&doc).unwrap_err();
        assert!(e.0.contains("between 1 and 64"), "{e}");
    }
}
