//! JUnit XML rendering of a scenario run.
//!
//! One `<testsuite>` named `presp-scenario`, one `<testcase>` per
//! scenario. A failed scenario carries one `<failure>` whose `message`
//! names the first failing assertion and the seed that replays it, and
//! whose body lists every failing assertion's detail. Files that never
//! parsed are failures too — a typo'd scenario must break CI, not
//! silently shrink the matrix. All `time` attributes are `"0"`: the
//! report is a function of the scenario bytes, never the host's speed.

use crate::report::ReportEntry;
use std::fmt::Write as _;

/// Escapes text for XML attribute and element content.
fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the run as a JUnit XML document.
pub fn render(entries: &[ReportEntry]) -> String {
    let failures = entries.iter().filter(|e| !e.passed()).count();
    let mut xml = String::new();
    xml.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(
        xml,
        "<testsuites tests=\"{}\" failures=\"{failures}\" time=\"0\">",
        entries.len()
    );
    let _ = writeln!(
        xml,
        "  <testsuite name=\"presp-scenario\" tests=\"{}\" failures=\"{failures}\" time=\"0\">",
        entries.len()
    );
    for entry in entries {
        let name = escape(&entry.name());
        match entry {
            ReportEntry::LoadFailed { file, error } => {
                let _ = writeln!(
                    xml,
                    "    <testcase name=\"{name}\" classname=\"presp-scenario\" time=\"0\">"
                );
                let _ = writeln!(
                    xml,
                    "      <failure message=\"scenario failed to load: {}\">{}</failure>",
                    escape(file),
                    escape(error)
                );
                xml.push_str("    </testcase>\n");
            }
            ReportEntry::Ran { verdict, .. } if verdict.passed() => {
                let _ = writeln!(
                    xml,
                    "    <testcase name=\"{name}\" classname=\"presp-scenario\" time=\"0\"/>"
                );
            }
            ReportEntry::Ran { verdict, .. } => {
                let _ = writeln!(
                    xml,
                    "    <testcase name=\"{name}\" classname=\"presp-scenario\" time=\"0\">"
                );
                let failing: Vec<_> = verdict.results.iter().filter(|r| !r.passed).collect();
                let first = failing
                    .first()
                    .expect("a failed verdict has a failing check");
                let _ = write!(
                    xml,
                    "      <failure message=\"{} (replay seed {})\">",
                    escape(&first.check),
                    first.replay_seed
                );
                for (i, r) in failing.iter().enumerate() {
                    if i > 0 {
                        xml.push('\n');
                    }
                    let _ = write!(
                        xml,
                        "{}: {} (replay seed {})",
                        escape(&r.check),
                        escape(&r.detail),
                        r.replay_seed
                    );
                }
                xml.push_str("</failure>\n");
                xml.push_str("    </testcase>\n");
            }
        }
    }
    xml.push_str("  </testsuite>\n");
    xml.push_str("</testsuites>\n");
    xml
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_five_metacharacters() {
        assert_eq!(escape(r#"a<b>&"c'"#), "a&lt;b&gt;&amp;&quot;c&apos;");
    }

    #[test]
    fn load_failure_becomes_a_failed_testcase() {
        let entries = vec![ReportEntry::LoadFailed {
            file: "scenarios/bad.json".to_string(),
            error: "unknown key 'nam' <here>".to_string(),
        }];
        let xml = render(&entries);
        assert!(xml.contains("failures=\"1\""));
        assert!(xml.contains("scenarios/bad.json"));
        assert!(xml.contains("&lt;here&gt;"), "{xml}");
    }
}
