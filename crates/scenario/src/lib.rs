//! Declarative runtime scenarios for PR-ESP.
//!
//! The paper's pitch is a single make target from configuration to
//! bitstreams; this crate extends the same philosophy to the *runtime*
//! side of the platform: every fault storm, SEU/scrub campaign,
//! coalescing probe and multi-worker determinism sweep becomes a JSON
//! data file instead of a bespoke Rust test or bench binary.
//!
//! * [`spec`] — the scenario language: a strict parser over the
//!   workspace's hand-rolled JSON module, with actionable rejection
//!   messages and an exact `parse(serialize(spec)) == spec` round-trip.
//! * [`engine`] — wires a spec into a live `Soc` +
//!   `ThreadedManager` + `ScrubberDaemon`, drives the declared workload
//!   deterministically under each seed, and evaluates the declared
//!   assertions against virtual-time observations only.
//! * [`report`] — the byte-deterministic JSON report.
//! * [`junit`] — JUnit XML for CI test surfaces.
//! * [`runner`] — files/directories in, artifacts out; the engine room
//!   of the `presp test` subcommand.
//!
//! # Example
//!
//! ```
//! use presp_scenario::{engine, spec::ScenarioSpec};
//!
//! let spec = ScenarioSpec::parse(r#"{
//!     "name": "doc_smoke",
//!     "fabric": {"soc_name": "doc-smoke", "reconf_tiles": 1},
//!     "catalog": ["mac"],
//!     "seeds": {"count": 1},
//!     "workload": {"kind": "blocking", "clients": 1, "ops_per_client": 2},
//!     "assertions": [{"check": "stats_consistent"},
//!                    {"check": "no_lost_requests"}]
//! }"#).unwrap();
//! let verdict = engine::run(&spec);
//! assert!(verdict.passed());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod junit;
pub mod report;
pub mod runner;
pub mod spec;
