//! The scenario runner: paths in, artifacts out.
//!
//! [`run_paths`] accepts any mix of scenario files and directories
//! (directories are scanned non-recursively for `*.json`, sorted by
//! name so the report order — and therefore the report bytes — never
//! depends on filesystem enumeration order), runs every scenario
//! through the engine, and exposes the JSON report, the JUnit XML and
//! optional per-scenario Chrome traces. `presp test` is a thin CLI
//! shell over this module; tests drive it directly.

use crate::engine;
use crate::report::{self, ReportEntry};
use crate::spec::{ScenarioError, ScenarioSpec};
use std::path::{Path, PathBuf};

/// A completed runner invocation.
pub struct RunOutcome {
    /// One entry per scenario file, in sorted path order.
    pub entries: Vec<ReportEntry>,
}

impl RunOutcome {
    /// Whether every scenario loaded and passed.
    pub fn all_passed(&self) -> bool {
        self.entries.iter().all(ReportEntry::passed)
    }

    /// The deterministic JSON report.
    pub fn report_json(&self) -> String {
        report::render(&self.entries)
    }

    /// The JUnit XML document.
    pub fn junit_xml(&self) -> String {
        crate::junit::render(&self.entries)
    }

    /// Writes the first run's Chrome trace of every scenario that ran
    /// into `dir` as `<name>.trace.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory or writing a
    /// trace file.
    pub fn write_traces(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for entry in &self.entries {
            if let ReportEntry::Ran { verdict, .. } = entry {
                let path = dir.join(format!("{}.trace.json", verdict.spec.name));
                std::fs::write(path, &verdict.observations.first_chrome_trace)?;
            }
        }
        Ok(())
    }
}

/// Expands files-or-directories into a sorted list of scenario files.
///
/// # Errors
///
/// Returns a [`ScenarioError`] for a path that does not exist, a
/// directory that cannot be read, or a directory containing no `*.json`
/// files (an empty matrix is a misconfiguration, not a green run).
pub fn collect_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, ScenarioError> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            let entries = std::fs::read_dir(path).map_err(|e| {
                ScenarioError(format!("cannot read directory {}: {e}", path.display()))
            })?;
            let mut found = Vec::new();
            for entry in entries {
                let entry = entry
                    .map_err(|e| ScenarioError(format!("cannot read directory entry: {e}")))?;
                let p = entry.path();
                if p.is_file() && p.extension().is_some_and(|e| e == "json") {
                    found.push(p);
                }
            }
            if found.is_empty() {
                return Err(ScenarioError(format!(
                    "directory {} contains no .json scenario files",
                    path.display()
                )));
            }
            files.extend(found);
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(ScenarioError(format!(
                "no such file or directory: {}",
                path.display()
            )));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

/// Loads and runs one scenario file.
pub fn run_file(path: &Path) -> ReportEntry {
    let file = path.display().to_string();
    let input = match std::fs::read_to_string(path) {
        Ok(input) => input,
        Err(e) => {
            return ReportEntry::LoadFailed {
                file,
                error: format!("cannot read file: {e}"),
            }
        }
    };
    match ScenarioSpec::parse(&input) {
        Ok(spec) => ReportEntry::Ran {
            file,
            verdict: Box::new(engine::run(&spec)),
        },
        Err(e) => ReportEntry::LoadFailed { file, error: e.0 },
    }
}

/// Runs every scenario under the given paths.
///
/// # Errors
///
/// Fails only on path-expansion problems (missing path, unreadable or
/// empty directory); individual scenario failures are carried in the
/// outcome, not returned as errors.
pub fn run_paths(paths: &[PathBuf]) -> Result<RunOutcome, ScenarioError> {
    let files = collect_files(paths)?;
    let entries = files.iter().map(|f| run_file(f)).collect();
    Ok(RunOutcome { entries })
}
