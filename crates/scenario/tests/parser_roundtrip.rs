//! Property tests for the scenario language.
//!
//! The contract under test is exact: `parse(serialize(spec)) == spec`
//! for every valid spec, and every malformed document is rejected with a
//! message that names the offending key and the accepted values. Specs
//! are generated over the full surface of the language — both workload
//! kinds, every assertion shape, optional sections present and absent —
//! within the parser's own validity envelope.

use presp_floorplan::FitPolicy;
use presp_fpga::fault::FaultConfig;
use presp_runtime::manager::{OverloadPolicy, RecoveryPolicy};
use presp_runtime::supervisor::WorkerFaultConfig;
use presp_scenario::spec::{
    Assertion, CatalogKind, FabricSpec, RegionsSpec, ScenarioSpec, ScrubberSpec, SeedSpec,
    WorkloadSpec,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_of_serialize_is_identity(
        name_n in 0u64..1_000_000,
        with_description in proptest::bool::ANY,
        tiles in 2usize..7,
        catalog_sel in 0u64..3,
        seed_start in 0u64..100_000,
        seed_count in 1u64..50,
        workers_sel in 0u64..4,
        cache_capacity in 0usize..5,
        rate_n in 0u64..21,
        stall_max in 1u64..512,
        delay_max in 1u64..128,
        seu_n in 0u64..1000,
        dbl_n in 0u64..11,
        max_retries in 0u32..6,
        backoff in 1u64..256,
        multiplier in 1u64..5,
        quarantine_after in 1u32..5,
        cpu_fallback in proptest::bool::ANY,
        scrub_enabled in proptest::bool::ANY,
        sweep_every in 0u64..9,
        final_sweep in proptest::bool::ANY,
        coalesce_workload in proptest::bool::ANY,
        overload_workload in proptest::bool::ANY,
        clients in 1usize..8,
        ops in 1usize..12,
        burst in 2usize..16,
        pin_extra in 0usize..100_000,
        assertion_sel in 0u64..512,
        stat_sel in 0usize..1_000,
        bound in 0u64..1_000_000,
        supervised in proptest::bool::ANY,
        deadline in 0u64..100_000,
        queue_capacity in 0u64..16,
        shed_oldest in proptest::bool::ANY,
        breaker in proptest::bool::ANY,
        restart_budget in 0u32..8,
        wf_rate_n in 0u64..21,
        wf_stall_max in 0u64..200,
        wf_budget in 0u64..5,
        regions_sel in 0u64..4,
        win_lo in 1u32..5,
        win_width in 2u32..9,
    ) {
        // Coalesce-burst validity demands a single worker and a mac+sort
        // catalog; everything else roams freely.
        let workers = if coalesce_workload {
            vec![1]
        } else {
            match workers_sel {
                0 => vec![1],
                1 => vec![2],
                2 => vec![1, 4],
                _ => vec![2, 3, 5],
            }
        };
        // Overload-burst shares coalesce-burst's mac+sort / two-tile
        // envelope but allows any worker vector.
        let overload_workload = overload_workload && !coalesce_workload;
        let catalog = if coalesce_workload || overload_workload {
            vec![CatalogKind::Mac, CatalogKind::Sort]
        } else {
            match catalog_sel {
                0 => vec![CatalogKind::Mac],
                1 => vec![CatalogKind::Sort],
                _ => vec![CatalogKind::Mac, CatalogKind::Sort],
            }
        };
        let workload = if coalesce_workload {
            WorkloadSpec::CoalesceBurst { burst, pin_sort_len: 1000 + pin_extra }
        } else if overload_workload {
            WorkloadSpec::OverloadBurst { burst, pin_sort_len: 1000 + pin_extra }
        } else {
            WorkloadSpec::Blocking { clients, ops_per_client: ops }
        };
        // Panic/hang injection is only valid under a supervised policy
        // (the parser rejects the combination otherwise).
        let worker_faults = if supervised {
            WorkerFaultConfig {
                panic_rate: wf_rate_n as f64 / 50.0,
                hang_rate: wf_rate_n as f64 / 80.0,
                stall_rate: wf_rate_n as f64 / 60.0,
                stall_max_micros: wf_stall_max,
                max_panics: wf_budget,
                max_hangs: wf_budget,
            }
        } else {
            WorkerFaultConfig {
                stall_rate: wf_rate_n as f64 / 60.0,
                stall_max_micros: wf_stall_max,
                ..WorkerFaultConfig::default()
            }
        };
        let scrubber = ScrubberSpec {
            enabled: scrub_enabled,
            sweep_every_ops: sweep_every,
            final_sweep,
        };
        // Defrag is only valid with regions enabled (the parser rejects
        // the combination otherwise).
        let regions = match regions_sel {
            0 => RegionsSpec::default(),
            1 => RegionsSpec { enabled: true, ..RegionsSpec::default() },
            2 => RegionsSpec {
                enabled: true,
                policy: FitPolicy::BestFit,
                window: Some((win_lo, win_lo + win_width)),
                defrag: false,
            },
            _ => RegionsSpec {
                enabled: true,
                policy: FitPolicy::FirstFit,
                window: Some((win_lo, win_lo + win_width)),
                defrag: true,
            },
        };

        let stat = presp_scenario::spec::STAT_KEYS[stat_sel % presp_scenario::spec::STAT_KEYS.len()]
            .to_string();
        let mut assertions = vec![Assertion::StatsConsistent];
        if assertion_sel & 1 != 0 {
            assertions.push(Assertion::NoLostRequests);
        }
        if assertion_sel & 2 != 0 {
            assertions.push(Assertion::BitIdenticalOutputs);
        }
        if assertion_sel & 4 != 0 {
            assertions.push(Assertion::StatMin { stat: stat.clone(), value: bound });
        }
        if assertion_sel & 8 != 0 {
            assertions.push(Assertion::StatMax { stat: stat.clone(), value: bound });
        }
        if assertion_sel & 16 != 0 {
            assertions.push(Assertion::TraceContains { event: "seu.injected".to_string() });
            assertions.push(Assertion::TraceAbsent { event: "cpu.fallback".to_string() });
        }
        if assertion_sel & 32 != 0 {
            assertions.push(Assertion::MakespanMax { value: bound });
        }
        if assertion_sel & 64 != 0 {
            assertions.push(Assertion::DeadlineMissMax { value: bound });
        }
        if assertion_sel & 128 != 0 {
            assertions.push(Assertion::ShedRateMax { percent: bound % 101 });
        }
        if assertion_sel & 256 != 0 {
            assertions.push(Assertion::NoOrphanedTickets);
        }
        if workers.len() >= 2 {
            assertions.push(Assertion::OutcomeEqualityAcrossWorkers);
        }
        if scrub_enabled && final_sweep {
            assertions.push(Assertion::FinalScrubClean);
        }

        let spec = ScenarioSpec {
            name: format!("case_{name_n}"),
            description: if with_description {
                format!("generated case {name_n}")
            } else {
                String::new()
            },
            fabric: FabricSpec {
                soc_name: format!("soc-{name_n}"),
                reconf_tiles: tiles,
            },
            catalog,
            seeds: SeedSpec { start: seed_start, count: seed_count },
            workers,
            cache_capacity,
            faults: FaultConfig {
                icap_flip_rate: rate_n as f64 / 40.0,
                dfxc_stall_rate: rate_n as f64 / 80.0,
                dfxc_stall_max_cycles: stall_max,
                registry_miss_rate: rate_n as f64 / 60.0,
                decoupler_delay_rate: rate_n as f64 / 100.0,
                decoupler_delay_max_cycles: delay_max,
                seu_per_mcycle: seu_n as f64,
                seu_double_bit_rate: dbl_n as f64 / 10.0,
            },
            worker_faults,
            policy: RecoveryPolicy {
                max_retries,
                backoff_cycles: backoff,
                backoff_multiplier: multiplier,
                quarantine_after,
                cpu_fallback,
                deadline_cycles: deadline,
                queue_capacity,
                overload: if shed_oldest {
                    OverloadPolicy::ShedOldest
                } else {
                    OverloadPolicy::RejectNew
                },
                breaker,
                supervised,
                restart_budget,
            },
            scrubber,
            regions,
            workload,
            assertions,
        };

        let serialized = spec.serialize();
        let reparsed = ScenarioSpec::parse(&serialized);
        prop_assert!(
            reparsed.is_ok(),
            "serialized spec failed to reparse: {:?}\n{serialized}",
            reparsed.err()
        );
        prop_assert_eq!(reparsed.unwrap(), spec);
    }

    #[test]
    fn serialization_is_deterministic(
        name_n in 0u64..1_000_000,
        tiles in 1usize..7,
        seed_count in 1u64..100,
    ) {
        let spec = ScenarioSpec {
            name: format!("det_{name_n}"),
            description: String::new(),
            fabric: FabricSpec { soc_name: "det".to_string(), reconf_tiles: tiles },
            catalog: vec![CatalogKind::Mac],
            seeds: SeedSpec { start: 0, count: seed_count },
            workers: vec![1],
            cache_capacity: 0,
            faults: FaultConfig::default(),
            worker_faults: WorkerFaultConfig::default(),
            policy: RecoveryPolicy::default(),
            scrubber: ScrubberSpec::default(),
            regions: RegionsSpec::default(),
            workload: WorkloadSpec::Blocking { clients: 1, ops_per_client: 1 },
            assertions: vec![Assertion::StatsConsistent],
        };
        prop_assert_eq!(spec.serialize(), spec.serialize());
    }
}

/// Asserts that `input` is rejected and the message contains every
/// fragment — the "actionable message" contract.
fn assert_rejects(input: &str, fragments: &[&str]) {
    let err = ScenarioSpec::parse(input).expect_err("document must be rejected");
    for fragment in fragments {
        assert!(
            err.0.contains(fragment),
            "rejection message for {input:?} should mention {fragment:?}, got: {}",
            err.0
        );
    }
}

/// A minimal valid scenario document to mutate in rejection tests.
fn valid_doc() -> String {
    r#"{
        "name": "ok",
        "fabric": {"soc_name": "ok", "reconf_tiles": 1},
        "catalog": ["mac"],
        "seeds": {"count": 1},
        "workload": {"kind": "blocking", "clients": 1, "ops_per_client": 1},
        "assertions": [{"check": "stats_consistent"}]
    }"#
    .to_string()
}

#[test]
fn valid_doc_parses() {
    ScenarioSpec::parse(&valid_doc()).expect("baseline document must parse");
}

#[test]
fn rejects_unknown_top_level_key() {
    assert_rejects(
        &valid_doc().replace("\"name\"", "\"nam\""),
        &[
            "unknown key 'nam'",
            "top-level",
            "name, description, fabric",
        ],
    );
}

#[test]
fn rejects_bad_name_charset() {
    assert_rejects(
        &valid_doc().replace("\"ok\",", "\"has spaces\","),
        &["'name'", "[a-zA-Z0-9_]", "has spaces"],
    );
}

#[test]
fn rejects_unknown_catalog_kind() {
    assert_rejects(
        &valid_doc().replace("[\"mac\"]", "[\"fft\"]"),
        &["unknown accelerator kind 'fft'", "mac, sort"],
    );
}

#[test]
fn rejects_out_of_range_tiles() {
    assert_rejects(
        &valid_doc().replace("\"reconf_tiles\": 1", "\"reconf_tiles\": 65"),
        &["'fabric.reconf_tiles'", "between 1 and 64", "got 65"],
    );
}

#[test]
fn rejects_out_of_range_rate() {
    let doc = valid_doc().replace(
        "\"catalog\"",
        "\"faults\": {\"icap_flip_rate\": 1.5}, \"catalog\"",
    );
    assert_rejects(&doc, &["'icap_flip_rate'", "between 0 and 1", "1.5"]);
}

#[test]
fn rejects_unknown_check() {
    assert_rejects(
        &valid_doc().replace("stats_consistent", "stats_consistant"),
        &[
            "unknown check 'stats_consistant'",
            "assertions[0]",
            "stats_consistent",
        ],
    );
}

#[test]
fn rejects_unknown_stat_key() {
    let doc = valid_doc().replace(
        "{\"check\": \"stats_consistent\"}",
        "{\"check\": \"stat_min\", \"stat\": \"retrys\", \"value\": 1}",
    );
    assert_rejects(&doc, &["unknown stat 'retrys'", "retries"]);
}

#[test]
fn rejects_empty_assertions() {
    let doc = valid_doc().replace("[{\"check\": \"stats_consistent\"}]", "[]");
    assert_rejects(&doc, &["at least one check", "tests nothing"]);
}

#[test]
fn rejects_worker_equality_with_one_worker_count() {
    let doc = valid_doc().replace(
        "{\"check\": \"stats_consistent\"}",
        "{\"check\": \"outcome_equality_across_workers\"}",
    );
    assert_rejects(&doc, &["outcome_equality_across_workers", "at least two"]);
}

#[test]
fn rejects_final_scrub_clean_without_scrubber() {
    let doc = valid_doc().replace(
        "{\"check\": \"stats_consistent\"}",
        "{\"check\": \"final_scrub_clean\"}",
    );
    assert_rejects(&doc, &["final_scrub_clean", "final_sweep"]);
}

#[test]
fn rejects_coalesce_burst_with_multiple_workers() {
    let doc = valid_doc()
        .replace("[\"mac\"]", "[\"mac\", \"sort\"]")
        .replace("\"reconf_tiles\": 1", "\"reconf_tiles\": 2")
        .replace(
            "{\"kind\": \"blocking\", \"clients\": 1, \"ops_per_client\": 1}",
            "{\"kind\": \"coalesce_burst\", \"burst\": 4, \"pin_sort_len\": 2000}",
        )
        .replace("\"seeds\"", "\"workers\": [2], \"seeds\"");
    assert_rejects(&doc, &["coalesce_burst", "\"workers\": [1]"]);
}

#[test]
fn rejects_unknown_worker_fault_key() {
    let doc = valid_doc().replace(
        "\"catalog\"",
        "\"worker_faults\": {\"panic_rat\": 0.1}, \"catalog\"",
    );
    assert_rejects(
        &doc,
        &["unknown key 'panic_rat'", "'worker_faults'", "panic_rate"],
    );
}

#[test]
fn rejects_panic_injection_without_supervision() {
    let doc = valid_doc().replace(
        "\"catalog\"",
        "\"worker_faults\": {\"panic_rate\": 0.5, \"max_panics\": 1}, \"catalog\"",
    );
    assert_rejects(&doc, &["supervised", "never healed"]);
}

#[test]
fn rejects_invalid_json_with_position() {
    assert_rejects("{\"name\": }", &["invalid JSON"]);
}

#[test]
fn rejects_defrag_without_regions() {
    let doc = valid_doc().replace(
        "\"catalog\"",
        "\"regions\": {\"defrag\": true}, \"catalog\"",
    );
    assert_rejects(&doc, &["defrag", "\"enabled\": true"]);
}

#[test]
fn rejects_unknown_fit_policy_token() {
    let doc = valid_doc().replace(
        "\"catalog\"",
        "\"regions\": {\"enabled\": true, \"policy\": \"worst_fit\"}, \"catalog\"",
    );
    assert_rejects(&doc, &["worst_fit", "first_fit, best_fit"]);
}

#[test]
fn rejects_degenerate_region_window() {
    let doc = valid_doc().replace(
        "\"catalog\"",
        "\"regions\": {\"enabled\": true, \"window\": [12, 1]}, \"catalog\"",
    );
    assert_rejects(&doc, &["'regions.window'", "lo < hi"]);
}

#[test]
fn rejects_defrag_probe_without_regions() {
    let doc = valid_doc()
        .replace("[\"mac\"]", "[\"mac\", \"sort\"]")
        .replace("\"reconf_tiles\": 1", "\"reconf_tiles\": 7")
        .replace(
            "{\"kind\": \"blocking\", \"clients\": 1, \"ops_per_client\": 1}",
            "{\"kind\": \"defrag_probe\"}",
        );
    assert_rejects(&doc, &["defrag_probe", "\"regions\": {\"enabled\": true}"]);
}

#[test]
fn rejects_defrag_probe_with_too_few_tiles() {
    let doc = valid_doc()
        .replace("[\"mac\"]", "[\"mac\", \"sort\"]")
        .replace(
            "\"catalog\"",
            "\"regions\": {\"enabled\": true, \"window\": [1, 12]}, \"catalog\"",
        )
        .replace(
            "{\"kind\": \"blocking\", \"clients\": 1, \"ops_per_client\": 1}",
            "{\"kind\": \"defrag_probe\"}",
        );
    assert_rejects(&doc, &["defrag_probe", "reconf_tiles", ">= 7"]);
}

#[test]
fn rejects_fragment_churn_without_regions() {
    let doc = valid_doc()
        .replace("[\"mac\"]", "[\"mac\", \"sort\"]")
        .replace(
            "{\"kind\": \"blocking\", \"clients\": 1, \"ops_per_client\": 1}",
            "{\"kind\": \"fragment_churn\", \"rounds\": 4}",
        );
    assert_rejects(
        &doc,
        &["fragment_churn", "\"regions\": {\"enabled\": true}"],
    );
}
