//! End-to-end validation of the JUnit XML surface.
//!
//! Runs a real mixed matrix — one passing scenario, one scenario with an
//! impossible bound, one file that is not valid scenario JSON — through
//! the runner, then checks the emitted document with a small structural
//! XML checker: declaration first, every open tag closed in order, no
//! raw metacharacters in text. CI consumes this XML sight unseen, so the
//! shape is part of the crate's contract, not a formatting detail.

use presp_scenario::runner;
use std::path::PathBuf;

/// A minimal structural XML well-formedness check: tags balance in LIFO
/// order, attributes are quoted, text content carries no raw `<` or `&`.
fn assert_well_formed(xml: &str) {
    let rest = xml
        .strip_prefix("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")
        .expect("document must open with an XML declaration");
    let mut stack: Vec<String> = Vec::new();
    let mut chars = rest.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '<' => {
                let close = rest[i..].find('>').map(|o| i + o).expect("unclosed tag");
                let tag = &rest[i + 1..close];
                if let Some(name) = tag.strip_prefix('/') {
                    let open = stack
                        .pop()
                        .unwrap_or_else(|| panic!("closing tag </{name}> with empty stack"));
                    assert_eq!(open, name, "tag mismatch: <{open}> closed by </{name}>");
                } else if !tag.ends_with('/') {
                    let name = tag.split_whitespace().next().expect("empty tag");
                    assert_eq!(
                        tag.matches('"').count() % 2,
                        0,
                        "unbalanced attribute quotes in <{tag}>"
                    );
                    stack.push(name.to_string());
                }
                while chars.peek().is_some_and(|&(j, _)| j <= close) {
                    chars.next();
                }
            }
            '&' => {
                let entity = &rest[i..rest.len().min(i + 6)];
                assert!(
                    ["&amp;", "&lt;", "&gt;", "&quot;", "&apos;"]
                        .iter()
                        .any(|e| entity.starts_with(e)),
                    "raw '&' in text content near: {entity:?}"
                );
            }
            _ => {}
        }
    }
    assert!(
        stack.is_empty(),
        "unclosed tags at end of document: {stack:?}"
    );
}

/// Writes the mixed matrix into a fresh temp directory and returns it.
fn write_matrix() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("presp-junit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp matrix dir");
    std::fs::write(
        dir.join("a_passing.json"),
        r#"{
            "name": "a_passing",
            "fabric": {"soc_name": "junit-pass", "reconf_tiles": 1},
            "catalog": ["mac"],
            "seeds": {"count": 2},
            "workload": {"kind": "blocking", "clients": 2, "ops_per_client": 2},
            "assertions": [{"check": "stats_consistent"},
                           {"check": "no_lost_requests"}]
        }"#,
    )
    .expect("write passing scenario");
    std::fs::write(
        dir.join("b_failing.json"),
        r#"{
            "name": "b_failing",
            "fabric": {"soc_name": "junit-fail", "reconf_tiles": 1},
            "catalog": ["mac"],
            "seeds": {"start": 7, "count": 2},
            "workload": {"kind": "blocking", "clients": 2, "ops_per_client": 2},
            "assertions": [{"check": "stat_min", "stat": "quarantines", "value": 999},
                           {"check": "stat_min", "stat": "retries", "value": 999}]
        }"#,
    )
    .expect("write failing scenario");
    std::fs::write(dir.join("c_broken.json"), r#"{"name": "c_broken<&>"}"#)
        .expect("write broken scenario");
    dir
}

#[test]
fn junit_document_is_well_formed_with_one_testcase_per_scenario() {
    let dir = write_matrix();
    let outcome = runner::run_paths(std::slice::from_ref(&dir)).expect("matrix resolves");
    let xml = outcome.junit_xml();
    let _ = std::fs::remove_dir_all(&dir);

    assert_well_formed(&xml);

    // One testcase per scenario file, pass or fail.
    assert_eq!(xml.matches("<testcase ").count(), 3, "{xml}");
    assert!(xml.contains("tests=\"3\""), "{xml}");
    assert!(xml.contains("failures=\"2\""), "{xml}");
    assert!(xml.contains("name=\"a_passing\""), "{xml}");
    assert!(xml.contains("name=\"b_failing\""), "{xml}");

    // The failure carries the assertion that failed and the seed that
    // replays it (seeds start at 7 in the failing scenario).
    assert!(
        xml.contains("<failure message=\"stat_min (replay seed 7)\""),
        "{xml}"
    );
    assert!(xml.contains("quarantines"), "{xml}");

    // The load failure is a failed testcase named after the file stem,
    // with its metacharacters escaped.
    assert!(xml.contains("name=\"c_broken\""), "{xml}");
    assert!(xml.contains("scenario failed to load"), "{xml}");
    assert!(
        !xml.contains("c_broken<&>"),
        "raw metacharacters leaked: {xml}"
    );

    assert!(!outcome.all_passed());
}

#[test]
fn hostile_assertion_text_cannot_break_the_xml() {
    // The event name of a trace assertion is arbitrary user text that
    // flows into the <failure> body verbatim when the check fails; pack
    // it with every XML metacharacter plus a CDATA-closer and an entity
    // to prove nothing reaches the document raw.
    let dir = std::env::temp_dir().join(format!("presp-junit-hostile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp matrix dir");
    std::fs::write(
        dir.join("hostile.json"),
        r#"{
            "name": "hostile",
            "fabric": {"soc_name": "junit-hostile", "reconf_tiles": 1},
            "catalog": ["mac"],
            "seeds": {"count": 1},
            "workload": {"kind": "blocking", "clients": 1, "ops_per_client": 1},
            "assertions": [
                {"check": "trace_contains",
                 "event": "]]><injected attr=\"x\">&amp;'</injected>"}
            ]
        }"#,
    )
    .expect("write hostile scenario");
    let outcome = runner::run_paths(std::slice::from_ref(&dir)).expect("matrix resolves");
    let xml = outcome.junit_xml();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(!outcome.all_passed(), "the hostile event never appears");
    assert_well_formed(&xml);
    assert!(xml.contains("failures=\"1\""), "{xml}");
    assert!(
        !xml.contains("<injected"),
        "hostile markup leaked into the document: {xml}"
    );
    assert!(
        xml.contains("]]&gt;&lt;injected attr=&quot;x&quot;&gt;&amp;amp;&apos;"),
        "hostile text must survive, escaped: {xml}"
    );
}

#[test]
fn junit_for_all_green_matrix_has_no_failures() {
    let dir = std::env::temp_dir().join(format!("presp-junit-green-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp matrix dir");
    std::fs::write(
        dir.join("green.json"),
        r#"{
            "name": "green",
            "fabric": {"soc_name": "junit-green", "reconf_tiles": 1},
            "catalog": ["sort"],
            "seeds": {"count": 1},
            "workload": {"kind": "blocking", "clients": 1, "ops_per_client": 3},
            "assertions": [{"check": "stats_consistent"},
                           {"check": "bit_identical_outputs"}]
        }"#,
    )
    .expect("write green scenario");
    let outcome = runner::run_paths(std::slice::from_ref(&dir)).expect("matrix resolves");
    let xml = outcome.junit_xml();
    let _ = std::fs::remove_dir_all(&dir);

    assert_well_formed(&xml);
    assert!(outcome.all_passed());
    assert!(xml.contains("failures=\"0\""), "{xml}");
    assert!(!xml.contains("<failure"), "{xml}");
    assert!(
        xml.contains("<testcase name=\"green\" classname=\"presp-scenario\""),
        "{xml}"
    );
}
