//! Inverse-compositional Lucas-Kanade registration — WAMI accelerators #6–#10.
//!
//! The solver is decomposed into the exact kernels the paper maps to
//! separate accelerators: steepest-descent images ([`steepest_descent`]),
//! Hessian accumulation ([`hessian`]), the per-iteration SD update
//! ([`sd_update`]), 6×6 Hessian inversion ([`crate::matrix::invert6`]) and
//! the Δp computation + inverse-compositional parameter update
//! ([`delta_p`], [`update_params`]).

use crate::error::Error;
use crate::gradient::{gradient, Gradients};
use crate::image::GrayImage;
use crate::matrix::{invert6, matvec6, Mat6, Vec6};
use crate::warp::{subtract, warp_image, AffineParams};

/// The six steepest-descent images `SD_j = ∇T · ∂W/∂p_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct SdImages {
    /// One image per affine parameter.
    pub sd: [GrayImage; 6],
}

/// Computes steepest-descent images from template gradients — accelerator #6.
///
/// For the affine parameterization, `∂W/∂p = [(x,0),(0,x),(y,0),(0,y),(1,0),(0,1)]`,
/// so `SD = [dx·x, dy·x, dx·y, dy·y, dx, dy]`.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when `dx` and `dy` differ in size.
pub fn steepest_descent(grad: &Gradients) -> Result<SdImages, Error> {
    grad.dx.check_same_dims(&grad.dy)?;
    let (w, h) = grad.dx.dims();
    let mut sd: [GrayImage; 6] = std::array::from_fn(|_| GrayImage::zeroed(w, h));
    for y in 0..h {
        for x in 0..w {
            let dx = grad.dx.get(x, y);
            let dy = grad.dy.get(x, y);
            let xf = x as f32;
            let yf = y as f32;
            sd[0].set(x, y, dx * xf);
            sd[1].set(x, y, dy * xf);
            sd[2].set(x, y, dx * yf);
            sd[3].set(x, y, dy * yf);
            sd[4].set(x, y, dx);
            sd[5].set(x, y, dy);
        }
    }
    Ok(SdImages { sd })
}

/// Accumulates the Gauss-Newton Hessian `H = Σ SDᵀ·SD` — accelerator #7.
pub fn hessian(sd: &SdImages) -> Mat6 {
    let mut h = [[0.0; 6]; 6];
    let n = sd.sd[0].len();
    for idx in 0..n {
        let row: [f64; 6] = std::array::from_fn(|j| sd.sd[j].pixels()[idx] as f64);
        for (i, &ri) in row.iter().enumerate() {
            for (j, &rj) in row.iter().enumerate().skip(i) {
                h[i][j] += ri * rj;
            }
        }
    }
    // Mirror the upper triangle (indices alias across rows, so no iterator).
    #[allow(clippy::needless_range_loop)]
    for i in 0..6 {
        for j in 0..i {
            h[i][j] = h[j][i];
        }
    }
    h
}

/// Accumulates the steepest-descent update `b = Σ SDᵀ·error` — accelerator #8.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when the error image's size differs
/// from the steepest-descent images'.
pub fn sd_update(sd: &SdImages, error: &GrayImage) -> Result<Vec6, Error> {
    sd.sd[0].check_same_dims(error)?;
    let mut b = [0.0; 6];
    for (idx, &e) in error.pixels().iter().enumerate() {
        for (j, bj) in b.iter_mut().enumerate() {
            *bj += sd.sd[j].pixels()[idx] as f64 * e as f64;
        }
    }
    Ok(b)
}

/// Solves `Δp = H⁻¹ · b` — accelerator #10 (using accelerator #9's inverse).
pub fn delta_p(h_inv: &Mat6, b: &Vec6) -> AffineParams {
    AffineParams {
        p: matvec6(h_inv, b),
    }
}

/// Inverse-compositional parameter update: `p ← p ∘ W(Δp)⁻¹`.
///
/// # Errors
///
/// Returns [`Error::SingularMatrix`] when `Δp` is not invertible (does not
/// happen for converging solves; it indicates divergence).
pub fn update_params(params: &AffineParams, dp: &AffineParams) -> Result<AffineParams, Error> {
    Ok(params.compose(&dp.invert()?))
}

/// Mean absolute value over the interior of an image (excluding a `margin`
/// border band); falls back to the full image when the margin swallows it.
fn interior_mean_abs(img: &GrayImage, margin: usize) -> f64 {
    let (w, h) = img.dims();
    if w <= 2 * margin || h <= 2 * margin {
        return img.pixels().iter().map(|&e| e.abs() as f64).sum::<f64>() / img.len() as f64;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for y in margin..h - margin {
        for x in margin..w - margin {
            sum += img.get(x, y).abs() as f64;
            n += 1;
        }
    }
    sum / n as f64
}

/// Configuration of the registration solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LkConfig {
    /// Maximum Gauss-Newton iterations.
    pub max_iterations: usize,
    /// Convergence threshold on `‖Δp‖`.
    pub epsilon: f64,
    /// Border band (pixels) excluded from the solve. Warping samples with
    /// clamped borders, which fabricates gradients there; excluding a small
    /// band removes that bias.
    pub border_margin: usize,
}

impl Default for LkConfig {
    fn default() -> LkConfig {
        LkConfig {
            max_iterations: 30,
            epsilon: 1e-4,
            border_margin: 4,
        }
    }
}

/// Zeroes the steepest-descent images within `margin` pixels of the border,
/// removing border-clamping bias from the solve.
fn mask_border(sd: &mut SdImages, margin: usize) {
    if margin == 0 {
        return;
    }
    let (w, h) = sd.sd[0].dims();
    for img in sd.sd.iter_mut() {
        for y in 0..h {
            for x in 0..w {
                if x < margin || y < margin || x >= w - margin.min(w) || y >= h - margin.min(h) {
                    img.set(x, y, 0.0);
                }
            }
        }
    }
}

/// Result of registering an input frame against a template.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// Warp taking template coordinates into the input frame.
    pub params: AffineParams,
    /// Iterations performed.
    pub iterations: usize,
    /// Mean absolute error of the final residual image.
    pub final_error: f64,
}

/// Registers `input` against `template` with inverse-compositional LK.
///
/// The returned warp `W(x; p)` maps template coordinates to input
/// coordinates; `warp_image(input, p)` aligns the input onto the template.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] for mismatched images,
/// [`Error::SingularMatrix`] when the Hessian is singular (featureless
/// template), and [`Error::RegistrationDiverged`] when the update stops
/// being finite.
pub fn register(
    template: &GrayImage,
    input: &GrayImage,
    config: &LkConfig,
) -> Result<Registration, Error> {
    template.check_same_dims(input)?;
    // Template-side precomputation (once per template — the reason the
    // decomposition pays off on hardware).
    let grad = gradient(template)?;
    let mut sd = steepest_descent(&grad)?;
    mask_border(&mut sd, config.border_margin);
    let h = hessian(&sd);
    let h_inv = invert6(&h)?;

    let mut params = AffineParams::identity();
    let mut iterations = 0;
    let mut final_error = f64::INFINITY;
    for it in 0..config.max_iterations {
        iterations = it + 1;
        let warped = warp_image(input, &params)?;
        let error = subtract(&warped, template)?;
        final_error = interior_mean_abs(&error, config.border_margin);
        let b = sd_update(&sd, &error)?;
        let dp = delta_p(&h_inv, &b);
        if !dp.p.iter().all(|v| v.is_finite()) {
            return Err(Error::RegistrationDiverged { iterations });
        }
        params = update_params(&params, &dp)?;
        if dp.norm() < config.epsilon {
            break;
        }
    }
    Ok(Registration {
        params,
        iterations,
        final_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Smooth test pattern: a sum of Gaussian blobs (plenty of gradient
    /// information everywhere, band-limited enough for bilinear sampling).
    fn blobs(w: usize, h: usize) -> GrayImage {
        let centers = [
            (0.3, 0.25, 8.0),
            (0.7, 0.6, 6.0),
            (0.45, 0.8, 10.0),
            (0.15, 0.7, 7.0),
        ];
        let mut img = GrayImage::zeroed(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0f32;
                for &(cx, cy, sigma) in &centers {
                    let dx = x as f32 - cx * w as f32;
                    let dy = y as f32 - cy * h as f32;
                    v += 100.0 * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                }
                img.set(x, y, v);
            }
        }
        img
    }

    #[test]
    fn sd_images_match_definition() {
        let img = blobs(16, 16);
        let grad = gradient(&img).unwrap();
        let sd = steepest_descent(&grad).unwrap();
        let (x, y) = (5, 9);
        assert_eq!(sd.sd[0].get(x, y), grad.dx.get(x, y) * x as f32);
        assert_eq!(sd.sd[3].get(x, y), grad.dy.get(x, y) * y as f32);
        assert_eq!(sd.sd[4].get(x, y), grad.dx.get(x, y));
    }

    #[test]
    fn hessian_is_symmetric_psd_diagonal() {
        let img = blobs(24, 24);
        let sd = steepest_descent(&gradient(&img).unwrap()).unwrap();
        let h = hessian(&sd);
        #[allow(clippy::needless_range_loop)]
        for i in 0..6 {
            assert!(h[i][i] >= 0.0);
            for j in 0..6 {
                assert!((h[i][j] - h[j][i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn recovers_known_translation() {
        let template = blobs(48, 48);
        let true_warp = AffineParams::translation(1.5, -2.25);
        // input(x,y) = template(W(x,y)) means the input is the template
        // shifted; registration must recover W.
        let input = warp_image(&template, &true_warp.invert().unwrap()).unwrap();
        let reg = register(&template, &input, &LkConfig::default()).unwrap();
        assert!(
            (reg.params.p[4] - 1.5).abs() < 0.05 && (reg.params.p[5] + 2.25).abs() < 0.05,
            "recovered {:?}",
            reg.params
        );
        assert!(reg.final_error < 0.5);
    }

    #[test]
    fn identity_input_converges_immediately() {
        let template = blobs(32, 32);
        let reg = register(&template, &template, &LkConfig::default()).unwrap();
        assert!(reg.params.norm() < 1e-3);
        assert!(reg.iterations <= 2);
    }

    #[test]
    fn featureless_template_is_singular() {
        let flat = GrayImage::zeroed(16, 16);
        let result = register(&flat, &flat, &LkConfig::default());
        assert_eq!(result, Err(Error::SingularMatrix));
    }

    #[test]
    fn mismatched_dims_are_rejected() {
        let a = blobs(16, 16);
        let b = blobs(17, 16);
        assert!(matches!(
            register(&a, &b, &LkConfig::default()),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn recovers_random_small_translations(tx in -2.0f64..2.0, ty in -2.0f64..2.0) {
            let template = blobs(40, 40);
            let true_warp = AffineParams::translation(tx, ty);
            let input = warp_image(&template, &true_warp.invert().unwrap()).unwrap();
            let reg = register(&template, &input, &LkConfig::default()).unwrap();
            prop_assert!((reg.params.p[4] - tx).abs() < 0.1, "tx: {} vs {}", reg.params.p[4], tx);
            prop_assert!((reg.params.p[5] - ty).abs() < 0.1, "ty: {} vs {}", reg.params.p[5], ty);
        }
    }
}
