//! The WAMI-App benchmark: the application workload of the PR-ESP paper.
//!
//! Wide Area Motion Imagery processing, after the PERFECT benchmark suite:
//! a Bayer-mosaiced aerial frame is demosaiced ([`debayer`]), converted to
//! luminance ([`grayscale`]), registered against the previous frame with
//! inverse-compositional Lucas-Kanade ([`lucas_kanade`]) and finally passed
//! through Gaussian-mixture change detection ([`change_detection`]).
//!
//! The Lucas-Kanade solver is deliberately decomposed into the individual
//! kernels ([`gradient`], [`warp`], steepest-descent, Hessian, SD-update,
//! 6×6 matrix inversion, parameter update) because the paper splits the
//! accelerator the same way "to further parallelize its execution"
//! (Section VI); each decomposed kernel maps to one accelerator in
//! `presp-accel`.
//!
//! [`frames`] generates synthetic input sequences (the PERFECT input data is
//! not redistributable); [`graph`] captures the Fig. 3 dataflow; and
//! [`pipeline`] is the golden software reference the accelerated SoCs are
//! validated against.
//!
//! # Example
//!
//! ```
//! use presp_wami::frames::SceneGenerator;
//! use presp_wami::pipeline::{Pipeline, PipelineConfig};
//!
//! let mut scene = SceneGenerator::new(64, 64, 7);
//! let mut pipeline = Pipeline::new(PipelineConfig::default());
//! let frame = scene.next_frame();
//! let out = pipeline.process(&frame)?;
//! assert_eq!(out.changed_pixels, 0); // first frame: everything is background
//! # Ok::<(), presp_wami::Error>(())
//! ```

pub mod change_detection;
pub mod debayer;
pub mod error;
pub mod frames;
pub mod gradient;
pub mod graph;
pub mod grayscale;
pub mod image;
pub mod lucas_kanade;
pub mod matrix;
pub mod pipeline;
pub mod warp;

pub use error::Error;
pub use image::{BayerImage, GrayImage, RgbImage};
