//! Image containers shared by all WAMI kernels.

use crate::error::Error;
use serde::{Deserialize, Serialize};

/// A row-major 2D image.
///
/// # Example
///
/// ```
/// use presp_wami::image::Image;
///
/// let mut img = Image::<f32>::zeroed(4, 3);
/// img.set(2, 1, 0.5);
/// assert_eq!(img.get(2, 1), 0.5);
/// assert_eq!(img.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

/// Grayscale (luminance) image, `f32` pixels.
pub type GrayImage = Image<f32>;
/// Raw Bayer-mosaiced sensor image (RGGB pattern), `u16` pixels.
pub type BayerImage = Image<u16>;
/// Demosaiced RGB image.
pub type RgbImage = Image<[f32; 3]>;

impl<T: Copy + Default> Image<T> {
    /// Creates an image filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeroed(width: usize, height: usize) -> Image<T> {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Image {
            width,
            height,
            data: vec![T::default(); width * height],
        }
    }

    /// Creates an image from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadDimensions`] when `data.len() != width * height`
    /// or a dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Result<Image<T>, Error> {
        if width == 0 || height == 0 {
            return Err(Error::BadDimensions {
                detail: format!("{width}x{height}"),
            });
        }
        if data.len() != width * height {
            return Err(Error::BadDimensions {
                detail: format!("{} pixels for a {width}x{height} image", data.len()),
            });
        }
        Ok(Image {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Pixel count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image holds zero pixels (never true: constructors reject
    /// empty dimensions).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Writes pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Reads pixel `(x, y)` with coordinates clamped into bounds — the
    /// border handling used by the stencil kernels.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> T {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.get(cx, cy)
    }

    /// Row-major pixel slice.
    pub fn pixels(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major pixel slice.
    pub fn pixels_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Checks that `self` and `other` share dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when they do not.
    pub fn check_same_dims<U: Copy + Default>(&self, other: &Image<U>) -> Result<(), Error> {
        if self.dims() != other.dims() {
            return Err(Error::DimensionMismatch {
                a: self.dims(),
                b: other.dims(),
            });
        }
        Ok(())
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map<U: Copy + Default, F: FnMut(T) -> U>(&self, mut f: F) -> Image<U> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| f(p)).collect(),
        }
    }
}

impl GrayImage {
    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Bilinear sample at a fractional coordinate, clamped at the borders.
    #[inline]
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let x0 = x0 as isize;
        let y0 = y0 as isize;
        let p00 = self.get_clamped(x0, y0);
        let p10 = self.get_clamped(x0 + 1, y0);
        let p01 = self.get_clamped(x0, y0 + 1);
        let p11 = self.get_clamped(x0 + 1, y0 + 1);
        (p00 * (1.0 - fx) + p10 * fx) * (1.0 - fy) + (p01 * (1.0 - fx) + p11 * fx) * fy
    }

    /// Sum of absolute differences against another image.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when dimensions differ.
    pub fn sad(&self, other: &GrayImage) -> Result<f64, Error> {
        self.check_same_dims(other)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs() as f64)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Image::<f32>::from_vec(2, 2, vec![0.0; 4]).is_ok());
        assert!(Image::<f32>::from_vec(2, 2, vec![0.0; 5]).is_err());
        assert!(Image::<f32>::from_vec(0, 2, vec![]).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = GrayImage::zeroed(5, 4);
        img.set(4, 3, 7.0);
        assert_eq!(img.get(4, 3), 7.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn clamped_reads_extend_borders() {
        let mut img = GrayImage::zeroed(3, 3);
        img.set(0, 0, 1.0);
        img.set(2, 2, 9.0);
        assert_eq!(img.get_clamped(-5, -5), 1.0);
        assert_eq!(img.get_clamped(10, 10), 9.0);
    }

    #[test]
    fn bilinear_interpolates_midpoints() {
        let mut img = GrayImage::zeroed(2, 1);
        img.set(0, 0, 0.0);
        img.set(1, 0, 10.0);
        assert!((img.sample_bilinear(0.5, 0.0) - 5.0).abs() < 1e-6);
        assert!((img.sample_bilinear(0.25, 0.0) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bilinear_at_integer_coords_is_exact() {
        let mut img = GrayImage::zeroed(3, 3);
        img.set(1, 2, 4.25);
        assert_eq!(img.sample_bilinear(1.0, 2.0), 4.25);
    }

    #[test]
    fn sad_requires_matching_dims() {
        let a = GrayImage::zeroed(3, 3);
        let b = GrayImage::zeroed(4, 3);
        assert!(a.sad(&b).is_err());
        assert_eq!(a.sad(&a).unwrap(), 0.0);
    }

    #[test]
    fn map_changes_type() {
        let img = GrayImage::zeroed(2, 2);
        let ints: Image<u16> = img.map(|p| (p as u16) + 3);
        assert_eq!(ints.get(1, 1), 3);
    }

    #[test]
    fn mean_of_constant_image() {
        let mut img = GrayImage::zeroed(4, 4);
        for p in img.pixels_mut() {
            *p = 2.5;
        }
        assert!((img.mean() - 2.5).abs() < 1e-6);
    }
}
