//! Gaussian-mixture change detection — WAMI accelerator #12.
//!
//! A per-pixel Stauffer-Grimson mixture of `K` Gaussians, as used by the
//! PERFECT WAMI-App: each registered frame updates the background model and
//! pixels that match no high-weight component are flagged as changed.

use crate::error::Error;
use crate::image::{GrayImage, Image};
use serde::{Deserialize, Serialize};

/// Number of Gaussians per pixel.
pub const K: usize = 3;

/// One Gaussian component of a pixel's background mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Mixture weight.
    pub weight: f32,
    /// Mean intensity.
    pub mean: f32,
    /// Intensity variance.
    pub var: f32,
}

impl Default for Component {
    fn default() -> Component {
        Component {
            weight: 0.0,
            mean: 0.0,
            var: 1.0,
        }
    }
}

/// Tuning parameters of the mixture model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Learning rate for weights and matched components.
    pub alpha: f32,
    /// Match threshold in standard deviations.
    pub match_sigma: f32,
    /// Initial variance of a newly spawned component.
    pub initial_var: f32,
    /// Minimum cumulative weight for a component to count as background.
    pub background_threshold: f32,
}

impl Default for GmmConfig {
    fn default() -> GmmConfig {
        GmmConfig {
            alpha: 0.05,
            match_sigma: 2.5,
            initial_var: 36.0,
            background_threshold: 0.7,
        }
    }
}

/// Per-pixel Gaussian-mixture background model.
///
/// # Example
///
/// ```
/// use presp_wami::change_detection::{ChangeDetector, GmmConfig};
/// use presp_wami::image::GrayImage;
///
/// let mut detector = ChangeDetector::new(8, 8, GmmConfig::default());
/// let frame = GrayImage::zeroed(8, 8);
/// // The very first frame initializes the model: nothing is "changed".
/// let mask = detector.update(&frame)?;
/// assert_eq!(mask.pixels().iter().filter(|&&c| c).count(), 0);
/// # Ok::<(), presp_wami::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeDetector {
    width: usize,
    height: usize,
    config: GmmConfig,
    model: Vec<[Component; K]>,
    initialized: bool,
}

impl ChangeDetector {
    /// Creates a detector for `width` × `height` frames.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, config: GmmConfig) -> ChangeDetector {
        assert!(
            width > 0 && height > 0,
            "detector dimensions must be non-zero"
        );
        ChangeDetector {
            width,
            height,
            config,
            model: vec![[Component::default(); K]; width * height],
            initialized: false,
        }
    }

    /// Frame dimensions expected by [`update`](Self::update).
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Updates the model with a registered frame and returns the change mask.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the frame size differs from
    /// the detector's.
    pub fn update(&mut self, frame: &GrayImage) -> Result<Image<bool>, Error> {
        if frame.dims() != (self.width, self.height) {
            return Err(Error::DimensionMismatch {
                a: frame.dims(),
                b: (self.width, self.height),
            });
        }
        let mut mask = Image::<bool>::zeroed(self.width, self.height);
        if !self.initialized {
            for (pixel, mix) in frame.pixels().iter().zip(self.model.iter_mut()) {
                mix[0] = Component {
                    weight: 1.0,
                    mean: *pixel,
                    var: self.config.initial_var,
                };
            }
            self.initialized = true;
            return Ok(mask);
        }
        let cfg = self.config;
        for (idx, (&x, mix)) in frame.pixels().iter().zip(self.model.iter_mut()).enumerate() {
            let changed = update_pixel(mix, x, &cfg);
            if changed {
                mask.pixels_mut()[idx] = true;
            }
        }
        Ok(mask)
    }

    /// The mixture model of pixel `(x, y)` (for inspection and tests).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds coordinates.
    pub fn components(&self, x: usize, y: usize) -> &[Component; K] {
        &self.model[y * self.width + x]
    }
}

/// Updates one pixel's mixture; returns `true` when the pixel is foreground.
fn update_pixel(mix: &mut [Component; K], x: f32, cfg: &GmmConfig) -> bool {
    // Sort components by weight/σ (dominant background first).
    mix.sort_by(|a, b| {
        let ka = a.weight / a.var.sqrt().max(1e-6);
        let kb = b.weight / b.var.sqrt().max(1e-6);
        kb.partial_cmp(&ka).expect("finite fitness")
    });

    // Find the first matching component.
    let matched = mix
        .iter()
        .position(|c| c.weight > 0.0 && (x - c.mean).abs() <= cfg.match_sigma * c.var.sqrt());

    // Background test: does x match a component within the cumulative
    // background_threshold prefix?
    let mut is_background = false;
    if let Some(m) = matched {
        let mut cum = 0.0;
        for (i, c) in mix.iter().enumerate() {
            cum += c.weight;
            if i == m {
                is_background = cum <= cfg.background_threshold || i == 0;
                break;
            }
            if cum > cfg.background_threshold {
                break;
            }
        }
    }

    match matched {
        Some(m) => {
            for (i, c) in mix.iter_mut().enumerate() {
                let hit = if i == m { 1.0 } else { 0.0 };
                c.weight += cfg.alpha * (hit - c.weight);
            }
            let c = &mut mix[m];
            let rho = cfg.alpha;
            let d = x - c.mean;
            c.mean += rho * d;
            c.var += rho * (d * d - c.var);
            c.var = c.var.max(1.0);
        }
        None => {
            // Replace the weakest component with a new Gaussian centred at x.
            let weakest = (0..K)
                .min_by(|&i, &j| {
                    mix[i]
                        .weight
                        .partial_cmp(&mix[j].weight)
                        .expect("finite weight")
                })
                .expect("K > 0");
            mix[weakest] = Component {
                weight: cfg.alpha,
                mean: x,
                var: cfg.initial_var,
            };
        }
    }

    // Renormalize weights.
    let total: f32 = mix.iter().map(|c| c.weight).sum();
    if total > 0.0 {
        for c in mix.iter_mut() {
            c.weight /= total;
        }
    }

    !is_background
}

/// Counts set pixels in a change mask.
pub fn changed_pixels(mask: &Image<bool>) -> usize {
    mask.pixels().iter().filter(|&&c| c).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_frame(w: usize, h: usize, v: f32) -> GrayImage {
        let mut img = GrayImage::zeroed(w, h);
        for p in img.pixels_mut() {
            *p = v;
        }
        img
    }

    #[test]
    fn stable_background_is_never_flagged() {
        let mut det = ChangeDetector::new(8, 8, GmmConfig::default());
        for _ in 0..20 {
            let mask = det.update(&constant_frame(8, 8, 50.0)).unwrap();
            assert_eq!(changed_pixels(&mask), 0);
        }
    }

    #[test]
    fn appearing_object_is_flagged() {
        let mut det = ChangeDetector::new(8, 8, GmmConfig::default());
        for _ in 0..10 {
            det.update(&constant_frame(8, 8, 50.0)).unwrap();
        }
        let mut frame = constant_frame(8, 8, 50.0);
        frame.set(3, 3, 250.0);
        frame.set(4, 3, 250.0);
        let mask = det.update(&frame).unwrap();
        assert_eq!(changed_pixels(&mask), 2);
        assert!(mask.get(3, 3) && mask.get(4, 3));
        assert!(!mask.get(0, 0));
    }

    #[test]
    fn persistent_object_is_absorbed_into_background() {
        let cfg = GmmConfig {
            alpha: 0.2,
            ..GmmConfig::default()
        };
        let mut det = ChangeDetector::new(4, 4, cfg);
        for _ in 0..10 {
            det.update(&constant_frame(4, 4, 50.0)).unwrap();
        }
        let new_scene = constant_frame(4, 4, 200.0);
        // First appearance: flagged.
        assert!(changed_pixels(&det.update(&new_scene).unwrap()) > 0);
        // After many frames the new intensity becomes the dominant mode.
        for _ in 0..40 {
            det.update(&new_scene).unwrap();
        }
        assert_eq!(changed_pixels(&det.update(&new_scene).unwrap()), 0);
    }

    #[test]
    fn noise_within_sigma_is_background() {
        let mut det = ChangeDetector::new(4, 4, GmmConfig::default());
        det.update(&constant_frame(4, 4, 100.0)).unwrap();
        // initial_var = 36 → σ = 6 → ±2.5σ = ±15 tolerated.
        let mask = det.update(&constant_frame(4, 4, 110.0)).unwrap();
        assert_eq!(changed_pixels(&mask), 0);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut det = ChangeDetector::new(4, 4, GmmConfig::default());
        assert!(det.update(&constant_frame(5, 4, 0.0)).is_err());
    }

    #[test]
    fn weights_stay_normalized() {
        let mut det = ChangeDetector::new(2, 2, GmmConfig::default());
        for i in 0..30 {
            det.update(&constant_frame(2, 2, (i * 37 % 256) as f32))
                .unwrap();
        }
        let total: f32 = det.components(0, 0).iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-4);
    }
}
