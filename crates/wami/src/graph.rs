//! The WAMI-App dataflow graph (Fig. 3 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The twelve WAMI accelerator kernels, numbered as in Fig. 3.
///
/// Kernels #3–#11 are the decomposition of the Lucas-Kanade registration
/// stage; the paper splits LK "into multiple accelerators to further
/// parallelize its execution".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WamiKernel {
    /// #1 — Bayer demosaic.
    Debayer,
    /// #2 — RGB → luminance.
    Grayscale,
    /// #3 — template gradients.
    Gradient,
    /// #4 — affine image warp (per LK iteration).
    Warp,
    /// #5 — residual image subtraction.
    Subtract,
    /// #6 — steepest-descent images.
    SteepestDescent,
    /// #7 — Hessian accumulation.
    Hessian,
    /// #8 — steepest-descent update vector.
    SdUpdate,
    /// #9 — 6×6 matrix inversion.
    MatrixInvert,
    /// #10 — Δp solve and parameter composition.
    DeltaP,
    /// #11 — final warp of the input with converged parameters.
    WarpIwxp,
    /// #12 — Gaussian-mixture change detection.
    ChangeDetection,
}

impl WamiKernel {
    /// All kernels, in Fig. 3 index order.
    pub const ALL: [WamiKernel; 12] = [
        WamiKernel::Debayer,
        WamiKernel::Grayscale,
        WamiKernel::Gradient,
        WamiKernel::Warp,
        WamiKernel::Subtract,
        WamiKernel::SteepestDescent,
        WamiKernel::Hessian,
        WamiKernel::SdUpdate,
        WamiKernel::MatrixInvert,
        WamiKernel::DeltaP,
        WamiKernel::WarpIwxp,
        WamiKernel::ChangeDetection,
    ];

    /// 1-based Fig. 3 index.
    pub fn index(&self) -> usize {
        WamiKernel::ALL
            .iter()
            .position(|k| k == self)
            .expect("kernel is in ALL")
            + 1
    }

    /// Kernel for a 1-based Fig. 3 index.
    pub fn from_index(index: usize) -> Option<WamiKernel> {
        WamiKernel::ALL.get(index.checked_sub(1)?).copied()
    }

    /// Short kernel name.
    pub fn name(&self) -> &'static str {
        match self {
            WamiKernel::Debayer => "debayer",
            WamiKernel::Grayscale => "grayscale",
            WamiKernel::Gradient => "gradient",
            WamiKernel::Warp => "warp",
            WamiKernel::Subtract => "subtract",
            WamiKernel::SteepestDescent => "steepest-descent",
            WamiKernel::Hessian => "hessian",
            WamiKernel::SdUpdate => "sd-update",
            WamiKernel::MatrixInvert => "matrix-invert",
            WamiKernel::DeltaP => "delta-p",
            WamiKernel::WarpIwxp => "warp-iwxp",
            WamiKernel::ChangeDetection => "change-detection",
        }
    }

    /// Whether the kernel runs once per LK iteration (the inner loop) rather
    /// than once per frame.
    pub fn per_iteration(&self) -> bool {
        matches!(
            self,
            WamiKernel::Warp | WamiKernel::Subtract | WamiKernel::SdUpdate | WamiKernel::DeltaP
        )
    }
}

impl fmt::Display for WamiKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {}", self.index(), self.name())
    }
}

/// The Fig. 3 dataflow: `(producer, consumer)` kernel dependencies.
pub fn dataflow_edges() -> Vec<(WamiKernel, WamiKernel)> {
    use WamiKernel::*;
    vec![
        (Debayer, Grayscale),
        // Template-side precomputation.
        (Grayscale, Gradient),
        (Gradient, SteepestDescent),
        (SteepestDescent, Hessian),
        (Hessian, MatrixInvert),
        // Per-iteration loop.
        (Grayscale, Warp),
        (Warp, Subtract),
        (Subtract, SdUpdate),
        (SteepestDescent, SdUpdate),
        (SdUpdate, DeltaP),
        (MatrixInvert, DeltaP),
        // Final warp + change detection.
        (DeltaP, WarpIwxp),
        (Grayscale, WarpIwxp),
        (WarpIwxp, ChangeDetection),
    ]
}

/// Returns the kernels in a topological order of [`dataflow_edges`].
///
/// # Panics
///
/// Panics if the edge list ever becomes cyclic (a programming error in this
/// crate, guarded by a test).
pub fn topological_order() -> Vec<WamiKernel> {
    let edges = dataflow_edges();
    let mut in_degree = [0usize; 12];
    for &(_, to) in &edges {
        in_degree[to.index() - 1] += 1;
    }
    let mut ready: Vec<WamiKernel> = WamiKernel::ALL
        .iter()
        .copied()
        .filter(|k| in_degree[k.index() - 1] == 0)
        .collect();
    let mut order = Vec::with_capacity(12);
    while let Some(k) = ready.pop() {
        order.push(k);
        for &(from, to) in &edges {
            if from == k {
                let d = &mut in_degree[to.index() - 1];
                *d -= 1;
                if *d == 0 {
                    ready.push(to);
                }
            }
        }
    }
    assert_eq!(order.len(), 12, "WAMI dataflow graph must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_one_to_twelve() {
        for (i, k) in WamiKernel::ALL.iter().enumerate() {
            assert_eq!(k.index(), i + 1);
            assert_eq!(WamiKernel::from_index(i + 1), Some(*k));
        }
        assert_eq!(WamiKernel::from_index(0), None);
        assert_eq!(WamiKernel::from_index(13), None);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = WamiKernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn topological_order_respects_edges() {
        let order = topological_order();
        let pos = |k: WamiKernel| order.iter().position(|&o| o == k).unwrap();
        for (from, to) in dataflow_edges() {
            assert!(pos(from) < pos(to), "{from} must precede {to}");
        }
    }

    #[test]
    fn debayer_is_the_sole_source() {
        let edges = dataflow_edges();
        let consumers: HashSet<WamiKernel> = edges.iter().map(|&(_, to)| to).collect();
        let sources: Vec<WamiKernel> = WamiKernel::ALL
            .iter()
            .copied()
            .filter(|k| !consumers.contains(k))
            .collect();
        assert_eq!(sources, vec![WamiKernel::Debayer]);
    }

    #[test]
    fn change_detection_is_the_sole_sink() {
        let edges = dataflow_edges();
        let producers: HashSet<WamiKernel> = edges.iter().map(|&(from, _)| from).collect();
        let sinks: Vec<WamiKernel> = WamiKernel::ALL
            .iter()
            .copied()
            .filter(|k| !producers.contains(k))
            .collect();
        assert_eq!(sinks, vec![WamiKernel::ChangeDetection]);
    }

    #[test]
    fn inner_loop_kernels_are_marked() {
        assert!(WamiKernel::Warp.per_iteration());
        assert!(!WamiKernel::Hessian.per_iteration());
        assert_eq!(
            WamiKernel::ALL.iter().filter(|k| k.per_iteration()).count(),
            4
        );
    }
}
