//! Small dense matrix helpers — WAMI accelerator #9 (6×6 matrix inversion).

use crate::error::Error;

/// A 6×6 matrix, the size of the Lucas-Kanade Hessian.
pub type Mat6 = [[f64; 6]; 6];
/// A length-6 vector.
pub type Vec6 = [f64; 6];

/// The 6×6 identity matrix.
pub fn identity6() -> Mat6 {
    let mut m = [[0.0; 6]; 6];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

/// Inverts a 6×6 matrix by Gauss-Jordan elimination with partial pivoting.
///
/// # Errors
///
/// Returns [`Error::SingularMatrix`] when a pivot is (numerically) zero.
///
/// # Example
///
/// ```
/// use presp_wami::matrix::{identity6, invert6};
///
/// let inv = invert6(&identity6())?;
/// assert_eq!(inv, identity6());
/// # Ok::<(), presp_wami::Error>(())
/// ```
pub fn invert6(m: &Mat6) -> Result<Mat6, Error> {
    let mut a = *m;
    let mut inv = identity6();
    for col in 0..6 {
        // Partial pivot.
        let pivot_row = (col..6)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(Error::SingularMatrix);
        }
        a.swap(col, pivot_row);
        inv.swap(col, pivot_row);
        let pivot = a[col][col];
        for k in 0..6 {
            a[col][k] /= pivot;
            inv[col][k] /= pivot;
        }
        for row in 0..6 {
            if row != col {
                let factor = a[row][col];
                for k in 0..6 {
                    a[row][k] -= factor * a[col][k];
                    inv[row][k] -= factor * inv[col][k];
                }
            }
        }
    }
    Ok(inv)
}

/// Matrix-vector product `m · v`.
pub fn matvec6(m: &Mat6, v: &Vec6) -> Vec6 {
    let mut out = [0.0; 6];
    for (o, row) in out.iter_mut().zip(m.iter()) {
        *o = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
    }
    out
}

/// Matrix-matrix product `a · b`.
pub fn matmul6(a: &Mat6, b: &Mat6) -> Mat6 {
    let mut out = [[0.0; 6]; 6];
    for i in 0..6 {
        for j in 0..6 {
            out[i][j] = (0..6).map(|k| a[i][k] * b[k][j]).sum();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_inverts_to_itself() {
        assert_eq!(invert6(&identity6()).unwrap(), identity6());
    }

    #[test]
    fn diagonal_matrix_inverts_componentwise() {
        let mut m = [[0.0; 6]; 6];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = (i + 1) as f64;
        }
        let inv = invert6(&m).unwrap();
        for (i, row) in inv.iter().enumerate() {
            assert!((row[i] - 1.0 / (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_is_detected() {
        let m = [[0.0; 6]; 6];
        assert_eq!(invert6(&m), Err(Error::SingularMatrix));
        let mut rank_deficient = identity6();
        rank_deficient[5] = rank_deficient[4]; // duplicate row
        assert_eq!(invert6(&rank_deficient), Err(Error::SingularMatrix));
    }

    #[test]
    fn matvec_of_identity_is_input() {
        let v = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        assert_eq!(matvec6(&identity6(), &v), v);
    }

    fn arb_spd() -> impl Strategy<Value = Mat6> {
        // A^T·A + εI is symmetric positive definite, hence invertible —
        // exactly the structure of a Lucas-Kanade Hessian.
        proptest::collection::vec(-2.0f64..2.0, 36).prop_map(|vals| {
            let mut a = [[0.0; 6]; 6];
            for i in 0..6 {
                for j in 0..6 {
                    a[i][j] = vals[i * 6 + j];
                }
            }
            let mut spd = [[0.0; 6]; 6];
            for i in 0..6 {
                for j in 0..6 {
                    spd[i][j] = (0..6).map(|k| a[k][i] * a[k][j]).sum::<f64>();
                }
                spd[i][i] += 0.5;
            }
            spd
        })
    }

    proptest! {
        #[test]
        fn inverse_times_matrix_is_identity(m in arb_spd()) {
            let inv = invert6(&m).unwrap();
            let prod = matmul6(&inv, &m);
            for (i, row) in prod.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((v - expect).abs() < 1e-6, "({i},{j}) = {v}");
                }
            }
        }

        #[test]
        fn solve_via_inverse_matches_direct_product(m in arb_spd(), vraw in proptest::collection::vec(-3.0f64..3.0, 6)) {
            let v: Vec6 = vraw.try_into().unwrap();
            let inv = invert6(&m).unwrap();
            let x = matvec6(&inv, &v);
            let back = matvec6(&m, &x);
            for i in 0..6 {
                prop_assert!((back[i] - v[i]).abs() < 1e-6);
            }
        }
    }
}
