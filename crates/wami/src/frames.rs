//! Synthetic WAMI frame generation.
//!
//! The PERFECT suite's aerial imagery is not redistributable, so the
//! reproduction generates an equivalent sensor-domain workload: a smooth
//! textured background drifting with a global translation (platform motion),
//! a handful of independently moving bright objects (vehicles), sensor noise,
//! and an RGGB Bayer mosaic on top — exercising exactly the kernel chain of
//! Fig. 3 (debayer → grayscale → registration → change detection).

use crate::debayer::mosaic;
use crate::image::{BayerImage, GrayImage, RgbImage};
use crate::warp::AffineParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A moving foreground object (a "vehicle" blob).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MovingObject {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    sigma: f64,
    intensity: f64,
}

/// Deterministic synthetic scene generator.
///
/// # Example
///
/// ```
/// use presp_wami::frames::SceneGenerator;
///
/// let mut scene = SceneGenerator::new(64, 64, 42);
/// let f0 = scene.next_frame();
/// let f1 = scene.next_frame();
/// assert_eq!(f0.dims(), (64, 64));
/// assert_ne!(f0.pixels(), f1.pixels()); // the scene moves
/// ```
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    width: usize,
    height: usize,
    rng: StdRng,
    background: GrayImage,
    objects: Vec<MovingObject>,
    /// Platform drift per frame, in pixels.
    drift: (f64, f64),
    frame_index: usize,
    noise_sigma: f64,
}

impl SceneGenerator {
    /// Creates a generator for `width` × `height` frames with a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, seed: u64) -> SceneGenerator {
        assert!(width > 0 && height > 0, "scene dimensions must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let background = smooth_texture(width * 2, height * 2, &mut rng);
        let n_objects = 2 + (seed as usize % 3);
        let objects = (0..n_objects)
            .map(|_| MovingObject {
                x: rng.gen_range(0.2..0.8) * width as f64,
                y: rng.gen_range(0.2..0.8) * height as f64,
                vx: rng.gen_range(-1.5..1.5),
                vy: rng.gen_range(-1.5..1.5),
                sigma: rng.gen_range(1.5..3.0),
                intensity: rng.gen_range(150.0..250.0),
            })
            .collect();
        let drift = (rng.gen_range(-0.8..0.8), rng.gen_range(-0.8..0.8));
        SceneGenerator {
            width,
            height,
            rng,
            background,
            objects,
            drift,
            frame_index: 0,
            noise_sigma: 1.0,
        }
    }

    /// Removes the moving foreground objects, leaving pure platform motion —
    /// useful for registration tests that need an unambiguous global warp.
    pub fn without_objects(mut self) -> SceneGenerator {
        self.objects.clear();
        self
    }

    /// Frame dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// The per-frame platform drift (ground truth for registration tests).
    pub fn drift(&self) -> (f64, f64) {
        self.drift
    }

    /// Frames generated so far.
    pub fn frame_index(&self) -> usize {
        self.frame_index
    }

    /// Renders the next raw Bayer frame.
    pub fn next_frame(&mut self) -> BayerImage {
        let gray = self.next_frame_gray();
        // A lightly tinted RGB rendition of the luminance scene.
        let mut rgb = RgbImage::zeroed(self.width, self.height);
        for (out, &v) in rgb.pixels_mut().iter_mut().zip(gray.pixels()) {
            *out = [v * 0.95, v, v * 0.9];
        }
        mosaic(&rgb)
    }

    /// Renders the next frame directly in luminance (for kernel-level tests
    /// that skip the sensor front-end).
    pub fn next_frame_gray(&mut self) -> GrayImage {
        let t = self.frame_index as f64;
        self.frame_index += 1;
        // Sample the oversized background at an offset growing with t; start
        // from the center so drift never runs off the texture for the
        // sequence lengths the benchmarks use.
        let ox = self.width as f64 / 2.0 + t * self.drift.0;
        let oy = self.height as f64 / 2.0 + t * self.drift.1;
        let shift = AffineParams::translation(ox, oy);
        let mut img = GrayImage::zeroed(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let (sx, sy) = shift.apply(x as f64, y as f64);
                img.set(x, y, self.background.sample_bilinear(sx as f32, sy as f32));
            }
        }
        // Foreground objects move in scene coordinates.
        for obj in &self.objects {
            let cx = obj.x + t * obj.vx;
            let cy = obj.y + t * obj.vy;
            splat(&mut img, cx, cy, obj.sigma, obj.intensity);
        }
        // Sensor noise.
        for p in img.pixels_mut() {
            let noise: f64 = self.rng.gen_range(-1.0..1.0) * self.noise_sigma;
            *p = (*p + noise as f32).clamp(0.0, 1023.0);
        }
        img
    }
}

/// Adds a Gaussian blob to an image.
fn splat(img: &mut GrayImage, cx: f64, cy: f64, sigma: f64, intensity: f64) {
    let r = (3.0 * sigma).ceil() as isize;
    let (w, h) = img.dims();
    for dy in -r..=r {
        for dx in -r..=r {
            let x = cx.round() as isize + dx;
            let y = cy.round() as isize + dy;
            if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                let fx = x as f64 - cx;
                let fy = y as f64 - cy;
                let g = intensity * (-(fx * fx + fy * fy) / (2.0 * sigma * sigma)).exp();
                let old = img.get(x as usize, y as usize);
                img.set(x as usize, y as usize, (old + g as f32).min(1023.0));
            }
        }
    }
}

/// Generates a smooth random texture by summing low-frequency cosine waves.
fn smooth_texture(width: usize, height: usize, rng: &mut StdRng) -> GrayImage {
    let waves: Vec<(f64, f64, f64, f64)> = (0..12)
        .map(|_| {
            (
                rng.gen_range(0.02..0.15),                 // fx
                rng.gen_range(0.02..0.15),                 // fy
                rng.gen_range(0.0..std::f64::consts::TAU), // phase
                rng.gen_range(10.0..30.0),                 // amplitude
            )
        })
        .collect();
    let mut img = GrayImage::zeroed(width, height);
    for y in 0..height {
        for x in 0..width {
            let mut v = 120.0f64;
            for &(fx, fy, phase, amp) in &waves {
                v += amp * (fx * x as f64 + fy * y as f64 + phase).cos();
            }
            img.set(x, y, v.clamp(0.0, 1023.0) as f32);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debayer::debayer;
    use crate::grayscale::grayscale;
    use crate::lucas_kanade::{register, LkConfig};

    #[test]
    fn generator_is_deterministic() {
        let mut a = SceneGenerator::new(32, 32, 9);
        let mut b = SceneGenerator::new(32, 32, 9);
        assert_eq!(a.next_frame(), b.next_frame());
        assert_eq!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SceneGenerator::new(32, 32, 1);
        let mut b = SceneGenerator::new(32, 32, 2);
        assert_ne!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn frames_stay_in_sensor_range() {
        let mut scene = SceneGenerator::new(48, 48, 5);
        for _ in 0..5 {
            let f = scene.next_frame();
            assert!(f.pixels().iter().all(|&p| p <= 1023));
        }
    }

    #[test]
    fn registration_recovers_platform_drift() {
        let mut scene = SceneGenerator::new(64, 64, 11).without_objects();
        let f0 = scene.next_frame_gray();
        let f1 = scene.next_frame_gray();
        let (dx, dy) = scene.drift();
        let reg = register(&f0, &f1, &LkConfig::default()).unwrap();
        // frame1(x) = frame0(x + drift), so the warp aligning frame1 onto
        // frame0 translates by -drift.
        assert!(
            (reg.params.p[4] + dx).abs() < 0.15,
            "dx {} vs {}",
            reg.params.p[4],
            -dx
        );
        assert!(
            (reg.params.p[5] + dy).abs() < 0.15,
            "dy {} vs {}",
            reg.params.p[5],
            -dy
        );
    }

    #[test]
    fn full_front_end_runs_on_generated_frames() {
        let mut scene = SceneGenerator::new(32, 32, 3);
        let raw = scene.next_frame();
        let rgb = debayer(&raw).unwrap();
        let gray = grayscale(&rgb).unwrap();
        assert_eq!(gray.dims(), (32, 32));
        assert!(gray.mean() > 10.0);
    }
}
