//! Error type for the WAMI kernels.

use std::fmt;

/// Errors produced by WAMI kernels and the reference pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Two images that must share dimensions do not.
    DimensionMismatch {
        /// Dimensions of the first operand.
        a: (usize, usize),
        /// Dimensions of the second operand.
        b: (usize, usize),
    },
    /// An image dimension is zero or otherwise unusable.
    BadDimensions {
        /// Human-readable description.
        detail: String,
    },
    /// A matrix to invert is singular (or numerically so).
    SingularMatrix,
    /// The Lucas-Kanade solver failed to make progress.
    RegistrationDiverged {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { a, b } => {
                write!(
                    f,
                    "image dimensions differ: {}x{} vs {}x{}",
                    a.0, a.1, b.0, b.1
                )
            }
            Error::BadDimensions { detail } => write!(f, "bad image dimensions: {detail}"),
            Error::SingularMatrix => write!(f, "matrix is singular"),
            Error::RegistrationDiverged { iterations } => {
                write!(f, "registration diverged after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for Error {}
