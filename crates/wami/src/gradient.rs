//! Image gradient kernel — WAMI accelerator #3.

use crate::error::Error;
use crate::image::GrayImage;

/// Horizontal and vertical central-difference gradients of an image.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    /// ∂I/∂x.
    pub dx: GrayImage,
    /// ∂I/∂y.
    pub dy: GrayImage,
}

/// Computes central-difference gradients with clamped borders.
///
/// # Errors
///
/// Currently infallible; the `Result` keeps the kernel signature uniform
/// with the rest of the pipeline.
///
/// # Example
///
/// ```
/// use presp_wami::gradient::gradient;
/// use presp_wami::image::GrayImage;
///
/// // A horizontal ramp has constant dx = 1 and zero dy in the interior.
/// let mut img = GrayImage::zeroed(8, 8);
/// for y in 0..8 { for x in 0..8 { img.set(x, y, x as f32); } }
/// let g = gradient(&img)?;
/// assert!((g.dx.get(4, 4) - 1.0).abs() < 1e-6);
/// assert_eq!(g.dy.get(4, 4), 0.0);
/// # Ok::<(), presp_wami::Error>(())
/// ```
pub fn gradient(img: &GrayImage) -> Result<Gradients, Error> {
    let (w, h) = img.dims();
    let mut dx = GrayImage::zeroed(w, h);
    let mut dy = GrayImage::zeroed(w, h);
    for y in 0..h {
        for x in 0..w {
            let xi = x as isize;
            let yi = y as isize;
            dx.set(
                x,
                y,
                (img.get_clamped(xi + 1, yi) - img.get_clamped(xi - 1, yi)) / 2.0,
            );
            dy.set(
                x,
                y,
                (img.get_clamped(xi, yi + 1) - img.get_clamped(xi, yi - 1)) / 2.0,
            );
        }
    }
    Ok(Gradients { dx, dy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_image_has_zero_gradient() {
        let mut img = GrayImage::zeroed(6, 6);
        for p in img.pixels_mut() {
            *p = 3.5;
        }
        let g = gradient(&img).unwrap();
        assert!(g.dx.pixels().iter().all(|&v| v == 0.0));
        assert!(g.dy.pixels().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vertical_ramp_has_unit_dy() {
        let mut img = GrayImage::zeroed(5, 7);
        for y in 0..7 {
            for x in 0..5 {
                img.set(x, y, 2.0 * y as f32);
            }
        }
        let g = gradient(&img).unwrap();
        assert!((g.dy.get(2, 3) - 2.0).abs() < 1e-6);
        assert_eq!(g.dx.get(2, 3), 0.0);
        // Borders use clamped (one-sided) differences: half magnitude.
        assert!((g.dy.get(2, 0) - 1.0).abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn gradient_is_linear(pixels in proptest::collection::vec(-10.0f32..10.0, 36), k in 0.5f32..4.0) {
            let img = GrayImage::from_vec(6, 6, pixels.clone()).unwrap();
            let scaled = GrayImage::from_vec(6, 6, pixels.iter().map(|&p| k * p).collect()).unwrap();
            let g = gradient(&img).unwrap();
            let gs = gradient(&scaled).unwrap();
            for (a, b) in g.dx.pixels().iter().zip(gs.dx.pixels()) {
                prop_assert!((k * a - b).abs() < 1e-3);
            }
        }
    }
}
