//! Affine warp kernel — WAMI accelerators #4 (warp) and #11 (warp-IWxP).

use crate::error::Error;
use crate::image::GrayImage;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 6-parameter affine warp in the Lucas-Kanade parameterization:
///
/// ```text
/// W(x, y; p) = [ (1+p1)·x +  p3·y   + p5 ]
///              [  p2·x    + (1+p4)·y + p6 ]
/// ```
///
/// `p = 0` is the identity warp.
///
/// # Example
///
/// ```
/// use presp_wami::warp::AffineParams;
///
/// let t = AffineParams::translation(2.0, -1.0);
/// assert_eq!(t.apply(10.0, 10.0), (12.0, 9.0));
/// let back = t.invert()?;
/// let roundtrip = t.compose(&back);
/// let (x, y) = roundtrip.apply(5.0, 5.0);
/// assert!((x - 5.0).abs() < 1e-6 && (y - 5.0).abs() < 1e-6);
/// # Ok::<(), presp_wami::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AffineParams {
    /// The six parameters `[p1, p2, p3, p4, p5, p6]`.
    pub p: [f64; 6],
}

impl AffineParams {
    /// The identity warp.
    pub fn identity() -> AffineParams {
        AffineParams::default()
    }

    /// A pure translation by `(tx, ty)`.
    pub fn translation(tx: f64, ty: f64) -> AffineParams {
        AffineParams {
            p: [0.0, 0.0, 0.0, 0.0, tx, ty],
        }
    }

    /// Applies the warp to a point.
    pub fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        let [p1, p2, p3, p4, p5, p6] = self.p;
        ((1.0 + p1) * x + p3 * y + p5, p2 * x + (1.0 + p4) * y + p6)
    }

    /// The 2×3 matrix form `[[a, c, e], [b, d, f]]`.
    pub fn matrix(&self) -> [[f64; 3]; 2] {
        let [p1, p2, p3, p4, p5, p6] = self.p;
        [[1.0 + p1, p3, p5], [p2, 1.0 + p4, p6]]
    }

    /// Composition `self ∘ other`: applies `other` first, then `self`.
    pub fn compose(&self, other: &AffineParams) -> AffineParams {
        let a = self.matrix();
        let b = other.matrix();
        // Row-by-row 2x3 · (2x3 extended with [0 0 1]).
        let m = [
            [
                a[0][0] * b[0][0] + a[0][1] * b[1][0],
                a[0][0] * b[0][1] + a[0][1] * b[1][1],
                a[0][0] * b[0][2] + a[0][1] * b[1][2] + a[0][2],
            ],
            [
                a[1][0] * b[0][0] + a[1][1] * b[1][0],
                a[1][0] * b[0][1] + a[1][1] * b[1][1],
                a[1][0] * b[0][2] + a[1][1] * b[1][2] + a[1][2],
            ],
        ];
        AffineParams {
            p: [
                m[0][0] - 1.0,
                m[1][0],
                m[0][1],
                m[1][1] - 1.0,
                m[0][2],
                m[1][2],
            ],
        }
    }

    /// Inverse warp.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SingularMatrix`] when the linear part is singular.
    pub fn invert(&self) -> Result<AffineParams, Error> {
        let m = self.matrix();
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        if det.abs() < 1e-12 {
            return Err(Error::SingularMatrix);
        }
        let ia = m[1][1] / det;
        let ic = -m[0][1] / det;
        let ib = -m[1][0] / det;
        let id = m[0][0] / det;
        let ie = -(ia * m[0][2] + ic * m[1][2]);
        let if_ = -(ib * m[0][2] + id * m[1][2]);
        Ok(AffineParams {
            p: [ia - 1.0, ib, ic, id - 1.0, ie, if_],
        })
    }

    /// Euclidean norm of the parameter vector (convergence measure).
    pub fn norm(&self) -> f64 {
        self.p.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl fmt::Display for AffineParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "affine[{:.4} {:.4} {:.4} {:.4} | t=({:.3}, {:.3})]",
            self.p[0], self.p[1], self.p[2], self.p[3], self.p[4], self.p[5]
        )
    }
}

/// Warps `img` by `params`: `out(x, y) = img(W(x, y; p))`, sampling
/// bilinearly with clamped borders.
///
/// # Errors
///
/// Currently infallible; the `Result` keeps the kernel signature uniform
/// with the rest of the pipeline.
pub fn warp_image(img: &GrayImage, params: &AffineParams) -> Result<GrayImage, Error> {
    let (w, h) = img.dims();
    let mut out = GrayImage::zeroed(w, h);
    for y in 0..h {
        for x in 0..w {
            let (sx, sy) = params.apply(x as f64, y as f64);
            out.set(x, y, img.sample_bilinear(sx as f32, sy as f32));
        }
    }
    Ok(out)
}

/// Pixel-wise subtraction `a - b` — WAMI accelerator #5.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] when dimensions differ.
pub fn subtract(a: &GrayImage, b: &GrayImage) -> Result<GrayImage, Error> {
    a.check_same_dims(b)?;
    let (w, h) = a.dims();
    let mut out = GrayImage::zeroed(w, h);
    for (o, (&pa, &pb)) in out
        .pixels_mut()
        .iter_mut()
        .zip(a.pixels().iter().zip(b.pixels()))
    {
        *o = pa - pb;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_warp_is_noop() {
        let mut img = GrayImage::zeroed(8, 8);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = i as f32;
        }
        let out = warp_image(&img, &AffineParams::identity()).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn integer_translation_shifts_pixels() {
        let mut img = GrayImage::zeroed(8, 8);
        img.set(5, 5, 1.0);
        // out(x,y) = img(x+2, y+1) → the bright pixel appears at (3, 4).
        let out = warp_image(&img, &AffineParams::translation(2.0, 1.0)).unwrap();
        assert_eq!(out.get(3, 4), 1.0);
        assert_eq!(out.get(5, 5), 0.0);
    }

    #[test]
    fn compose_of_translations_adds() {
        let a = AffineParams::translation(1.0, 2.0);
        let b = AffineParams::translation(3.0, -1.0);
        let c = a.compose(&b);
        assert_eq!(c.apply(0.0, 0.0), (4.0, 1.0));
    }

    #[test]
    fn singular_warp_has_no_inverse() {
        // Collapse everything onto a line: linear part rank 1.
        let degenerate = AffineParams {
            p: [-1.0, 0.0, 0.0, -1.0, 0.0, 0.0],
        };
        assert_eq!(degenerate.invert(), Err(Error::SingularMatrix));
    }

    #[test]
    fn subtract_of_self_is_zero() {
        let mut img = GrayImage::zeroed(4, 4);
        img.set(1, 1, 9.0);
        let d = subtract(&img, &img).unwrap();
        assert!(d.pixels().iter().all(|&p| p == 0.0));
    }

    fn arb_params() -> impl Strategy<Value = AffineParams> {
        // Small linear distortions and moderate translations keep the warp
        // invertible and well-conditioned.
        (
            -0.2f64..0.2,
            -0.2f64..0.2,
            -0.2f64..0.2,
            -0.2f64..0.2,
            -5.0f64..5.0,
            -5.0f64..5.0,
        )
            .prop_map(|(p1, p2, p3, p4, p5, p6)| AffineParams {
                p: [p1, p2, p3, p4, p5, p6],
            })
    }

    proptest! {
        #[test]
        fn invert_compose_is_identity(params in arb_params()) {
            let inv = params.invert().unwrap();
            let id = params.compose(&inv);
            prop_assert!(id.norm() < 1e-9, "norm {}", id.norm());
        }

        #[test]
        fn compose_is_associative(a in arb_params(), b in arb_params(), c in arb_params()) {
            let left = a.compose(&b).compose(&c);
            let right = a.compose(&b.compose(&c));
            for i in 0..6 {
                prop_assert!((left.p[i] - right.p[i]).abs() < 1e-9);
            }
        }

        #[test]
        fn apply_matches_matrix_form(params in arb_params(), x in -10.0f64..10.0, y in -10.0f64..10.0) {
            let (ax, ay) = params.apply(x, y);
            let m = params.matrix();
            prop_assert!((ax - (m[0][0]*x + m[0][1]*y + m[0][2])).abs() < 1e-12);
            prop_assert!((ay - (m[1][0]*x + m[1][1]*y + m[1][2])).abs() < 1e-12);
        }
    }
}
