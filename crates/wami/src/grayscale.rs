//! Grayscale conversion kernel — WAMI accelerator #2.

use crate::error::Error;
use crate::image::{GrayImage, RgbImage};

/// ITU-R BT.601 luma weights.
const LUMA: [f32; 3] = [0.299, 0.587, 0.114];

/// Converts an RGB image to luminance.
///
/// # Errors
///
/// Currently infallible; the `Result` keeps the kernel signature uniform
/// with the rest of the pipeline.
///
/// # Example
///
/// ```
/// use presp_wami::grayscale::grayscale;
/// use presp_wami::image::RgbImage;
///
/// let mut rgb = RgbImage::zeroed(2, 2);
/// rgb.set(0, 0, [1.0, 1.0, 1.0]);
/// let gray = grayscale(&rgb)?;
/// assert!((gray.get(0, 0) - 1.0).abs() < 1e-6);
/// # Ok::<(), presp_wami::Error>(())
/// ```
pub fn grayscale(rgb: &RgbImage) -> Result<GrayImage, Error> {
    Ok(rgb.map(|[r, g, b]| r * LUMA[0] + g * LUMA[1] + b * LUMA[2]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weights_sum_to_one() {
        assert!((LUMA.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn green_dominates_luma() {
        let mut rgb = RgbImage::zeroed(1, 1);
        rgb.set(0, 0, [0.0, 1.0, 0.0]);
        let g = grayscale(&rgb).unwrap().get(0, 0);
        rgb.set(0, 0, [1.0, 0.0, 0.0]);
        let r = grayscale(&rgb).unwrap().get(0, 0);
        rgb.set(0, 0, [0.0, 0.0, 1.0]);
        let b = grayscale(&rgb).unwrap().get(0, 0);
        assert!(g > r && r > b);
    }

    proptest! {
        #[test]
        fn gray_pixels_are_fixed_points(v in 0.0f32..1000.0) {
            let mut rgb = RgbImage::zeroed(1, 1);
            rgb.set(0, 0, [v, v, v]);
            let out = grayscale(&rgb).unwrap().get(0, 0);
            prop_assert!((out - v).abs() < v.max(1.0) * 1e-5);
        }

        #[test]
        fn luma_is_monotone_in_each_channel(
            base in 0.0f32..100.0,
            delta in 0.01f32..50.0,
            ch in 0usize..3,
        ) {
            let mut lo = [base; 3];
            let mut hi = [base; 3];
            hi[ch] = base + delta;
            let mut img = RgbImage::zeroed(1, 1);
            img.set(0, 0, lo);
            let vlo = grayscale(&img).unwrap().get(0, 0);
            img.set(0, 0, hi);
            let vhi = grayscale(&img).unwrap().get(0, 0);
            prop_assert!(vhi > vlo);
            lo[ch] = 0.0; // silence unused-assignment lint on `lo`
            let _ = lo;
        }
    }
}
