//! Debayer (demosaic) kernel — WAMI accelerator #1.
//!
//! Converts a raw RGGB Bayer mosaic into an RGB image using bilinear
//! interpolation of the missing color samples, the same interpolation class
//! the PERFECT WAMI-App reference uses.

use crate::error::Error;
use crate::image::{BayerImage, RgbImage};

/// Position of a pixel within the 2×2 RGGB Bayer tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BayerSite {
    Red,
    GreenOnRedRow,
    GreenOnBlueRow,
    Blue,
}

fn site(x: usize, y: usize) -> BayerSite {
    match (y % 2, x % 2) {
        (0, 0) => BayerSite::Red,
        (0, _) => BayerSite::GreenOnRedRow,
        (_, 0) => BayerSite::GreenOnBlueRow,
        _ => BayerSite::Blue,
    }
}

/// Demosaics an RGGB Bayer image into RGB (bilinear interpolation).
///
/// Output pixels are `f32` in the input's numeric range.
///
/// # Errors
///
/// Currently infallible for any well-formed [`BayerImage`]; the `Result`
/// keeps the kernel signature uniform with the rest of the pipeline.
///
/// # Example
///
/// ```
/// use presp_wami::debayer::debayer;
/// use presp_wami::image::BayerImage;
///
/// // A constant sensor reading demosaics to a constant RGB image.
/// let mut raw = BayerImage::zeroed(8, 8);
/// for p in raw.pixels_mut() { *p = 100; }
/// let rgb = debayer(&raw)?;
/// let [r, g, b] = rgb.get(4, 4);
/// assert_eq!((r, g, b), (100.0, 100.0, 100.0));
/// # Ok::<(), presp_wami::Error>(())
/// ```
pub fn debayer(raw: &BayerImage) -> Result<RgbImage, Error> {
    let (w, h) = raw.dims();
    let mut out = RgbImage::zeroed(w, h);
    let px = |x: isize, y: isize| raw.get_clamped(x, y) as f32;

    for y in 0..h {
        for x in 0..w {
            let xi = x as isize;
            let yi = y as isize;
            let cross_g = (px(xi - 1, yi) + px(xi + 1, yi) + px(xi, yi - 1) + px(xi, yi + 1)) / 4.0;
            let diag =
                (px(xi - 1, yi - 1) + px(xi + 1, yi - 1) + px(xi - 1, yi + 1) + px(xi + 1, yi + 1))
                    / 4.0;
            let horiz = (px(xi - 1, yi) + px(xi + 1, yi)) / 2.0;
            let vert = (px(xi, yi - 1) + px(xi, yi + 1)) / 2.0;
            let rgb = match site(x, y) {
                BayerSite::Red => [px(xi, yi), cross_g, diag],
                BayerSite::GreenOnRedRow => [horiz, px(xi, yi), vert],
                BayerSite::GreenOnBlueRow => [vert, px(xi, yi), horiz],
                BayerSite::Blue => [diag, cross_g, px(xi, yi)],
            };
            out.set(x, y, rgb);
        }
    }
    Ok(out)
}

/// Re-mosaics an RGB image back into RGGB Bayer — used by the synthetic
/// scene generator to produce sensor-domain input.
pub fn mosaic(rgb: &RgbImage) -> BayerImage {
    let (w, h) = rgb.dims();
    let mut out = BayerImage::zeroed(w, h);
    for y in 0..h {
        for x in 0..w {
            let [r, g, b] = rgb.get(x, y);
            let v = match site(x, y) {
                BayerSite::Red => r,
                BayerSite::GreenOnRedRow | BayerSite::GreenOnBlueRow => g,
                BayerSite::Blue => b,
            };
            out.set(x, y, v.clamp(0.0, u16::MAX as f32) as u16);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::RgbImage;
    use proptest::prelude::*;

    #[test]
    fn constant_raw_gives_constant_rgb() {
        let mut raw = BayerImage::zeroed(16, 16);
        for p in raw.pixels_mut() {
            *p = 500;
        }
        let rgb = debayer(&raw).unwrap();
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(rgb.get(x, y), [500.0, 500.0, 500.0]);
            }
        }
    }

    #[test]
    fn pure_red_scene_roundtrips_on_red_sites() {
        let mut rgb = RgbImage::zeroed(8, 8);
        for p in rgb.pixels_mut() {
            *p = [900.0, 0.0, 0.0];
        }
        let raw = mosaic(&rgb);
        // Red sites carry the red value, green/blue sites read zero.
        assert_eq!(raw.get(0, 0), 900);
        assert_eq!(raw.get(1, 0), 0);
        assert_eq!(raw.get(1, 1), 0);
        let back = debayer(&raw).unwrap();
        // Interior red estimate on a red site is exact.
        assert_eq!(back.get(4, 4)[0], 900.0);
    }

    #[test]
    fn rggb_site_pattern() {
        assert_eq!(site(0, 0), BayerSite::Red);
        assert_eq!(site(1, 0), BayerSite::GreenOnRedRow);
        assert_eq!(site(0, 1), BayerSite::GreenOnBlueRow);
        assert_eq!(site(1, 1), BayerSite::Blue);
        assert_eq!(site(2, 2), BayerSite::Red);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn gray_world_roundtrip(v in 0u16..4096) {
            // A gray (R=G=B) scene survives mosaic→demosaic exactly.
            let mut rgb = RgbImage::zeroed(10, 10);
            for p in rgb.pixels_mut() { *p = [v as f32, v as f32, v as f32]; }
            let back = debayer(&mosaic(&rgb)).unwrap();
            for y in 0..10 {
                for x in 0..10 {
                    let [r, g, b] = back.get(x, y);
                    prop_assert_eq!(r, v as f32);
                    prop_assert_eq!(g, v as f32);
                    prop_assert_eq!(b, v as f32);
                }
            }
        }

        #[test]
        fn output_within_input_range(pixels in proptest::collection::vec(0u16..1024, 64)) {
            let raw = BayerImage::from_vec(8, 8, pixels.clone()).unwrap();
            let rgb = debayer(&raw).unwrap();
            let max = *pixels.iter().max().unwrap() as f32;
            let min = *pixels.iter().min().unwrap() as f32;
            for p in rgb.pixels() {
                for &c in p {
                    prop_assert!(c >= min && c <= max);
                }
            }
        }
    }
}
