//! The golden software WAMI pipeline.
//!
//! Runs the full Fig. 3 dataflow in software: debayer → grayscale →
//! inverse-compositional Lucas-Kanade registration against the previous
//! frame → warp with the converged parameters → Gaussian-mixture change
//! detection. Accelerated SoC runs in `presp-soc`/`presp-runtime` are
//! validated against this reference.

use crate::change_detection::{changed_pixels, ChangeDetector, GmmConfig};
use crate::debayer::debayer;
use crate::error::Error;
use crate::grayscale::grayscale;
use crate::image::{BayerImage, GrayImage};
use crate::lucas_kanade::{register, LkConfig, Registration};
use crate::warp::warp_image;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineConfig {
    /// Lucas-Kanade solver settings.
    pub lk: LkConfig,
    /// Change-detection mixture settings.
    pub gmm: GmmConfig,
}

/// Per-frame pipeline output.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutput {
    /// Registration against the previous frame (`None` for the first frame).
    pub registration: Option<Registration>,
    /// Number of pixels flagged as changed.
    pub changed_pixels: usize,
    /// Mean luminance of the frame (sanity signal).
    pub luma_mean: f32,
}

/// Stateful software WAMI pipeline.
///
/// # Example
///
/// ```
/// use presp_wami::frames::SceneGenerator;
/// use presp_wami::pipeline::{Pipeline, PipelineConfig};
///
/// let mut scene = SceneGenerator::new(48, 48, 1);
/// let mut pipeline = Pipeline::new(PipelineConfig::default());
/// for _ in 0..3 {
///     let out = pipeline.process(&scene.next_frame())?;
///     assert!(out.luma_mean > 0.0);
/// }
/// # Ok::<(), presp_wami::Error>(())
/// ```
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    previous: Option<GrayImage>,
    detector: Option<ChangeDetector>,
    frames: usize,
}

impl Pipeline {
    /// Creates a pipeline.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline {
            config,
            previous: None,
            detector: None,
            frames: 0,
        }
    }

    /// Frames processed so far.
    pub fn frames_processed(&self) -> usize {
        self.frames
    }

    /// Processes one raw Bayer frame through the full dataflow.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (dimension mismatches, singular Hessians on
    /// featureless frames, diverged registration).
    pub fn process(&mut self, raw: &BayerImage) -> Result<FrameOutput, Error> {
        let rgb = debayer(raw)?;
        let gray = grayscale(&rgb)?;
        let luma_mean = gray.mean();
        let (w, h) = gray.dims();

        let registration = match &self.previous {
            None => None,
            Some(template) => Some(register(template, &gray, &self.config.lk)?),
        };

        // Align the frame onto the template coordinate system before change
        // detection so camera motion does not register as change.
        let aligned = match &registration {
            Some(reg) => warp_image(&gray, &reg.params)?,
            None => gray.clone(),
        };

        let detector = self
            .detector
            .get_or_insert_with(|| ChangeDetector::new(w, h, self.config.gmm));
        let mask = detector.update(&aligned)?;
        let changed = changed_pixels(&mask);

        self.previous = Some(gray);
        self.frames += 1;
        Ok(FrameOutput {
            registration,
            changed_pixels: changed,
            luma_mean,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::SceneGenerator;

    #[test]
    fn first_frame_has_no_registration() {
        let mut scene = SceneGenerator::new(48, 48, 2);
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let out = pipe.process(&scene.next_frame()).unwrap();
        assert!(out.registration.is_none());
        assert_eq!(out.changed_pixels, 0);
        assert_eq!(pipe.frames_processed(), 1);
    }

    #[test]
    fn subsequent_frames_register_platform_motion() {
        let mut scene = SceneGenerator::new(64, 64, 17).without_objects();
        let mut pipe = Pipeline::new(PipelineConfig::default());
        pipe.process(&scene.next_frame()).unwrap();
        let out = pipe.process(&scene.next_frame()).unwrap();
        let reg = out.registration.expect("second frame registers");
        let (dx, dy) = scene.drift();
        // The warp aligning the new frame onto the previous one undoes the
        // platform drift (Bayer mosaic + demosaic add a little blur noise).
        assert!(
            (reg.params.p[4] + dx).abs() < 0.3,
            "dx {} vs {}",
            reg.params.p[4],
            -dx
        );
        assert!(
            (reg.params.p[5] + dy).abs() < 0.3,
            "dy {} vs {}",
            reg.params.p[5],
            -dy
        );
    }

    #[test]
    fn moving_objects_eventually_flag_changes() {
        let mut scene = SceneGenerator::new(64, 64, 23);
        let mut pipe = Pipeline::new(PipelineConfig::default());
        let mut total_changed = 0usize;
        for _ in 0..6 {
            total_changed += pipe.process(&scene.next_frame()).unwrap().changed_pixels;
        }
        // Moving blobs leave + enter pixels every frame; the detector must
        // notice at least some of that after warm-up.
        assert!(total_changed > 0, "no change detected across 6 frames");
    }

    #[test]
    fn change_fraction_is_small() {
        // Registration compensates platform motion, so only the small moving
        // objects (not the whole frame) should be flagged.
        let mut scene = SceneGenerator::new(64, 64, 23);
        let mut pipe = Pipeline::new(PipelineConfig::default());
        for _ in 0..3 {
            pipe.process(&scene.next_frame()).unwrap();
        }
        let out = pipe.process(&scene.next_frame()).unwrap();
        let frac = out.changed_pixels as f64 / (64.0 * 64.0);
        assert!(
            frac < 0.2,
            "changed fraction {frac} too large: registration failed?"
        );
    }
}
