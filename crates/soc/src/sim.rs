//! The SoC simulator: virtual time, DMA, accelerator execution, partial
//! reconfiguration and energy accounting.
//!
//! Timing is explicit: every operation takes a start cycle and returns its
//! completion cycle, with shared resources (NoC links, the DRAM channel,
//! the ICAP, each tile) arbitrated through `presp-events`
//! [`ResourceTimeline`]s. Callers that model concurrent software threads
//! (the runtime manager) issue operations with their own per-thread
//! clocks; the shared reservations produce the same interleaving a
//! cycle-stepped simulation would at this granularity.
//!
//! Attach a trace sink ([`Soc::attach_tracer`]) and every timed operation
//! — DRAM accesses, NoC packets, DMA bursts, decoupler handshakes, ICAP
//! writes, compute intervals, interrupts — emits a typed
//! [`presp_events::TraceRecord`] in the `SocCycles` clock domain.

use crate::config::{SocConfig, TileCoord};
use crate::dfxc::Dfxc;
use crate::energy::{EnergyMeter, EnergyReport};
use crate::error::Error;
use crate::noc::{Noc, Plane, Transfer};
use crate::tile::{TileKind, WrapperState};
use presp_accel::catalog::AcceleratorKind;
use presp_accel::latency::{compute_cycles, software_cycles};
use presp_accel::power::dynamic_power_w;
use presp_accel::{AccelInstance, AccelOp, AccelValue};
use presp_events::trace::ClockDomain;
use presp_events::{
    Loc, Reservation, ResourceTimeline, SharedSink, TimelineEpoch, TraceEvent, Tracer, VirtualClock,
};
use presp_fpga::bitstream::Bitstream;
use presp_fpga::config_memory::RegionSnapshot;
use presp_fpga::ecc::FrameRepair;
use presp_fpga::fault::FaultPlan;
use presp_fpga::frame::FrameAddress;
use presp_fpga::icap::ICAP_CLOCK_MHZ;
use presp_fpga::part::FpgaPart;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// The tile's location as a trace record coordinate.
fn loc(coord: TileCoord) -> Loc {
    Loc::new(coord.row as u64, coord.col as u64)
}

/// DRAM channel bandwidth, bytes per SoC cycle (a 64-bit DDR3 channel is
/// far faster than the 78 MHz NoC; the NoC is the usual bottleneck).
pub const DRAM_BYTES_PER_CYCLE: u64 = 16;
/// Fixed DRAM access latency, cycles.
pub const DRAM_LATENCY: u64 = 24;
/// ICAP throughput conversion: the ICAP runs at 100 MHz with 4-byte words
/// while the SoC runs at 78 MHz, so one ICAP microsecond is 78 SoC cycles.
pub const SOC_CYCLES_PER_MICRO: f64 = 78.0;

/// CSR offsets of a reconfigurable tile (Fig. 2B's configuration
/// registers).
pub mod csr {
    /// Decoupler control: write 1 to decouple, 0 to re-couple.
    pub const DECOUPLE: u64 = 0x00;
    /// Wrapper status: 0 = empty, 1 = configured, 2 = decoupled.
    pub const STATUS: u64 = 0x04;
}

/// Timing and result of one accelerator invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelRun {
    /// Computed value.
    pub value: AccelValue,
    /// Cycle the invocation was accepted by the tile.
    pub start: u64,
    /// Cycle the completion interrupt reached the CPU.
    pub end: u64,
    /// Cycles spent in DMA (input + output).
    pub dma_cycles: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
}

impl AccelRun {
    /// Total latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.start
    }
}

/// Timing of one partial reconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigRun {
    /// Cycle the DFXC accepted the trigger.
    pub start: u64,
    /// Cycle the completion interrupt reached the CPU.
    pub end: u64,
    /// Cycles spent fetching the bitstream from DRAM over the NoC.
    pub fetch_cycles: u64,
    /// Cycles spent streaming through the ICAP.
    pub icap_cycles: u64,
    /// Bitstream size in bytes.
    pub bytes: usize,
}

impl ReconfigRun {
    /// Total reconfiguration latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.start
    }
}

/// Timing of one transactional region move (amorphous floorplanning).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMoveRun {
    /// Cycle the readback actually started on the ICAP.
    pub start: u64,
    /// Cycle the rewrite at the new base completed.
    pub end: u64,
    /// Cycles spent waiting for the shared ICAP port.
    pub waited: u64,
    /// Frames relocated.
    pub frames: usize,
    /// Signed column delta applied to every frame address.
    pub delta: i64,
}

/// One configuration-memory upset applied by the fault plan's SEU stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeuRecord {
    /// Cycle the upset struck.
    pub cycle: u64,
    /// Upset frame.
    pub addr: FrameAddress,
    /// Word index within the frame.
    pub word: usize,
    /// Flipped bit.
    pub bit: u32,
    /// Second flipped bit of a double-bit upset, if any.
    pub second_bit: Option<u32>,
}

/// Timing and outcome of one scrubber readback pass over a set of frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Cycle the readback actually started on the ICAP.
    pub start: u64,
    /// Cycle the pass completed.
    pub end: u64,
    /// Cycles spent waiting for the shared ICAP port.
    pub waited: u64,
    /// Frames repaired, with the number of words corrected in each.
    pub corrected: Vec<(FrameAddress, usize)>,
    /// Frames holding an uncorrectable (double-bit) upset, left untouched.
    pub uncorrectable: Vec<FrameAddress>,
}

impl ScrubReport {
    /// `true` when every frame read back clean.
    pub fn is_clean(&self) -> bool {
        self.corrected.is_empty() && self.uncorrectable.is_empty()
    }
}

/// An interrupt delivered to the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrqEvent {
    /// Source tile.
    pub source: TileCoord,
    /// Delivery cycle.
    pub cycle: u64,
}

/// Per-tile simulation state.
#[derive(Debug)]
struct TileState {
    kind: TileKind,
    wrapper: WrapperState,
    /// Occupancy of the tile's wrapper (accelerator runs, ICAP writes).
    timeline: ResourceTimeline,
    /// Software kernel instances (CPU tile only): keeps per-kernel state
    /// like the change-detection background model across software calls.
    software: HashMap<AcceleratorKind, AccelInstance>,
}

/// The simulated SoC.
///
/// See the crate-level example for basic usage.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    part: FpgaPart,
    noc: Noc,
    dfxc: Dfxc,
    tiles: HashMap<TileCoord, TileState>,
    dram: ResourceTimeline,
    icap: ResourceTimeline,
    clock: VirtualClock,
    tracer: Tracer,
    meter: EnergyMeter,
    irq_log: Vec<IrqEvent>,
    fault_plan: Option<FaultPlan>,
    decoupled_rejections: u64,
    /// Union of every frame each tile's successful loads have written.
    tile_regions: HashMap<TileCoord, BTreeSet<FrameAddress>>,
    /// Per-tile golden (known-good, post-load) frame images.
    golden: HashMap<TileCoord, RegionSnapshot>,
    seu_log: Vec<SeuRecord>,
}

impl Soc {
    /// Builds a SoC for `config` on the paper's VC707 part.
    ///
    /// # Errors
    ///
    /// Returns configuration errors.
    pub fn new(config: &SocConfig) -> Result<Soc, Error> {
        Soc::with_part(config, FpgaPart::Vc707)
    }

    /// Builds a SoC on a specific part.
    ///
    /// # Errors
    ///
    /// Returns configuration errors.
    pub fn with_part(config: &SocConfig, part: FpgaPart) -> Result<Soc, Error> {
        let device = part.device();
        let mut tiles = HashMap::new();
        let mut meter = EnergyMeter::new();
        for (coord, kind) in config.iter() {
            meter.provision(kind.static_resources());
            let wrapper = match kind {
                TileKind::Accel(k) => WrapperState::Configured(AccelInstance::new(k)),
                _ => WrapperState::Empty,
            };
            tiles.insert(
                coord,
                TileState {
                    kind,
                    wrapper,
                    timeline: ResourceTimeline::new(),
                    software: HashMap::new(),
                },
            );
        }
        Ok(Soc {
            config: config.clone(),
            part,
            noc: Noc::new(),
            dfxc: Dfxc::new(&device),
            tiles,
            dram: ResourceTimeline::new(),
            icap: ResourceTimeline::new(),
            clock: VirtualClock::new(),
            tracer: Tracer::disabled(),
            meter,
            irq_log: Vec::new(),
            fault_plan: None,
            decoupled_rejections: 0,
            tile_regions: HashMap::new(),
            golden: HashMap::new(),
            seu_log: Vec::new(),
        })
    }

    /// The SoC configuration.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The FPGA part the SoC is implemented on.
    pub fn part(&self) -> FpgaPart {
        self.part
    }

    /// Current convenience clock (used by the `_at`-less wrappers).
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Latest completion cycle observed on any resource.
    pub fn horizon(&self) -> u64 {
        self.clock.horizon()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Attaches a trace sink: every subsequent timed operation emits a
    /// structured record. Tracing is disabled (and free) by default.
    pub fn attach_tracer(&mut self, sink: SharedSink) {
        self.tracer.attach(sink);
    }

    /// Detaches the trace sink, if any, disabling tracing.
    pub fn detach_tracer(&mut self) -> Option<SharedSink> {
        self.tracer.detach()
    }

    /// The SoC's tracer. Runtime layers driving this SoC emit their own
    /// records (retries, quarantine transitions) through the same handle
    /// so one sink sees the whole story in order.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Cycles requests spent waiting for the DRAM channel.
    pub fn dram_contention_cycles(&self) -> u64 {
        self.dram.contention_cycles()
    }

    /// Cycles reconfigurations spent waiting for the shared ICAP
    /// (including fault-injected DFXC stalls).
    pub fn icap_contention_cycles(&self) -> u64 {
        self.icap.contention_cycles()
    }

    /// Cycles packets spent waiting for busy NoC links, all planes.
    pub fn noc_contention_cycles(&self) -> u64 {
        self.noc.contention_cycles()
    }

    /// All tiles currently able to execute accelerator operations (static
    /// accelerator tiles and configured reconfigurable tiles).
    pub fn accelerator_tiles(&self) -> Vec<TileCoord> {
        let mut coords: Vec<TileCoord> = self
            .tiles
            .iter()
            .filter(|(_, t)| {
                matches!(t.kind, TileKind::Accel(_)) || t.wrapper.configured_kind().is_some()
            })
            .map(|(c, _)| *c)
            .collect();
        coords.sort_unstable();
        coords
    }

    /// Interrupts delivered so far.
    pub fn irq_log(&self) -> &[IrqEvent] {
        &self.irq_log
    }

    /// The DFX controller (for status inspection).
    pub fn dfxc(&self) -> &Dfxc {
        &self.dfxc
    }

    /// Installs a fault-injection plan; `None` disables injection.
    ///
    /// The plan's hooks fire inside [`Soc::csr_write_at`] (decoupler ack
    /// delay) and [`Soc::reconfigure_at`] (DFXC BUSY stall, bitstream
    /// corruption caught by the ICAP's CRC check).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Mutable access to the installed fault plan (runtime layers consult
    /// their own hooks, e.g. registry staleness, through this).
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.fault_plan.as_mut()
    }

    /// Upsets injected into configuration memory so far, in arrival order.
    pub fn seu_log(&self) -> &[SeuRecord] {
        &self.seu_log
    }

    /// Frame addresses of `tile`'s reconfigurable region: the union of
    /// every frame its successful loads have written. Empty before the
    /// first load.
    pub fn tile_region(&self, tile: TileCoord) -> Vec<FrameAddress> {
        self.tile_regions
            .get(&tile)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The tile's golden (post-load, known-good) frame image, if any load
    /// has succeeded.
    pub fn golden_snapshot(&self, tile: TileCoord) -> Option<&RegionSnapshot> {
        self.golden.get(&tile)
    }

    /// Restores `tile`'s region bit-for-bit from its golden store,
    /// clearing any upsets — correctable or not. Returns the number of
    /// frames rewritten.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTile`] when the tile has never been
    /// successfully loaded (no golden image exists).
    pub fn restore_golden(&mut self, tile: TileCoord) -> Result<usize, Error> {
        let snap = self
            .golden
            .get(&tile)
            .cloned()
            .ok_or(Error::NoSuchTile { coord: tile })?;
        self.dfxc
            .config_memory_mut()
            .restore(&snap)
            .map_err(Error::Fpga)?;
        Ok(snap.len())
    }

    /// Transactionally relocates `tile`'s whole region `col_delta` columns
    /// away: every frame (payload *and* ECC check codes, bit-exact) is
    /// re-addressed, the old frames are erased, and the tile's region
    /// bookkeeping and golden store move in lockstep. The wrapper state —
    /// including the configured accelerator — is untouched: the logic
    /// simply lives at a new base.
    ///
    /// The move is a readback-plus-rewrite through the shared ICAP, so it
    /// occupies the port for two passes over the region and competes with
    /// concurrent reconfigurations and scrub traffic. The tile must be
    /// decoupled (the same quiesce rule as [`Soc::reconfigure_at`]).
    ///
    /// All validation happens before the first frame is touched, so a
    /// refused move leaves the fabric bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTile`] / [`Error::WrongTileKind`] /
    /// [`Error::DecouplerProtocol`] for protocol violations,
    /// [`Error::RegionConflict`] when the tile has no region or the
    /// destination overlaps another tile's frames, and
    /// [`Error::Fpga`] when the shifted addresses are illegal.
    pub fn move_tile_region_at(
        &mut self,
        tile: TileCoord,
        col_delta: i64,
        at: u64,
    ) -> Result<RegionMoveRun, Error> {
        self.advance_seus_to(at);
        {
            let state = self
                .tiles
                .get(&tile)
                .ok_or(Error::NoSuchTile { coord: tile })?;
            if !matches!(state.kind, TileKind::Reconfigurable) {
                return Err(Error::WrongTileKind {
                    coord: tile,
                    expected: "reconfigurable",
                });
            }
            if !state.wrapper.is_decoupled() {
                return Err(Error::DecouplerProtocol {
                    coord: tile,
                    detail: "region move while coupled to the NoC".into(),
                });
            }
        }
        let old_region = self.tile_regions.get(&tile).cloned().unwrap_or_default();
        if old_region.is_empty() {
            return Err(Error::RegionConflict {
                coord: tile,
                detail: "tile has no region to move (never loaded)".into(),
            });
        }
        if col_delta == 0 {
            let run = RegionMoveRun {
                start: at,
                end: at,
                waited: 0,
                frames: old_region.len(),
                delta: 0,
            };
            return Ok(run);
        }
        let device = self.part.device();
        // Snapshot the source region bit-exact and pre-validate the whole
        // destination before mutating anything.
        let snap = self
            .dfxc
            .config_memory()
            .snapshot(old_region.iter())
            .map_err(Error::Fpga)?;
        let shifted = snap
            .shift_columns(&device, col_delta)
            .map_err(Error::Fpga)?;
        let new_region: BTreeSet<FrameAddress> = shifted.addresses().into_iter().collect();
        for (other, region) in &self.tile_regions {
            if *other == tile {
                continue;
            }
            if let Some(hit) = new_region.intersection(region).next() {
                return Err(Error::RegionConflict {
                    coord: tile,
                    detail: format!("destination frame {hit:?} belongs to tile {other}"),
                });
            }
        }
        // Physically move: erase the source, restore the snapshot at the
        // destination. Erase-first makes overlapping slides (|delta| <
        // region width) safe, and restore preserves any payload/ECC
        // disagreement instead of laundering an in-flight upset.
        self.dfxc
            .config_memory_mut()
            .clear_frames(old_region.iter())
            .map_err(Error::Fpga)?;
        self.dfxc
            .config_memory_mut()
            .restore(&shifted)
            .map_err(Error::Fpga)?;
        // ICAP cost: readback of the region plus rewrite at the new base.
        let words = 2 * old_region.len() as u64 * self.dfxc.config_memory().frame_words() as u64;
        let cycles = (words as f64 / ICAP_CLOCK_MHZ * SOC_CYCLES_PER_MICRO).ceil() as u64;
        let r = self.icap.reserve(at, cycles);
        let state = self.tile_mut(tile)?;
        state.timeline.claim(at, r.start, r.end);
        // Region bookkeeping and the golden store move with the frames.
        let frames = old_region.len();
        self.tile_regions.insert(tile, new_region);
        if let Some(golden) = self.golden.remove(&tile) {
            let moved = golden
                .shift_columns(&device, col_delta)
                .map_err(Error::Fpga)?;
            self.golden.insert(tile, moved);
        }
        self.tracer
            .emit(ClockDomain::SocCycles, r.start, r.duration(), || {
                TraceEvent::RegionMoved {
                    tile: loc(tile),
                    frames: frames as u64,
                    delta: col_delta,
                }
            });
        self.clock.observe(r.end);
        Ok(RegionMoveRun {
            start: r.start,
            end: r.end,
            waited: r.waited,
            frames,
            delta: col_delta,
        })
    }

    /// Erases `tile`'s whole region and retires its bookkeeping: the
    /// frames are cleared through the ICAP, the region set and the golden
    /// store are dropped, and the fabric columns the tile occupied become
    /// writable by other tiles again. This is the vacate half of a lease
    /// switch in amorphous floorplanning — a tile about to be loaded at a
    /// different base must first return its old span to the free pool,
    /// because [`Soc::reconfigure_at`] unions every written frame into the
    /// tile's region and stale frames would otherwise stay configured
    /// (scrubbed, move-blocking, golden-snapshotted) forever.
    ///
    /// The tile must be decoupled, exactly like a reconfiguration or a
    /// region move. A tile with no region is a no-op returning zero
    /// frames. The erase streams blank frames through the shared ICAP
    /// (one pass over the region) and claims the tile's timeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTile`] / [`Error::WrongTileKind`] for bad
    /// coordinates, [`Error::DecouplerProtocol`] when the tile is still
    /// coupled, and [`Error::Fpga`] when the erase itself fails.
    pub fn release_tile_region(&mut self, tile: TileCoord, at: u64) -> Result<usize, Error> {
        self.advance_seus_to(at);
        {
            let state = self
                .tiles
                .get(&tile)
                .ok_or(Error::NoSuchTile { coord: tile })?;
            if !matches!(state.kind, TileKind::Reconfigurable) {
                return Err(Error::WrongTileKind {
                    coord: tile,
                    expected: "reconfigurable",
                });
            }
            if !state.wrapper.is_decoupled() {
                return Err(Error::DecouplerProtocol {
                    coord: tile,
                    detail: "region release while coupled to the NoC".into(),
                });
            }
        }
        let Some(region) = self.tile_regions.remove(&tile) else {
            return Ok(0);
        };
        self.golden.remove(&tile);
        self.dfxc
            .config_memory_mut()
            .clear_frames(region.iter())
            .map_err(Error::Fpga)?;
        let frames = region.len();
        let words = frames as u64 * self.dfxc.config_memory().frame_words() as u64;
        let cycles = (words as f64 / ICAP_CLOCK_MHZ * SOC_CYCLES_PER_MICRO).ceil() as u64;
        let r = self.icap.reserve(at, cycles);
        let state = self.tile_mut(tile)?;
        state.timeline.claim(at, r.start, r.end);
        self.tracer
            .emit(ClockDomain::SocCycles, r.start, r.duration(), || {
                TraceEvent::RegionReleased {
                    tile: loc(tile),
                    frames: frames as u64,
                }
            });
        self.clock.observe(r.end);
        Ok(frames)
    }

    /// Drains the fault plan's SEU stream up to `cycle`, flipping bits in
    /// configuration memory. Upsets strike configured frames (the active
    /// pblocks); with nothing configured there is no state to upset and
    /// the arrival is dropped.
    fn advance_seus_to(&mut self, cycle: u64) {
        let Some(plan) = self.fault_plan.as_mut() else {
            return;
        };
        let upsets = plan.next_seu_upsets(cycle);
        if upsets.is_empty() {
            return;
        }
        let frame_words = self.dfxc.config_memory().frame_words() as u64;
        for upset in upsets {
            let configured = self.dfxc.config_memory().configured_addresses();
            if configured.is_empty() {
                continue;
            }
            let addr = configured[(upset.frame_select % configured.len() as u64) as usize];
            let word = (upset.word_select % frame_words) as usize;
            self.dfxc
                .config_memory_mut()
                .corrupt_bit(addr, word, upset.bit)
                .expect("configured address with bounded word/bit is valid");
            let second_bit = if upset.double_bit {
                self.dfxc
                    .config_memory_mut()
                    .corrupt_bit(addr, word, upset.second_bit)
                    .expect("configured address with bounded word/bit is valid");
                Some(upset.second_bit)
            } else {
                None
            };
            self.seu_log.push(SeuRecord {
                cycle: upset.cycle,
                addr,
                word,
                bit: upset.bit,
                second_bit,
            });
            self.tracer
                .instant(ClockDomain::SocCycles, upset.cycle, || {
                    TraceEvent::SeuInjected {
                        frame: u64::from(addr.pack()),
                        word: word as u64,
                        bit: u64::from(upset.bit),
                        double_bit: upset.double_bit,
                    }
                });
        }
    }

    /// Reads back `addrs` through the ICAP and repairs what SECDED can.
    ///
    /// Readback streams at the ICAP word rate and competes for the shared
    /// ICAP port, so scrub traffic visibly delays (and is delayed by)
    /// concurrent reconfigurations. Correctable upsets are repaired in
    /// place; uncorrectable frames are reported untouched so the caller
    /// can fall back to a golden restore.
    ///
    /// # Errors
    ///
    /// Returns frame-address errors from the underlying memory.
    pub fn scrub_frames_at(
        &mut self,
        addrs: &[FrameAddress],
        at: u64,
    ) -> Result<ScrubReport, Error> {
        self.advance_seus_to(at);
        let words = addrs.len() as u64 * self.dfxc.config_memory().frame_words() as u64;
        let cycles = (words as f64 / ICAP_CLOCK_MHZ * SOC_CYCLES_PER_MICRO).ceil() as u64;
        let r = self.icap.reserve(at, cycles);
        let mut corrected = Vec::new();
        let mut uncorrectable = Vec::new();
        for &addr in addrs {
            match self
                .dfxc
                .config_memory_mut()
                .scrub_frame(addr)
                .map_err(Error::Fpga)?
            {
                FrameRepair::Clean => {}
                FrameRepair::Corrected { words } => {
                    let repaired = words.len();
                    corrected.push((addr, repaired));
                    self.tracer.instant(ClockDomain::SocCycles, r.end, || {
                        TraceEvent::FrameRepaired {
                            frame: u64::from(addr.pack()),
                            words: repaired as u64,
                        }
                    });
                }
                FrameRepair::Uncorrectable { .. } => uncorrectable.push(addr),
            }
        }
        self.tracer
            .emit(ClockDomain::SocCycles, r.start, r.duration(), || {
                TraceEvent::ScrubPass {
                    frames: addrs.len() as u64,
                    corrected: corrected.len() as u64,
                    uncorrectable: uncorrectable.len() as u64,
                    waited: r.waited,
                }
            });
        self.clock.observe(r.end);
        Ok(ScrubReport {
            start: r.start,
            end: r.end,
            waited: r.waited,
            corrected,
            uncorrectable,
        })
    }

    /// Total NoC transfers injected so far (all planes).
    pub fn noc_transfers(&self) -> u64 {
        self.noc.transfer_count()
    }

    /// Operations rejected because they targeted a decoupled tile. Each
    /// rejection happened *before* any DMA was issued — decoupled tiles
    /// never observe NoC traffic.
    pub fn decoupled_rejections(&self) -> u64 {
        self.decoupled_rejections
    }

    /// Registers additional provisioned fabric (the floorplanned
    /// reconfigurable regions) with the energy meter.
    pub fn provision_region(&mut self, resources: Resources) {
        self.meter.provision(resources);
    }

    /// The accelerator kind configured in a reconfigurable tile, if any.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTile`] for unknown coordinates.
    pub fn configured_kind(&self, tile: TileCoord) -> Result<Option<AcceleratorKind>, Error> {
        let state = self
            .tiles
            .get(&tile)
            .ok_or(Error::NoSuchTile { coord: tile })?;
        Ok(match &state.kind {
            TileKind::Accel(k) => Some(*k),
            _ => state.wrapper.configured_kind(),
        })
    }

    fn tile_mut(&mut self, coord: TileCoord) -> Result<&mut TileState, Error> {
        self.tiles
            .get_mut(&coord)
            .ok_or(Error::NoSuchTile { coord })
    }

    /// One DRAM access of `bytes`, no earlier than `at`.
    fn dram_access(&mut self, at: u64, bytes: u64) -> Reservation {
        let mut epoch = self.dram.epoch();
        let r = Self::dram_access_on(&mut self.tracer, &mut epoch, at, bytes);
        self.dram.commit(epoch);
        r
    }

    /// One DRAM access against a detached channel epoch — callers that
    /// touch DRAM several times in one operation reserve through one
    /// epoch and commit the channel timeline once.
    fn dram_access_on(
        tracer: &mut Tracer,
        dram: &mut TimelineEpoch,
        at: u64,
        bytes: u64,
    ) -> Reservation {
        let r = dram.reserve(at, DRAM_LATENCY + bytes.div_ceil(DRAM_BYTES_PER_CYCLE));
        tracer.emit(ClockDomain::SocCycles, r.start, r.duration(), || {
            TraceEvent::DramAccess {
                bytes,
                waited: r.waited,
            }
        });
        r
    }

    /// One NoC packet, no earlier than `at`, with trace emission.
    fn noc_transfer(
        &mut self,
        at: u64,
        src: TileCoord,
        dst: TileCoord,
        bytes: u64,
        plane: Plane,
    ) -> Transfer {
        let t = self.noc.transfer(at, src, dst, bytes, plane);
        self.tracer
            .emit(ClockDomain::SocCycles, t.start, t.latency(), || {
                TraceEvent::NocTransfer {
                    plane: plane.name(),
                    src: loc(src),
                    dst: loc(dst),
                    bytes,
                    flits: t.flits,
                    hops: t.hops as u64,
                    waited: t.waited,
                }
            });
        t
    }

    /// Delivers an interrupt from `source` to the CPU tile.
    fn deliver_irq(&mut self, at: u64, source: TileCoord) -> u64 {
        let cpu = self.config.cpu();
        let t = self.noc_transfer(at, source, cpu, 8, Plane::Irq);
        self.irq_log.push(IrqEvent {
            source,
            cycle: t.end,
        });
        self.tracer
            .instant(ClockDomain::SocCycles, t.end, || TraceEvent::Irq {
                source: loc(source),
            });
        t.end
    }

    /// Writes a reconfigurable-tile CSR (models the CPU's APB-over-NoC
    /// register write, so it costs NoC time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadRegister`] for unknown offsets and tile errors
    /// for bad coordinates / kinds.
    pub fn csr_write_at(
        &mut self,
        tile: TileCoord,
        offset: u64,
        value: u64,
        at: u64,
    ) -> Result<u64, Error> {
        let cpu = self.config.cpu();
        let t = self.noc_transfer(at, cpu, tile, 8, Plane::RegAccess);
        let state = self.tile_mut(tile)?;
        if !matches!(state.kind, TileKind::Reconfigurable) {
            return Err(Error::WrongTileKind {
                coord: tile,
                expected: "reconfigurable",
            });
        }
        match offset {
            csr::DECOUPLE => {
                if value == 1 {
                    if t.end < state.timeline.free_at() {
                        return Err(Error::DecouplerProtocol {
                            coord: tile,
                            detail: "decouple while the accelerator is executing".into(),
                        });
                    }
                    let previous = state.wrapper.configured_kind();
                    state.wrapper = WrapperState::Decoupled { previous };
                } else {
                    // Re-coupling resets the NoC queues; only meaningful
                    // after a reconfiguration installed a new wrapper, but
                    // harmless otherwise.
                    if let WrapperState::Decoupled { previous } = &state.wrapper {
                        state.wrapper = match previous {
                            Some(kind) => WrapperState::Configured(AccelInstance::new(*kind)),
                            None => WrapperState::Empty,
                        };
                    }
                }
            }
            _ => return Err(Error::BadRegister { offset }),
        }
        // Fault hook: the decoupler may acknowledge late (e.g. draining
        // in-flight NoC transactions); the CSR write still takes effect,
        // only its completion is pushed out.
        let delay = self
            .fault_plan
            .as_mut()
            .map_or(0, FaultPlan::next_decoupler_delay);
        let end = t.end + delay;
        self.tracer.emit(ClockDomain::SocCycles, t.end, delay, || {
            TraceEvent::DecouplerHandshake {
                tile: loc(tile),
                decouple: value == 1,
                delay,
            }
        });
        self.clock.observe(end);
        Ok(end)
    }

    /// Reads a reconfigurable-tile CSR.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadRegister`] for unknown offsets and tile errors
    /// for bad coordinates / kinds.
    pub fn csr_read(&self, tile: TileCoord, offset: u64) -> Result<u64, Error> {
        let state = self
            .tiles
            .get(&tile)
            .ok_or(Error::NoSuchTile { coord: tile })?;
        if !matches!(state.kind, TileKind::Reconfigurable) {
            return Err(Error::WrongTileKind {
                coord: tile,
                expected: "reconfigurable",
            });
        }
        match offset {
            csr::DECOUPLE => Ok(u64::from(state.wrapper.is_decoupled())),
            csr::STATUS => Ok(match &state.wrapper {
                WrapperState::Empty => 0,
                WrapperState::Configured(_) => 1,
                WrapperState::Decoupled { .. } => 2,
            }),
            _ => Err(Error::BadRegister { offset }),
        }
    }

    /// Partially reconfigures `tile` with `kind`, streaming `bitstream`
    /// through the DFXC + ICAP, starting no earlier than `at`.
    ///
    /// Protocol (Section III): the tile must be decoupled first; after the
    /// DFXC interrupt the caller re-couples via [`csr::DECOUPLE`]. The new
    /// wrapper starts with fresh accelerator state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DecouplerProtocol`] when the tile is not decoupled,
    /// plus bitstream/ICAP errors.
    pub fn reconfigure_at(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        bitstream: &Bitstream,
        at: u64,
    ) -> Result<ReconfigRun, Error> {
        self.advance_seus_to(at);
        let aux = self.config.aux();
        let mem = self.config.mem();
        {
            let state = self
                .tiles
                .get(&tile)
                .ok_or(Error::NoSuchTile { coord: tile })?;
            if !matches!(state.kind, TileKind::Reconfigurable) {
                return Err(Error::WrongTileKind {
                    coord: tile,
                    expected: "reconfigurable",
                });
            }
            if !state.wrapper.is_decoupled() {
                return Err(Error::DecouplerProtocol {
                    coord: tile,
                    detail: "reconfigure while coupled to the NoC".into(),
                });
            }
        }
        let bytes = bitstream.size_bytes() as u64;
        let words = bitstream.words().len() as u64;
        // DFXC fetches the bitstream from DRAM over the DFX plane.
        let dram_done = self.dram_access(at, bytes).end;
        let fetch = self.noc_transfer(dram_done, mem, aux, bytes, Plane::Dfx);
        // Fault hook: the DFXC may report BUSY for a while before
        // accepting the trigger.
        let stall = self
            .fault_plan
            .as_mut()
            .map_or(0, FaultPlan::next_dfxc_stall);
        // Stream through the (shared) ICAP.
        let icap_start = fetch.end.max(self.icap.free_at()) + stall;
        // Fault hook: one word of the stream may arrive corrupted; the
        // flip goes through the real ICAP machinery, whose CRC check
        // detects it and fails the load with the fabric partially written.
        let fault = {
            let words = bitstream.words().len();
            self.fault_plan
                .as_mut()
                .and_then(|p| p.next_icap_fault(words))
        };
        // Transactional write: capture the pre-transaction image so a
        // stream that faults mid-write can roll the fabric back instead of
        // leaving it partially configured.
        let pre_image = self.dfxc.config_memory().clone();
        let loaded = match fault {
            Some(flip) => {
                let corrupted = bitstream.with_words(flip.corrupt(bitstream.words()));
                self.dfxc.load(&corrupted)
            }
            None => self.dfxc.load(bitstream),
        };
        let report = match loaded {
            Ok(report) => report,
            Err(e) => {
                // A failed stream still occupied the ICAP for its full
                // length, and virtual time advances past the attempt.
                let wasted = (bitstream.words().len() as f64 / ICAP_CLOCK_MHZ
                    * SOC_CYCLES_PER_MICRO)
                    .ceil() as u64;
                let r = self.icap.claim(fetch.end, icap_start, icap_start + wasted);
                self.tracer
                    .emit(ClockDomain::SocCycles, r.start, r.duration(), || {
                        TraceEvent::IcapWrite {
                            tile: loc(tile),
                            words,
                            ok: false,
                            waited: r.waited,
                        }
                    });
                self.tracer
                    .emit(ClockDomain::SocCycles, at, r.end - at, || {
                        TraceEvent::Reconfiguration {
                            tile: loc(tile),
                            kind: kind.name(),
                            bytes,
                            ok: false,
                        }
                    });
                // Roll the configuration memory back to the
                // pre-transaction image: the failed stream's partial
                // writes never become visible fabric state.
                let dirty = pre_image.diff(self.dfxc.config_memory()).len() as u64;
                *self.dfxc.config_memory_mut() = pre_image;
                self.tracer.instant(ClockDomain::SocCycles, r.end, || {
                    TraceEvent::RollbackCompleted {
                        tile: loc(tile),
                        frames: dirty,
                    }
                });
                self.clock.observe(r.end);
                return Err(e);
            }
        };
        let icap_cycles = (report.micros * SOC_CYCLES_PER_MICRO).ceil() as u64;
        let icap_done = icap_start + icap_cycles;
        let icap_r = self.icap.claim(fetch.end, icap_start, icap_done);
        self.tracer
            .emit(ClockDomain::SocCycles, icap_start, icap_cycles, || {
                TraceEvent::IcapWrite {
                    tile: loc(tile),
                    words,
                    ok: true,
                    waited: icap_r.waited,
                }
            });
        self.meter.add_reconfiguration(report.micros);
        // Install the new wrapper (still decoupled until software
        // re-couples it). The tile is occupied while its fabric is
        // written.
        let state = self.tile_mut(tile)?;
        state.wrapper = WrapperState::Decoupled {
            previous: Some(kind),
        };
        state.timeline.claim(at, icap_start, icap_done);
        // Region bookkeeping: the union of frames this tile's loads have
        // written defines its region, and the post-load image becomes its
        // golden (known-good) store for scrubber escalation and rollback.
        let written: Vec<FrameAddress> = self.dfxc.last_written().to_vec();
        self.tile_regions.entry(tile).or_default().extend(written);
        let snap = self
            .dfxc
            .config_memory()
            .snapshot(self.tile_regions[&tile].iter())
            .expect("region addresses were validated when written");
        self.golden.insert(tile, snap);
        let end = self.deliver_irq(icap_done, aux);
        self.tracer.emit(ClockDomain::SocCycles, at, end - at, || {
            TraceEvent::Reconfiguration {
                tile: loc(tile),
                kind: kind.name(),
                bytes,
                ok: true,
            }
        });
        self.clock.observe(end);
        Ok(ReconfigRun {
            start: at,
            end,
            fetch_cycles: fetch.end - at,
            icap_cycles,
            bytes: bytes as usize,
        })
    }

    /// Runs `op` on the accelerator in `tile`, starting no earlier than
    /// `at`: DMA in from memory, compute, DMA out, completion interrupt.
    ///
    /// # Errors
    ///
    /// Returns tile/kind/protocol errors and accelerator execution errors.
    pub fn run_accelerator_at(
        &mut self,
        tile: TileCoord,
        op: &AccelOp,
        at: u64,
    ) -> Result<AccelRun, Error> {
        self.run_accelerator_inner(tile, op, at, None)
    }

    /// [`Soc::run_accelerator_at`] with the behavioral result computed
    /// ahead of time.
    ///
    /// Accelerator instances are stateless between invocations, so the
    /// value an operation produces is a pure function of the operation
    /// itself. A caller that executed the behavioral model outside the
    /// device lock passes the outcome here; the SoC performs the exact
    /// same protocol (decoupler check, DMA timing, power metering, trace
    /// emission, timeline claim) and substitutes `precomputed` where it
    /// would have invoked the wrapper's model. The trace and every cycle
    /// count are byte-identical to the unprepared path.
    ///
    /// # Errors
    ///
    /// See [`Soc::run_accelerator_at`]; a precomputed `Err` surfaces at
    /// the same protocol point as an in-place execution failure.
    pub fn run_accelerator_prepared_at(
        &mut self,
        tile: TileCoord,
        op: &AccelOp,
        at: u64,
        precomputed: Result<AccelValue, presp_accel::Error>,
    ) -> Result<AccelRun, Error> {
        self.run_accelerator_inner(tile, op, at, Some(precomputed))
    }

    fn run_accelerator_inner(
        &mut self,
        tile: TileCoord,
        op: &AccelOp,
        at: u64,
        precomputed: Option<Result<AccelValue, presp_accel::Error>>,
    ) -> Result<AccelRun, Error> {
        self.advance_seus_to(at);
        let mem = self.config.mem();
        let state = self
            .tiles
            .get(&tile)
            .ok_or(Error::NoSuchTile { coord: tile })?;
        let kind = match (&state.kind, &state.wrapper) {
            (TileKind::Accel(k), _) => *k,
            (TileKind::Reconfigurable, WrapperState::Configured(instance)) => instance.kind(),
            (TileKind::Reconfigurable, WrapperState::Decoupled { .. }) => {
                // Rejected here, before any DMA is issued: decoupled tiles
                // never observe NoC traffic.
                self.decoupled_rejections += 1;
                return Err(Error::DecouplerProtocol {
                    coord: tile,
                    detail: "accelerator start while decoupled".into(),
                });
            }
            (TileKind::Reconfigurable, WrapperState::Empty) => {
                return Err(Error::TileEmpty { coord: tile })
            }
            _ => {
                return Err(Error::WrongTileKind {
                    coord: tile,
                    expected: "accelerator",
                })
            }
        };
        if !op.runs_on(kind) {
            return Err(Error::Accel(presp_accel::Error::WrongOperation {
                accelerator: kind.name(),
                operation: "mismatched operation".into(),
            }));
        }

        let start = at.max(state.timeline.free_at());
        // Input DMA: DRAM read then NoC mem → tile. Both DRAM touches of
        // this run reserve through one channel epoch, committed once.
        let mut dram = self.dram.epoch();
        let dram_in =
            Self::dram_access_on(&mut self.tracer, &mut dram, start, op.input_bytes()).end;
        let t_in = self.noc_transfer(dram_in, mem, tile, op.input_bytes(), Plane::Dma);
        self.tracer
            .emit(ClockDomain::SocCycles, start, t_in.end - start, || {
                TraceEvent::DmaBurst {
                    tile: loc(tile),
                    bytes: op.input_bytes(),
                    direction: "in",
                }
            });
        // Compute.
        let cycles = compute_cycles(kind, op);
        let compute_done = t_in.end + cycles;
        self.meter.add_active(dynamic_power_w(kind), cycles);
        self.tracer
            .emit(ClockDomain::SocCycles, t_in.end, cycles, || {
                TraceEvent::Compute {
                    tile: loc(tile),
                    kind: kind.name(),
                    cycles,
                }
            });
        // Output DMA: NoC tile → mem then DRAM write.
        let t_out = self.noc_transfer(compute_done, tile, mem, op.output_bytes(), Plane::Dma);
        let dram_out =
            Self::dram_access_on(&mut self.tracer, &mut dram, t_out.end, op.output_bytes()).end;
        self.dram.commit(dram);
        self.tracer.emit(
            ClockDomain::SocCycles,
            compute_done,
            dram_out - compute_done,
            || TraceEvent::DmaBurst {
                tile: loc(tile),
                bytes: op.output_bytes(),
                direction: "out",
            },
        );
        // Execute the behavioral model (or substitute the precomputed
        // result at the same protocol point).
        let value = match precomputed {
            Some(outcome) => outcome?,
            None => match &mut self.tile_mut(tile)?.wrapper {
                WrapperState::Configured(instance) => instance.execute(op)?,
                _ => unreachable!("kind resolution guaranteed a configured wrapper"),
            },
        };
        let end = self.deliver_irq(dram_out, tile);
        self.tile_mut(tile)?.timeline.claim(at, start, end);
        // Every completion of this run folds into the clock in one batch
        // (the IRQ delivery is the latest today, but the batch does not
        // depend on that ordering).
        self.clock
            .advance_batch([t_in.end, compute_done, dram_out, end]);
        Ok(AccelRun {
            value,
            start,
            end,
            dma_cycles: (t_in.end - dram_in) + (t_out.end - compute_done),
            compute_cycles: cycles,
        })
    }

    /// Runs `op` in software on the CPU tile (the fallback path for WAMI
    /// kernels not allocated to any reconfigurable tile).
    ///
    /// # Errors
    ///
    /// Returns accelerator execution errors.
    pub fn run_on_cpu_at(&mut self, op: &AccelOp, at: u64) -> Result<AccelRun, Error> {
        self.run_on_cpu_inner(op, at, None)
    }

    /// [`Soc::run_on_cpu_at`] with the behavioral result computed ahead of
    /// time — the CPU-path counterpart of
    /// [`Soc::run_accelerator_prepared_at`].
    ///
    /// # Errors
    ///
    /// See [`Soc::run_on_cpu_at`].
    pub fn run_on_cpu_prepared_at(
        &mut self,
        op: &AccelOp,
        at: u64,
        precomputed: Result<AccelValue, presp_accel::Error>,
    ) -> Result<AccelRun, Error> {
        self.run_on_cpu_inner(op, at, Some(precomputed))
    }

    fn run_on_cpu_inner(
        &mut self,
        op: &AccelOp,
        at: u64,
        precomputed: Option<Result<AccelValue, presp_accel::Error>>,
    ) -> Result<AccelRun, Error> {
        let cpu = self.config.cpu();
        let cycles = software_cycles(op);
        let state = self.tile_mut(cpu)?;
        let r = state.timeline.reserve(at, cycles);
        let (start, end) = (r.start, r.end);
        let instance = state
            .software
            .entry(op.kind())
            .or_insert_with(|| AccelInstance::new(op.kind()));
        let value = match precomputed {
            Some(outcome) => outcome?,
            None => instance.execute(op)?,
        };
        self.meter
            .add_active(dynamic_power_w(AcceleratorKind::Cpu), cycles);
        self.tracer.emit(ClockDomain::SocCycles, start, cycles, || {
            TraceEvent::CpuCompute {
                kind: op.kind().name(),
                cycles,
            }
        });
        self.clock.observe(end);
        Ok(AccelRun {
            value,
            start,
            end,
            dma_cycles: 0,
            compute_cycles: cycles,
        })
    }

    /// Convenience wrapper: runs at the SoC's own clock and advances it.
    ///
    /// # Errors
    ///
    /// See [`Soc::run_accelerator_at`].
    pub fn run_accelerator(&mut self, tile: TileCoord, op: &AccelOp) -> Result<AccelRun, Error> {
        let at = self.clock.now();
        self.run_accelerator_at(tile, op, at)
    }

    /// Finalizes energy accounting over the whole simulated interval.
    pub fn energy_report(&self) -> EnergyReport {
        self.meter.report(self.clock.horizon())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_wami::graph::WamiKernel;

    fn mac_soc() -> Soc {
        let cfg = SocConfig::grid_2x2_single(AcceleratorKind::Mac).unwrap();
        Soc::new(&cfg).unwrap()
    }

    fn reconf_soc(n: usize) -> Soc {
        let cfg = SocConfig::grid_3x3_reconf("test", n).unwrap();
        Soc::new(&cfg).unwrap()
    }

    fn mac_bitstream(soc: &Soc, column: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        for minor in 0..4 {
            b.add_frame(
                FrameAddress::new(0, column, minor),
                vec![0x5A5A_0000 + minor; words],
            )
            .unwrap();
        }
        b.build(true)
    }

    #[test]
    fn static_accelerator_computes_and_interrupts() {
        let mut soc = mac_soc();
        let tile = soc.accelerator_tiles()[0];
        let run = soc
            .run_accelerator(
                tile,
                &AccelOp::Mac {
                    a: vec![1.0; 64],
                    b: vec![2.0; 64],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(128.0));
        assert!(run.end > run.start);
        assert!(run.dma_cycles > 0 && run.compute_cycles > 0);
        assert_eq!(soc.irq_log().len(), 1);
        assert_eq!(soc.irq_log()[0].source, tile);
    }

    #[test]
    fn empty_reconfigurable_tile_rejects_work() {
        let mut soc = reconf_soc(2);
        let tile = soc.config().reconfigurable_tiles()[0];
        let err = soc.run_accelerator(tile, &AccelOp::Sort { data: vec![1.0] });
        assert!(matches!(err, Err(Error::TileEmpty { .. })));
    }

    #[test]
    fn reconfiguration_requires_decoupling() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let bs = mac_bitstream(&soc, 2);
        let err = soc.reconfigure_at(tile, AcceleratorKind::Mac, &bs, 0);
        assert!(matches!(err, Err(Error::DecouplerProtocol { .. })));
    }

    #[test]
    fn full_reconfiguration_protocol_works() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        // 1. decouple; 2. reconfigure; 3. re-couple; 4. run.
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        assert_eq!(soc.csr_read(tile, csr::STATUS).unwrap(), 2);
        let bs = mac_bitstream(&soc, 2);
        let reconf = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        assert!(reconf.end > t1);
        assert!(reconf.icap_cycles > 0 && reconf.fetch_cycles > 0);
        let t2 = soc
            .csr_write_at(tile, csr::DECOUPLE, 0, reconf.end)
            .unwrap();
        assert_eq!(soc.csr_read(tile, csr::STATUS).unwrap(), 1);
        let run = soc
            .run_accelerator_at(
                tile,
                &AccelOp::Mac {
                    a: vec![3.0],
                    b: vec![4.0],
                },
                t2,
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(12.0));
    }

    /// Two distinct CLB columns of the device, ascending.
    fn two_clb_columns(soc: &Soc) -> (u32, u32) {
        let device = soc.part().device();
        let mut clbs = (0..device.columns())
            .filter(|&i| device.column_kind(i) == presp_fpga::fabric::ColumnKind::Clb)
            .map(|i| i as u32);
        (clbs.next().unwrap(), clbs.next_back().unwrap())
    }

    #[test]
    fn region_move_relocates_frames_golden_and_wrapper_survives() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let (src, dst) = two_clb_columns(&soc);
        let delta = dst as i64 - src as i64;
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let bs = mac_bitstream(&soc, src);
        let reconf = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        let old_region = soc.tile_region(tile);
        let run = soc.move_tile_region_at(tile, delta, reconf.end).unwrap();
        assert_eq!(run.frames, old_region.len());
        assert!(run.end > run.start);
        // Frames live at the new base, bit-exact; the old base is erased.
        let new_region = soc.tile_region(tile);
        assert_eq!(new_region.len(), old_region.len());
        for (old, new) in old_region.iter().zip(&new_region) {
            assert_eq!(new.column, dst);
            assert_eq!((new.row, new.minor), (old.row, old.minor));
            assert_eq!(
                soc.dfxc.config_memory().frame(*new),
                vec![0x5A5A_0000 + new.minor; soc.dfxc.config_memory().frame_words()]
            );
            assert!(!soc.dfxc.config_memory().is_configured(*old));
        }
        // ECC moved in lockstep: the whole region scrubs clean.
        let report = soc.scrub_frames_at(&new_region, run.end).unwrap();
        assert!(report.is_clean());
        // The golden store follows, so escalation still restores correctly.
        let golden = soc.golden_snapshot(tile).unwrap().addresses();
        assert_eq!(golden, new_region);
        // The wrapper (and its configured accelerator) is untouched.
        let t2 = soc.csr_write_at(tile, csr::DECOUPLE, 0, run.end).unwrap();
        let out = soc
            .run_accelerator_at(
                tile,
                &AccelOp::Mac {
                    a: vec![3.0],
                    b: vec![4.0],
                },
                t2,
            )
            .unwrap();
        assert_eq!(out.value, AccelValue::Scalar(12.0));
    }

    #[test]
    fn region_move_requires_decoupling_and_a_region() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        assert!(matches!(
            soc.move_tile_region_at(tile, 1, 0),
            Err(Error::DecouplerProtocol { .. })
        ));
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        assert!(matches!(
            soc.move_tile_region_at(tile, 1, t1),
            Err(Error::RegionConflict { .. })
        ));
    }

    #[test]
    fn region_move_refuses_to_clobber_another_tiles_region() {
        let mut soc = reconf_soc(2);
        let tiles = soc.config().reconfigurable_tiles();
        let (src, dst) = two_clb_columns(&soc);
        let t1 = soc.csr_write_at(tiles[0], csr::DECOUPLE, 1, 0).unwrap();
        let bs0 = mac_bitstream(&soc, src);
        let r0 = soc
            .reconfigure_at(tiles[0], AcceleratorKind::Mac, &bs0, t1)
            .unwrap();
        let t2 = soc
            .csr_write_at(tiles[1], csr::DECOUPLE, 1, r0.end)
            .unwrap();
        let bs1 = mac_bitstream(&soc, dst);
        let r1 = soc
            .reconfigure_at(tiles[1], AcceleratorKind::Mac, &bs1, t2)
            .unwrap();
        let before = soc.dfxc.config_memory().configured_addresses();
        let err = soc.move_tile_region_at(tiles[0], dst as i64 - src as i64, r1.end);
        assert!(matches!(err, Err(Error::RegionConflict { .. })), "{err:?}");
        // A refused move leaves the fabric bit-identical.
        assert_eq!(soc.dfxc.config_memory().configured_addresses(), before);
        assert_eq!(soc.tile_region(tiles[0])[0].column, src);
    }

    #[test]
    fn region_move_keeps_an_inflight_upset_detectable() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let (src, dst) = two_clb_columns(&soc);
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let bs = mac_bitstream(&soc, src);
        let reconf = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        // An SEU strikes between the load and the move...
        let struck = soc.tile_region(tile)[0];
        soc.dfxc
            .config_memory_mut()
            .corrupt_bit(struck, 3, 17)
            .unwrap();
        let run = soc
            .move_tile_region_at(tile, dst as i64 - src as i64, reconf.end)
            .unwrap();
        // ...and is still caught (and repaired) at the new address: the
        // move copies check codes bit-exact instead of re-encoding the
        // corrupted payload as truth.
        let report = soc
            .scrub_frames_at(&soc.tile_region(tile), run.end)
            .unwrap();
        assert_eq!(report.corrected.len(), 1);
        assert_eq!(report.corrected[0].0.column, dst);
        assert!(report.uncorrectable.is_empty());
    }

    #[test]
    fn region_release_erases_frames_and_frees_the_span_for_others() {
        let mut soc = reconf_soc(2);
        let tiles = soc.config().reconfigurable_tiles();
        let (src, dst) = two_clb_columns(&soc);
        // Releasing before any load (or while coupled) follows the same
        // protocol as a move.
        assert!(matches!(
            soc.release_tile_region(tiles[0], 0),
            Err(Error::DecouplerProtocol { .. })
        ));
        let t1 = soc.csr_write_at(tiles[0], csr::DECOUPLE, 1, 0).unwrap();
        assert_eq!(soc.release_tile_region(tiles[0], t1).unwrap(), 0);
        let bs = mac_bitstream(&soc, src);
        let reconf = soc
            .reconfigure_at(tiles[0], AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        let old_region = soc.tile_region(tiles[0]);
        assert!(!old_region.is_empty());
        let freed = soc.release_tile_region(tiles[0], reconf.end).unwrap();
        assert_eq!(freed, old_region.len());
        // Bookkeeping retired: no region, no golden, frames erased.
        assert!(soc.tile_region(tiles[0]).is_empty());
        assert!(soc.golden_snapshot(tiles[0]).is_none());
        for addr in &old_region {
            assert!(!soc.dfxc.config_memory().is_configured(*addr));
        }
        // Another tile can now move into the vacated span.
        let t2 = soc
            .csr_write_at(tiles[1], csr::DECOUPLE, 1, soc.horizon())
            .unwrap();
        let bs1 = mac_bitstream(&soc, dst);
        let r1 = soc
            .reconfigure_at(tiles[1], AcceleratorKind::Mac, &bs1, t2)
            .unwrap();
        soc.move_tile_region_at(tiles[1], src as i64 - dst as i64, r1.end)
            .unwrap();
        assert_eq!(soc.tile_region(tiles[1])[0].column, src);
    }

    #[test]
    fn decoupled_tile_rejects_traffic() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let bs = mac_bitstream(&soc, 2);
        let reconf = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        // Still decoupled: execution must be rejected until re-coupled.
        let err = soc.run_accelerator_at(
            tile,
            &AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
            reconf.end,
        );
        assert!(matches!(err, Err(Error::DecouplerProtocol { .. })));
    }

    #[test]
    fn change_detection_model_survives_reconfiguration_via_dram() {
        use presp_wami::change_detection::{ChangeDetector, GmmConfig};
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let cd = AcceleratorKind::Wami(WamiKernel::ChangeDetection);
        let mut frame = presp_wami::image::GrayImage::zeroed(8, 8);
        for p in frame.pixels_mut() {
            *p = 50.0;
        }
        // Load change detection, train the (DRAM-resident) model.
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let r1 = soc
            .reconfigure_at(tile, cd, &mac_bitstream(&soc, 2), t1)
            .unwrap();
        let t2 = soc.csr_write_at(tile, csr::DECOUPLE, 0, r1.end).unwrap();
        let model = Box::new(ChangeDetector::new(8, 8, GmmConfig::default()));
        let run = soc
            .run_accelerator_at(
                tile,
                &AccelOp::ChangeDetection {
                    frame: frame.clone(),
                    model,
                },
                t2,
            )
            .unwrap();
        let trained = match run.value {
            AccelValue::ChangeDetection { model, .. } => model,
            other => panic!("unexpected {other:?}"),
        };
        // Swap the accelerator out and back in: the model survived in DRAM
        // and still recognizes a change.
        let t3 = soc
            .csr_write_at(tile, csr::DECOUPLE, 1, soc.horizon())
            .unwrap();
        let r2 = soc
            .reconfigure_at(tile, cd, &mac_bitstream(&soc, 2), t3)
            .unwrap();
        let t4 = soc.csr_write_at(tile, csr::DECOUPLE, 0, r2.end).unwrap();
        let mut bright = frame.clone();
        bright.set(0, 0, 255.0);
        let run = soc
            .run_accelerator_at(
                tile,
                &AccelOp::ChangeDetection {
                    frame: bright,
                    model: trained,
                },
                t4,
            )
            .unwrap();
        match run.value {
            AccelValue::ChangeDetection { changed, .. } => assert_eq!(changed, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn larger_bitstreams_reconfigure_slower() {
        let mut soc = reconf_soc(2);
        let tiles = soc.config().reconfigurable_tiles();
        let device = soc.part().device();
        let words = device.part().family().frame_words();
        let mut small = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        small
            .add_frame(FrameAddress::new(0, 2, 0), vec![1; words])
            .unwrap();
        let mut large = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        for minor in 0..30 {
            large
                .add_frame(FrameAddress::new(1, 2, minor), vec![minor + 1; words])
                .unwrap();
        }
        let t1 = soc.csr_write_at(tiles[0], csr::DECOUPLE, 1, 0).unwrap();
        let r_small = soc
            .reconfigure_at(tiles[0], AcceleratorKind::Mac, &small.build(true), t1)
            .unwrap();
        let t2 = soc.csr_write_at(tiles[1], csr::DECOUPLE, 1, 0).unwrap();
        let r_large = soc
            .reconfigure_at(tiles[1], AcceleratorKind::Mac, &large.build(true), t2)
            .unwrap();
        assert!(r_large.latency() > r_small.latency());
    }

    #[test]
    fn cpu_fallback_is_slower_than_hardware() {
        let mut soc = mac_soc();
        let tile = soc.accelerator_tiles()[0];
        let op = AccelOp::Mac {
            a: vec![1.0; 4096],
            b: vec![1.0; 4096],
        };
        let hw = soc.run_accelerator_at(tile, &op, 0).unwrap();
        let sw = soc.run_on_cpu_at(&op, 0).unwrap();
        assert_eq!(hw.value, sw.value);
        assert!(sw.compute_cycles > 5 * hw.compute_cycles);
    }

    #[test]
    fn concurrent_tiles_share_the_dram_channel() {
        let cfg = SocConfig::new(
            "dual",
            2,
            3,
            vec![
                TileKind::Cpu,
                TileKind::Mem,
                TileKind::Aux,
                TileKind::Accel(AcceleratorKind::Mac),
                TileKind::Accel(AcceleratorKind::Mac),
                TileKind::Empty,
            ],
        )
        .unwrap();
        let mut soc = Soc::new(&cfg).unwrap();
        let tiles = soc.accelerator_tiles();
        let op = AccelOp::Mac {
            a: vec![1.0; 100_000],
            b: vec![1.0; 100_000],
        };
        let a = soc.run_accelerator_at(tiles[0], &op, 0).unwrap();
        let b = soc.run_accelerator_at(tiles[1], &op, 0).unwrap();
        // Issued at the same cycle, but DRAM + shared NoC links near the
        // memory tile serialize the input DMA.
        assert!(b.end > a.end);
    }

    #[test]
    fn energy_report_accounts_all_terms() {
        let mut soc = mac_soc();
        let tile = soc.accelerator_tiles()[0];
        soc.run_accelerator(
            tile,
            &AccelOp::Mac {
                a: vec![1.0; 1024],
                b: vec![1.0; 1024],
            },
        )
        .unwrap();
        let report = soc.energy_report();
        assert!(report.dynamic_j > 0.0);
        assert!(report.leakage_j > 0.0);
        assert!(report.base_j > 0.0);
        assert!(report.elapsed_s > 0.0);
        assert!(report.total_j() >= report.dynamic_j);
    }

    #[test]
    fn forced_seu_is_applied_and_scrubbed() {
        use presp_fpga::fault::FaultConfig;
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let bs = mac_bitstream(&soc, 2);
        let r = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        let region = soc.tile_region(tile);
        assert_eq!(region.len(), 4, "four frames were loaded");
        let mut plan = FaultPlan::new(7, FaultConfig::uniform(0.0));
        plan.force_seu(r.end + 10, false);
        soc.set_fault_plan(Some(plan));
        let report = soc.scrub_frames_at(&region, r.end + 100).unwrap();
        assert_eq!(report.corrected.len(), 1);
        assert!(report.uncorrectable.is_empty());
        assert_eq!(soc.seu_log().len(), 1);
        assert!(region.contains(&soc.seu_log()[0].addr));
        // A second pass reads back clean.
        let report = soc.scrub_frames_at(&region, report.end).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn double_bit_seu_needs_a_golden_restore() {
        use presp_fpga::fault::FaultConfig;
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let bs = mac_bitstream(&soc, 2);
        let r = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &bs, t1)
            .unwrap();
        let mut plan = FaultPlan::new(11, FaultConfig::uniform(0.0));
        plan.force_seu(r.end + 1, true);
        soc.set_fault_plan(Some(plan));
        let region = soc.tile_region(tile);
        let report = soc.scrub_frames_at(&region, r.end + 50).unwrap();
        assert_eq!(report.uncorrectable.len(), 1);
        assert!(soc.seu_log()[0].second_bit.is_some());
        // ECC cannot fix it; the golden store can.
        assert_eq!(soc.restore_golden(tile).unwrap(), 4);
        let report = soc.scrub_frames_at(&region, report.end).unwrap();
        assert!(report.is_clean());
    }

    #[test]
    fn faulted_load_rolls_back_to_pre_transaction_image() {
        use presp_fpga::fault::FaultConfig;
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let r1 = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &mac_bitstream(&soc, 2), t1)
            .unwrap();
        let before = soc.dfxc().config_memory().clone();
        let mut plan = FaultPlan::new(3, FaultConfig::uniform(0.0));
        plan.force_icap_fault(0);
        soc.set_fault_plan(Some(plan));
        let err = soc.reconfigure_at(tile, AcceleratorKind::Mac, &mac_bitstream(&soc, 3), r1.end);
        assert!(err.is_err());
        assert!(
            before.diff(soc.dfxc().config_memory()).is_empty(),
            "rollback restored the pre-transaction image bit-for-bit"
        );
    }

    #[test]
    fn scrubbing_contends_with_reconfiguration_for_the_icap() {
        let mut soc = reconf_soc(2);
        let tiles = soc.config().reconfigurable_tiles();
        let t1 = soc.csr_write_at(tiles[0], csr::DECOUPLE, 1, 0).unwrap();
        let r1 = soc
            .reconfigure_at(tiles[0], AcceleratorKind::Mac, &mac_bitstream(&soc, 2), t1)
            .unwrap();
        let region = soc.tile_region(tiles[0]);
        // Launch a second reconfiguration, then scrub at the same cycle:
        // the readback must queue behind the ICAP write.
        let t2 = soc
            .csr_write_at(tiles[1], csr::DECOUPLE, 1, r1.end)
            .unwrap();
        soc.reconfigure_at(tiles[1], AcceleratorKind::Mac, &mac_bitstream(&soc, 3), t2)
            .unwrap();
        let before = soc.icap_contention_cycles();
        let scrub = soc.scrub_frames_at(&region, t2).unwrap();
        assert!(scrub.waited > 0, "scrub waited for the shared ICAP");
        assert!(soc.icap_contention_cycles() > before);
        assert!(scrub.is_clean());
    }

    #[test]
    fn seeded_seu_stream_targets_configured_frames() {
        use presp_fpga::fault::FaultConfig;
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        let t1 = soc.csr_write_at(tile, csr::DECOUPLE, 1, 0).unwrap();
        let r = soc
            .reconfigure_at(tile, AcceleratorKind::Mac, &mac_bitstream(&soc, 2), t1)
            .unwrap();
        let plan = FaultPlan::new(42, FaultConfig::uniform(0.0).with_seu(300.0, 0.0));
        soc.set_fault_plan(Some(plan));
        let region = soc.tile_region(tile);
        let report = soc.scrub_frames_at(&region, r.end + 50_000).unwrap();
        assert!(
            !soc.seu_log().is_empty(),
            "the seeded stream produced upsets"
        );
        for record in soc.seu_log() {
            assert!(region.contains(&record.addr), "upsets strike active frames");
        }
        // Everything lands in the scrubbed region, so the pass sees every
        // upset (two hits on one word escalate to uncorrectable instead).
        assert!(!report.is_clean());
    }

    #[test]
    fn csr_errors() {
        let mut soc = reconf_soc(1);
        let tile = soc.config().reconfigurable_tiles()[0];
        assert!(matches!(
            soc.csr_write_at(tile, 0x99, 1, 0),
            Err(Error::BadRegister { .. })
        ));
        assert!(matches!(
            soc.csr_read(tile, 0x99),
            Err(Error::BadRegister { .. })
        ));
        let cpu = soc.config().cpu();
        assert!(matches!(
            soc.csr_read(cpu, csr::STATUS),
            Err(Error::WrongTileKind { .. })
        ));
    }
}
