//! Multi-plane 2D-mesh NoC with link-level contention.
//!
//! Packets are routed XY (column first, then row) over per-plane physical
//! links, like ESP's packet-switched mesh with multiple physical planes.
//! The model reserves each link along the path for the packet's
//! serialization time, so concurrent transfers crossing the same link
//! serialize while transfers on disjoint paths (or different planes)
//! proceed in parallel — the property that makes the Fig. 4 SoCs with more
//! reconfigurable tiles faster but not linearly so.

use crate::config::TileCoord;
use presp_events::ResourceTimeline;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Link width: bytes moved per cycle per link.
pub const FLIT_BYTES: u64 = 8;
/// Router pipeline latency per hop, cycles.
pub const HOP_LATENCY: u64 = 4;
/// Header overhead per packet, flits.
pub const HEADER_FLITS: u64 = 2;

/// The six physical NoC planes of the ESP architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Plane {
    /// Coherence requests.
    Coherence,
    /// Coherence responses.
    CoherenceRsp,
    /// DMA data (accelerator load/store).
    Dma,
    /// Second DMA plane — PR-ESP routes DFXC bitstream fetches here.
    Dfx,
    /// Memory-mapped register access (APB-over-NoC).
    RegAccess,
    /// Interrupt delivery.
    Irq,
}

impl Plane {
    /// All planes.
    pub const ALL: [Plane; 6] = [
        Plane::Coherence,
        Plane::CoherenceRsp,
        Plane::Dma,
        Plane::Dfx,
        Plane::RegAccess,
        Plane::Irq,
    ];

    /// Stable lowercase name (used in trace records).
    pub fn name(self) -> &'static str {
        match self {
            Plane::Coherence => "coherence",
            Plane::CoherenceRsp => "coherence-rsp",
            Plane::Dma => "dma",
            Plane::Dfx => "dfx",
            Plane::RegAccess => "reg-access",
            Plane::Irq => "irq",
        }
    }
}

/// A completed transfer's timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// Cycle the first flit left the source.
    pub start: u64,
    /// Cycle the last flit arrived at the destination.
    pub end: u64,
    /// Hops traversed.
    pub hops: usize,
    /// Flits moved (including header).
    pub flits: u64,
    /// Cycles lost waiting for busy links along the path.
    pub waited: u64,
}

impl Transfer {
    /// Transfer latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.start
    }
}

/// Directed link key: one hop of one plane.
type LinkKey = (TileCoord, TileCoord, Plane);

/// The mesh NoC state: one reservation timeline per directed link per
/// plane.
#[derive(Debug, Clone, Default)]
pub struct Noc {
    links: HashMap<LinkKey, ResourceTimeline>,
    transfers: u64,
}

impl Noc {
    /// A fresh, idle NoC.
    pub fn new() -> Noc {
        Noc::default()
    }

    /// Total transfers injected so far (all planes). Fault-injection tests
    /// use this to prove that rejected operations never reached the NoC.
    pub fn transfer_count(&self) -> u64 {
        self.transfers
    }

    /// Total cycles packets spent waiting for busy links, all planes —
    /// the mesh-level contention the Fig. 4 scaling study trades against
    /// tile count.
    pub fn contention_cycles(&self) -> u64 {
        self.links
            .values()
            .map(ResourceTimeline::contention_cycles)
            .sum()
    }

    /// The XY route from `src` to `dst` (inclusive of both endpoints).
    pub fn route(src: TileCoord, dst: TileCoord) -> Vec<TileCoord> {
        let mut path = vec![src];
        let mut cur = src;
        while cur.col != dst.col {
            cur.col = if dst.col > cur.col {
                cur.col + 1
            } else {
                cur.col - 1
            };
            path.push(cur);
        }
        while cur.row != dst.row {
            cur.row = if dst.row > cur.row {
                cur.row + 1
            } else {
                cur.row - 1
            };
            path.push(cur);
        }
        path
    }

    /// Sends `bytes` from `src` to `dst` on `plane`, no earlier than `now`.
    ///
    /// Returns the transfer timing. Links along the path are reserved for
    /// the packet's serialization time; a same-plane transfer crossing a
    /// busy link waits for it.
    pub fn transfer(
        &mut self,
        now: u64,
        src: TileCoord,
        dst: TileCoord,
        bytes: u64,
        plane: Plane,
    ) -> Transfer {
        self.transfers += 1;
        let flits = HEADER_FLITS + bytes.div_ceil(FLIT_BYTES);
        let path = Self::route(src, dst);
        if path.len() == 1 {
            // Local access: no links, just serialization.
            return Transfer {
                start: now,
                end: now + flits,
                hops: 0,
                flits,
                waited: 0,
            };
        }
        let mut head = now;
        let mut start = None;
        let mut waited = 0;
        for pair in path.windows(2) {
            let key = (pair[0], pair[1], plane);
            // Each link is held for the packet's serialization time; the
            // head advances one router pipeline per hop.
            let r = self.links.entry(key).or_default().reserve(head, flits);
            if start.is_none() {
                start = Some(r.start);
            }
            waited += r.waited;
            head = r.start + HOP_LATENCY;
        }
        // Last flit arrives after the head reaches the sink plus the body
        // streams through.
        let end = head + flits;
        Transfer {
            start: start.unwrap_or(now),
            end,
            hops: path.len() - 1,
            flits,
            waited,
        }
    }

    /// Cycle at which every link of `plane` between `src` and `dst` is free.
    pub fn path_free_at(&self, src: TileCoord, dst: TileCoord, plane: Plane) -> u64 {
        Noc::route(src, dst)
            .windows(2)
            .map(|pair| {
                self.links
                    .get(&(pair[0], pair[1], plane))
                    .map_or(0, ResourceTimeline::free_at)
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(r: usize, col: usize) -> TileCoord {
        TileCoord::new(r, col)
    }

    #[test]
    fn route_is_xy() {
        let path = Noc::route(c(0, 0), c(2, 2));
        assert_eq!(
            path,
            vec![c(0, 0), c(0, 1), c(0, 2), c(1, 2), c(2, 2)],
            "column-first routing"
        );
    }

    #[test]
    fn local_transfer_has_no_hops() {
        let mut noc = Noc::new();
        let t = noc.transfer(10, c(1, 1), c(1, 1), 64, Plane::Dma);
        assert_eq!(t.hops, 0);
        assert_eq!(t.start, 10);
        assert!(t.end > t.start);
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut noc = Noc::new();
        let near = noc.transfer(0, c(0, 0), c(0, 1), 256, Plane::Dma);
        let mut noc2 = Noc::new();
        let far = noc2.transfer(0, c(0, 0), c(2, 2), 256, Plane::Dma);
        assert!(far.latency() > near.latency());
        assert_eq!(far.latency() - near.latency(), 3 * HOP_LATENCY);
    }

    #[test]
    fn same_link_transfers_serialize() {
        let mut noc = Noc::new();
        let a = noc.transfer(0, c(0, 0), c(0, 2), 800, Plane::Dma);
        let b = noc.transfer(0, c(0, 0), c(0, 2), 800, Plane::Dma);
        // Second packet waits for the first link to drain.
        assert!(b.start >= a.start + a.flits);
        assert!(b.end > a.end);
    }

    #[test]
    fn different_planes_do_not_contend() {
        let mut noc = Noc::new();
        let a = noc.transfer(0, c(0, 0), c(0, 2), 800, Plane::Dma);
        let b = noc.transfer(0, c(0, 0), c(0, 2), 800, Plane::Dfx);
        assert_eq!(a.start, b.start);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut noc = Noc::new();
        let a = noc.transfer(0, c(0, 0), c(0, 1), 800, Plane::Dma);
        let b = noc.transfer(0, c(2, 0), c(2, 1), 800, Plane::Dma);
        assert_eq!(a.start, b.start);
    }

    #[test]
    fn big_transfers_are_bandwidth_bound() {
        let mut noc = Noc::new();
        let bytes = 64 * 1024;
        let t = noc.transfer(0, c(0, 0), c(0, 1), bytes, Plane::Dma);
        let flits = bytes / FLIT_BYTES + HEADER_FLITS;
        assert_eq!(t.flits, flits);
        // Serialization dominates: latency ≈ flits + hop latency.
        assert_eq!(t.latency(), flits + HOP_LATENCY);
    }

    #[test]
    fn path_free_tracks_reservations() {
        let mut noc = Noc::new();
        assert_eq!(noc.path_free_at(c(0, 0), c(0, 2), Plane::Dma), 0);
        let t = noc.transfer(0, c(0, 0), c(0, 2), 800, Plane::Dma);
        assert!(noc.path_free_at(c(0, 0), c(0, 2), Plane::Dma) >= t.flits);
        assert_eq!(noc.path_free_at(c(0, 0), c(0, 2), Plane::Irq), 0);
    }
}
