//! The DFX controller (DFXC) hosted in the auxiliary tile.
//!
//! The paper instantiates Xilinx's DFX controller IP plus the ICAP
//! primitive inside the auxiliary tile (Section III): software programs the
//! controller through memory-mapped registers (AXI-Lite bridged to the APB
//! bus), the controller fetches the partial bitstream from memory through
//! an AXI master (bridged to NoC packets), streams it into the ICAP, and
//! raises an interrupt on completion. This module models the controller's
//! state machine and the ICAP; the NoC fetch is accounted by the
//! simulator.

use crate::error::Error;
use presp_fpga::bitstream::Bitstream;
use presp_fpga::fabric::Device;
use presp_fpga::icap::{Icap, IcapReport};
use serde::{Deserialize, Serialize};

/// DFXC status values (the subset of the IP's VSM states the software
/// stack cares about).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DfxcStatus {
    /// Ready for a trigger.
    Idle,
    /// A reconfiguration is in flight.
    Loading,
    /// Last reconfiguration completed successfully.
    Done,
    /// Last reconfiguration failed (CRC/IDCODE/format error).
    Error,
}

/// The DFX controller + ICAP pair.
#[derive(Debug, Clone)]
pub struct Dfxc {
    icap: Icap,
    status: DfxcStatus,
    completed: u64,
    failed: u64,
    busy_micros: f64,
}

impl Dfxc {
    /// Creates a controller for `device`.
    pub fn new(device: &Device) -> Dfxc {
        Dfxc {
            icap: Icap::new(device),
            status: DfxcStatus::Idle,
            completed: 0,
            failed: 0,
            busy_micros: 0.0,
        }
    }

    /// Current status register value.
    pub fn status(&self) -> DfxcStatus {
        self.status
    }

    /// Reconfigurations completed successfully.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Reconfigurations that failed.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Total ICAP streaming time of successful loads, microseconds —
    /// the controller's share of the shared-ICAP occupancy the simulator
    /// arbitrates.
    pub fn busy_micros(&self) -> f64 {
        self.busy_micros
    }

    /// The configuration memory behind the ICAP.
    pub fn config_memory(&self) -> &presp_fpga::config_memory::ConfigMemory {
        self.icap.memory()
    }

    /// Mutable access to the configuration memory, for SEU injection,
    /// readback scrubbing and transactional rollback. Every mutation still
    /// goes through [`ConfigMemory`](presp_fpga::config_memory::ConfigMemory)'s
    /// own doorway methods.
    pub fn config_memory_mut(&mut self) -> &mut presp_fpga::config_memory::ConfigMemory {
        self.icap.memory_mut()
    }

    /// Frame addresses written by the most recent load (write order).
    pub fn last_written(&self) -> &[presp_fpga::frame::FrameAddress] {
        self.icap.last_written()
    }

    /// Streams a (fetched) bitstream through the ICAP.
    ///
    /// # Errors
    ///
    /// Propagates ICAP errors (CRC mismatch, wrong IDCODE, malformed
    /// stream); the status register latches [`DfxcStatus::Error`] and the
    /// fabric may be partially written, exactly like the real controller.
    pub fn load(&mut self, bitstream: &Bitstream) -> Result<IcapReport, Error> {
        self.status = DfxcStatus::Loading;
        match self.icap.load(bitstream) {
            Ok(report) => {
                self.status = DfxcStatus::Done;
                self.completed += 1;
                self.busy_micros += report.micros;
                Ok(report)
            }
            Err(e) => {
                self.status = DfxcStatus::Error;
                self.failed += 1;
                Err(Error::Fpga(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_fpga::part::FpgaPart;

    fn device() -> Device {
        FpgaPart::Vc707.device()
    }

    fn small_bitstream(d: &Device) -> Bitstream {
        let mut b = BitstreamBuilder::new(d, BitstreamKind::Partial);
        let words = d.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, 1, 0), vec![0xAB; words])
            .unwrap();
        b.build(true)
    }

    #[test]
    fn successful_load_reaches_done() {
        let d = device();
        let mut dfxc = Dfxc::new(&d);
        assert_eq!(dfxc.status(), DfxcStatus::Idle);
        let report = dfxc.load(&small_bitstream(&d)).unwrap();
        assert_eq!(dfxc.status(), DfxcStatus::Done);
        assert_eq!(dfxc.completed(), 1);
        assert!(report.frames_written > 0);
    }

    #[test]
    fn failed_load_latches_error() {
        let d = device();
        let mut dfxc = Dfxc::new(&d);
        let bs = small_bitstream(&d);
        let mut words = bs.words().to_vec();
        let n = words.len();
        words[n - 10] ^= 1; // corrupt payload → CRC failure
        let corrupted = bs.with_words(words);
        assert!(dfxc.load(&corrupted).is_err());
        assert_eq!(dfxc.status(), DfxcStatus::Error);
        assert_eq!(dfxc.failed(), 1);
        // A good load recovers the controller.
        dfxc.load(&small_bitstream(&d)).unwrap();
        assert_eq!(dfxc.status(), DfxcStatus::Done);
    }

    #[test]
    fn config_memory_reflects_loads() {
        let d = device();
        let mut dfxc = Dfxc::new(&d);
        assert_eq!(dfxc.config_memory().configured_frames(), 0);
        dfxc.load(&small_bitstream(&d)).unwrap();
        assert_eq!(dfxc.config_memory().configured_frames(), 1);
    }
}
