//! SoC configurations: the tile-grid description the PR-ESP flow parses.

use crate::error::Error;
use crate::json::{self, JsonValue};
use crate::tile::TileKind;
use presp_accel::catalog::AcceleratorKind;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A tile position in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileCoord {
    /// Grid row.
    pub row: usize,
    /// Grid column.
    pub col: usize,
}

impl TileCoord {
    /// Creates a coordinate.
    pub fn new(row: usize, col: usize) -> TileCoord {
        TileCoord { row, col }
    }

    /// Manhattan (hop) distance to another tile.
    pub fn hops_to(&self, other: &TileCoord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// A validated SoC configuration: a grid of tiles.
///
/// Round-trips through JSON files (the analogue of ESP's `esp_defconfig`)
/// via [`SocConfig::to_json`] / [`SocConfig::from_json`]; tiles are encoded
/// as variant strings such as `"Aux"` or `"Accel(gemm)"`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocConfig {
    name: String,
    rows: usize,
    cols: usize,
    tiles: Vec<TileKind>,
}

impl SocConfig {
    /// Builds and validates a configuration from a row-major tile list.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadConfig`] when the grid shape is wrong or the SoC
    /// lacks a CPU, memory or auxiliary tile, or has more than one AUX.
    pub fn new(
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        tiles: Vec<TileKind>,
    ) -> Result<SocConfig, Error> {
        if rows == 0 || cols == 0 || tiles.len() != rows * cols {
            return Err(Error::BadConfig {
                detail: format!("{} tiles for a {rows}x{cols} grid", tiles.len()),
            });
        }
        let count = |k: fn(&TileKind) -> bool| tiles.iter().filter(|t| k(t)).count();
        if count(|t| matches!(t, TileKind::Cpu)) == 0 {
            return Err(Error::BadConfig {
                detail: "no CPU tile".into(),
            });
        }
        if count(|t| matches!(t, TileKind::Mem)) == 0 {
            return Err(Error::BadConfig {
                detail: "no memory tile".into(),
            });
        }
        match count(|t| matches!(t, TileKind::Aux)) {
            0 => {
                return Err(Error::BadConfig {
                    detail: "no auxiliary tile (DFXC/ICAP host)".into(),
                })
            }
            1 => {}
            n => {
                return Err(Error::BadConfig {
                    detail: format!("{n} auxiliary tiles (need exactly 1)"),
                })
            }
        }
        Ok(SocConfig {
            name: name.into(),
            rows,
            cols,
            tiles,
        })
    }

    /// Parses a configuration from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadConfig`] on malformed JSON or an invalid grid.
    pub fn from_json(json: &str) -> Result<SocConfig, Error> {
        let bad = |detail: String| Error::BadConfig { detail };
        let doc = json::parse(json).map_err(|e| bad(format!("json: {e}")))?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| bad(format!("missing field '{key}'")))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| bad("'name' must be a string".into()))?
            .to_string();
        let dim = |key: &str| {
            field(key)?
                .as_usize()
                .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer")))
        };
        let rows = dim("rows")?;
        let cols = dim("cols")?;
        let tiles = field("tiles")?
            .as_array()
            .ok_or_else(|| bad("'tiles' must be an array".into()))?
            .iter()
            .map(|t| {
                let token = t
                    .as_str()
                    .ok_or_else(|| bad("tile entries must be strings".into()))?;
                tile_from_token(token).ok_or_else(|| bad(format!("unknown tile kind '{token}'")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        SocConfig::new(name, rows, cols, tiles)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![
            ("name".into(), JsonValue::String(self.name.clone())),
            ("rows".into(), JsonValue::Number(self.rows as f64)),
            ("cols".into(), JsonValue::Number(self.cols as f64)),
            (
                "tiles".into(),
                JsonValue::Array(
                    self.tiles
                        .iter()
                        .map(|t| JsonValue::String(tile_to_token(*t)))
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }

    /// A 2×2 profiling SoC with one static accelerator tile — the paper's
    /// setup for per-accelerator LUT/latency profiling (Fig. 3).
    ///
    /// # Errors
    ///
    /// Never fails for a valid accelerator kind; the `Result` mirrors
    /// [`SocConfig::new`].
    pub fn grid_2x2_single(kind: AcceleratorKind) -> Result<SocConfig, Error> {
        SocConfig::new(
            format!("profile_{kind}"),
            2,
            2,
            vec![
                TileKind::Cpu,
                TileKind::Mem,
                TileKind::Aux,
                TileKind::Accel(kind),
            ],
        )
    }

    /// A 3×3 SoC with CPU, MEM and AUX plus `n` reconfigurable tiles (the
    /// shape of the paper's SoC_A–SoC_D and SoC_X–SoC_Z), `n ≤ 6`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadConfig`] when `n > 6`.
    pub fn grid_3x3_reconf(name: impl Into<String>, n: usize) -> Result<SocConfig, Error> {
        if n > 6 {
            return Err(Error::BadConfig {
                detail: format!("{n} reconfigurable tiles exceed a 3x3 grid"),
            });
        }
        let mut tiles = vec![TileKind::Cpu, TileKind::Mem, TileKind::Aux];
        tiles.extend(std::iter::repeat_n(TileKind::Reconfigurable, n));
        tiles.resize(9, TileKind::Empty);
        SocConfig::new(name, 3, 3, tiles)
    }

    /// A near-square SoC with CPU, MEM and AUX plus `n` reconfigurable
    /// tiles, for scale-out workloads past the 3×3 grid's 6-tile cap.
    /// The grid is sized to the smallest near-square rectangle (at
    /// least 3 columns) holding `n + 3` tiles; unused positions are
    /// [`TileKind::Empty`].
    ///
    /// # Errors
    ///
    /// Never fails for `n ≥ 1`; the `Result` mirrors [`SocConfig::new`].
    pub fn grid_reconf(name: impl Into<String>, n: usize) -> Result<SocConfig, Error> {
        let total = n + 3;
        let cols = (1..).find(|c| c * c >= total).unwrap_or(3).max(3);
        let rows = total.div_ceil(cols);
        let mut tiles = vec![TileKind::Cpu, TileKind::Mem, TileKind::Aux];
        tiles.extend(std::iter::repeat_n(TileKind::Reconfigurable, n));
        tiles.resize(rows * cols, TileKind::Empty);
        SocConfig::new(name, rows, cols, tiles)
    }

    /// Configuration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The tile kind at `coord`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTile`] for out-of-grid coordinates.
    pub fn tile(&self, coord: TileCoord) -> Result<TileKind, Error> {
        if coord.row >= self.rows || coord.col >= self.cols {
            return Err(Error::NoSuchTile { coord });
        }
        Ok(self.tiles[coord.row * self.cols + coord.col])
    }

    /// Iterates over `(coord, kind)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (TileCoord, TileKind)> + '_ {
        self.tiles
            .iter()
            .enumerate()
            .map(|(i, &k)| (TileCoord::new(i / self.cols, i % self.cols), k))
    }

    /// Coordinates of every tile matching a predicate.
    pub fn find_tiles(&self, pred: impl Fn(TileKind) -> bool) -> Vec<TileCoord> {
        self.iter()
            .filter(|(_, k)| pred(*k))
            .map(|(c, _)| c)
            .collect()
    }

    /// The (single) CPU tile closest to the grid origin.
    pub fn cpu(&self) -> TileCoord {
        self.find_tiles(|k| matches!(k, TileKind::Cpu))[0]
    }

    /// The (single) memory tile closest to the grid origin.
    pub fn mem(&self) -> TileCoord {
        self.find_tiles(|k| matches!(k, TileKind::Mem))[0]
    }

    /// The auxiliary tile.
    pub fn aux(&self) -> TileCoord {
        self.find_tiles(|k| matches!(k, TileKind::Aux))[0]
    }

    /// All reconfigurable tiles, row-major.
    pub fn reconfigurable_tiles(&self) -> Vec<TileCoord> {
        self.find_tiles(|k| matches!(k, TileKind::Reconfigurable))
    }

    /// Total static-part resources of the SoC (every static tile).
    pub fn static_resources(&self) -> Resources {
        self.iter()
            .filter(|(_, k)| k.is_static())
            .map(|(_, k)| k.static_resources())
            .sum()
    }
}

/// The JSON token for a tile kind: the variant name (`"Aux"`), with
/// accelerator tiles written as `"Accel(<kind>)"`.
fn tile_to_token(kind: TileKind) -> String {
    match kind {
        TileKind::Cpu => "Cpu".into(),
        TileKind::Mem => "Mem".into(),
        TileKind::Aux => "Aux".into(),
        TileKind::Slm => "Slm".into(),
        TileKind::Accel(accel) => format!("Accel({accel})"),
        TileKind::Reconfigurable => "Reconfigurable".into(),
        TileKind::Empty => "Empty".into(),
    }
}

/// Inverse of [`tile_to_token`].
fn tile_from_token(token: &str) -> Option<TileKind> {
    match token {
        "Cpu" => Some(TileKind::Cpu),
        "Mem" => Some(TileKind::Mem),
        "Aux" => Some(TileKind::Aux),
        "Slm" => Some(TileKind::Slm),
        "Reconfigurable" => Some(TileKind::Reconfigurable),
        "Empty" => Some(TileKind::Empty),
        _ => {
            let inner = token.strip_prefix("Accel(")?.strip_suffix(')')?;
            AcceleratorKind::CHARACTERIZATION
                .into_iter()
                .chain([AcceleratorKind::Cpu])
                .chain(AcceleratorKind::wami_all())
                .find(|k| k.name() == inner)
                .map(TileKind::Accel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_3x3_has_expected_tiles() {
        let cfg = SocConfig::grid_3x3_reconf("soc_y", 3).unwrap();
        assert_eq!(cfg.reconfigurable_tiles().len(), 3);
        assert_eq!(cfg.tile(cfg.cpu()).unwrap(), TileKind::Cpu);
        assert_eq!(cfg.tile(cfg.aux()).unwrap(), TileKind::Aux);
        assert_eq!(cfg.iter().count(), 9);
    }

    #[test]
    fn static_resources_match_table2_for_minimal_soc() {
        // Reconfigurable tiles are excluded from the static part (their
        // wrapper contents are what gets reconfigured), so a CPU+MEM+AUX
        // SoC reports exactly Table II's 82,267 static LUTs regardless of
        // how many reconfigurable tiles it carries.
        let cfg = SocConfig::grid_3x3_reconf("soc", 4).unwrap();
        assert_eq!(cfg.static_resources().lut, 82_267);
    }

    #[test]
    fn validation_catches_missing_tiles() {
        let no_cpu = SocConfig::new(
            "x",
            1,
            3,
            vec![TileKind::Mem, TileKind::Aux, TileKind::Empty],
        );
        assert!(matches!(no_cpu, Err(Error::BadConfig { .. })));
        let no_aux = SocConfig::new(
            "x",
            1,
            3,
            vec![TileKind::Cpu, TileKind::Mem, TileKind::Empty],
        );
        assert!(matches!(no_aux, Err(Error::BadConfig { .. })));
        let two_aux = SocConfig::new(
            "x",
            2,
            2,
            vec![TileKind::Cpu, TileKind::Mem, TileKind::Aux, TileKind::Aux],
        );
        assert!(matches!(two_aux, Err(Error::BadConfig { .. })));
    }

    #[test]
    fn validation_catches_bad_shape() {
        let wrong = SocConfig::new("x", 2, 2, vec![TileKind::Cpu]);
        assert!(matches!(wrong, Err(Error::BadConfig { .. })));
        let zero = SocConfig::new("x", 0, 2, vec![]);
        assert!(matches!(zero, Err(Error::BadConfig { .. })));
    }

    #[test]
    fn too_many_reconf_tiles_rejected() {
        assert!(SocConfig::grid_3x3_reconf("x", 7).is_err());
        assert!(SocConfig::grid_3x3_reconf("x", 6).is_ok());
    }

    #[test]
    fn grid_reconf_scales_past_the_3x3_cap() {
        // 64 reconfigurable tiles + CPU/MEM/AUX = 67 positions → 8×9.
        let cfg = SocConfig::grid_reconf("soc_big", 64).unwrap();
        assert_eq!(cfg.reconfigurable_tiles().len(), 64);
        assert_eq!((cfg.rows(), cfg.cols()), (8, 9));
        assert_eq!(cfg.tile(cfg.cpu()).unwrap(), TileKind::Cpu);
        assert_eq!(cfg.tile(cfg.aux()).unwrap(), TileKind::Aux);
        // Small counts still validate (near-square, ≥3 columns).
        let small = SocConfig::grid_reconf("soc_small", 1).unwrap();
        assert_eq!(small.reconfigurable_tiles().len(), 1);
        assert_eq!((small.rows(), small.cols()), (2, 3));
    }

    #[test]
    fn json_roundtrip_revalidates() {
        let cfg = SocConfig::grid_3x3_reconf("soc_z", 4).unwrap();
        let json = cfg.to_json();
        let back = SocConfig::from_json(&json).unwrap();
        assert_eq!(cfg, back);
        // Tampered JSON (drop the aux tile) fails validation.
        let bad = json.replace("\"Aux\"", "\"Empty\"");
        assert!(SocConfig::from_json(&bad).is_err());
    }

    #[test]
    fn json_roundtrip_keeps_accelerator_tiles() {
        let cfg = SocConfig::grid_2x2_single(AcceleratorKind::Gemm).unwrap();
        let json = cfg.to_json();
        assert!(json.contains("\"Accel(gemm)\""));
        assert_eq!(SocConfig::from_json(&json).unwrap(), cfg);
        assert!(SocConfig::from_json(&json.replace("gemm", "warp9")).is_err());
    }

    #[test]
    fn out_of_grid_lookup_fails() {
        let cfg = SocConfig::grid_2x2_single(AcceleratorKind::Mac).unwrap();
        assert!(cfg.tile(TileCoord::new(5, 0)).is_err());
    }

    #[test]
    fn hop_distance_is_manhattan() {
        assert_eq!(TileCoord::new(0, 0).hops_to(&TileCoord::new(2, 1)), 3);
        assert_eq!(TileCoord::new(1, 1).hops_to(&TileCoord::new(1, 1)), 0);
    }
}
