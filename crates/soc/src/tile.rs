//! Tile kinds and their resource overheads.

use presp_accel::catalog::AcceleratorKind;
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Socket overhead of a reconfigurable tile: the NoC proxies, the
/// configuration registers, the decoupling logic and the reconfigurable
/// wrapper interface (everything in Fig. 2B outside the accelerator).
pub const RECONF_SOCKET: Resources = Resources::new(4_600, 6_100, 2, 0);

/// The tile kinds of the (PR-)ESP architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TileKind {
    /// Processor tile (Leon3 in the paper's evaluation).
    Cpu,
    /// Memory tile (DDR channel interface).
    Mem,
    /// Auxiliary tile, augmented with the DFX controller + ICAP.
    Aux,
    /// Shared-local-memory tile.
    Slm,
    /// A static (non-reconfigurable) accelerator tile.
    Accel(AcceleratorKind),
    /// A reconfigurable tile (initially empty; accelerators are loaded by
    /// partial reconfiguration).
    Reconfigurable,
    /// An unused grid position.
    Empty,
}

impl TileKind {
    /// Fabric resources the tile's static logic occupies.
    ///
    /// Calibrated against Table II: a CPU tile is 41,544 LUTs and the full
    /// static part of a CPU+MEM+AUX SoC is 82,267 LUTs (the remainder being
    /// the memory tile, the auxiliary tile with the DFXC, and the NoC
    /// routers / clocking accounted to [`TileKind::Mem`] and
    /// [`TileKind::Aux`] here).
    pub fn static_resources(&self) -> Resources {
        match self {
            TileKind::Cpu => Resources::new(41_544, 34_800, 64, 4),
            TileKind::Mem => Resources::new(23_500, 28_100, 48, 0),
            TileKind::Aux => Resources::new(17_223, 19_800, 12, 0),
            TileKind::Slm => Resources::new(6_400, 5_200, 128, 0),
            TileKind::Accel(kind) => kind.resources() + RECONF_SOCKET,
            // The socket stays static; the wrapper contents are reconfigured.
            TileKind::Reconfigurable => RECONF_SOCKET,
            TileKind::Empty => Resources::ZERO,
        }
    }

    /// Whether the tile belongs to the static part of a DPR design.
    pub fn is_static(&self) -> bool {
        !matches!(self, TileKind::Reconfigurable)
    }

    /// Short name used in configuration files.
    pub fn name(&self) -> String {
        match self {
            TileKind::Cpu => "cpu".into(),
            TileKind::Mem => "mem".into(),
            TileKind::Aux => "aux".into(),
            TileKind::Slm => "slm".into(),
            TileKind::Accel(kind) => format!("accel:{kind}"),
            TileKind::Reconfigurable => "reconf".into(),
            TileKind::Empty => "empty".into(),
        }
    }
}

impl fmt::Display for TileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Runtime state of a reconfigurable tile's wrapper.
#[derive(Debug)]
pub enum WrapperState {
    /// Nothing loaded (post-boot, or after loading a blanking bitstream).
    Empty,
    /// An accelerator is configured and coupled to the NoC.
    Configured(presp_accel::AccelInstance),
    /// The decoupler isolates the wrapper; reconfiguration may proceed.
    Decoupled {
        /// Kind that was loaded before decoupling, if any (its logic is
        /// still in the fabric until overwritten).
        previous: Option<AcceleratorKind>,
    },
}

impl WrapperState {
    /// The configured accelerator kind, if coupled.
    pub fn configured_kind(&self) -> Option<AcceleratorKind> {
        match self {
            WrapperState::Configured(instance) => Some(instance.kind()),
            _ => None,
        }
    }

    /// Whether the decoupler currently isolates the wrapper.
    pub fn is_decoupled(&self) -> bool {
        matches!(self, WrapperState::Decoupled { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_part_matches_table2() {
        // CPU + MEM + AUX = 82,267 LUTs (Table II "Static").
        let total = TileKind::Cpu.static_resources()
            + TileKind::Mem.static_resources()
            + TileKind::Aux.static_resources();
        assert_eq!(total.lut, 82_267);
    }

    #[test]
    fn static_without_cpu_is_close_to_table2() {
        // Table II reports 39,254; tile accounting gives 40,723 (the paper
        // measures a slightly smaller AUX when the CPU's APB fabric is
        // absent). Keep within 5 %.
        let total = TileKind::Mem.static_resources() + TileKind::Aux.static_resources();
        let err = (total.lut as f64 - 39_254.0).abs() / 39_254.0;
        assert!(err < 0.05, "static w/o CPU = {}", total.lut);
    }

    #[test]
    fn reconfigurable_tile_only_counts_its_socket() {
        assert_eq!(TileKind::Reconfigurable.static_resources(), RECONF_SOCKET);
        assert!(!TileKind::Reconfigurable.is_static());
        assert!(TileKind::Cpu.is_static());
    }

    #[test]
    fn accel_tile_includes_socket_overhead() {
        let kind = AcceleratorKind::Conv2d;
        let tile = TileKind::Accel(kind).static_resources();
        assert_eq!(tile.lut, kind.resources().lut + RECONF_SOCKET.lut);
    }

    #[test]
    fn wrapper_state_queries() {
        let empty = WrapperState::Empty;
        assert_eq!(empty.configured_kind(), None);
        assert!(!empty.is_decoupled());
        let dec = WrapperState::Decoupled {
            previous: Some(AcceleratorKind::Mac),
        };
        assert!(dec.is_decoupled());
        let cfg = WrapperState::Configured(presp_accel::AccelInstance::new(AcceleratorKind::Mac));
        assert_eq!(cfg.configured_kind(), Some(AcceleratorKind::Mac));
    }
}
