//! ESP-style tile-based SoC simulator with PR-ESP's DPR extensions.
//!
//! The architecture follows Section III of the paper:
//!
//! * a 2D-mesh, multi-plane, packet-switched NoC connecting a grid of tiles
//!   ([`noc`], [`config`]);
//! * processor (Leon3), memory, auxiliary and shared-local-memory tiles form
//!   the **static part**; accelerators live either in static accelerator
//!   tiles or in **reconfigurable tiles** ([`tile`]);
//! * each reconfigurable tile wraps its accelerator in a common interface
//!   (load/store ports, memory-mapped registers, interrupt line) behind
//!   **decoupling logic** that detaches the wrapper from the NoC during
//!   reconfiguration;
//! * the auxiliary tile hosts the **DFX controller** and the ICAP: it
//!   fetches partial bitstreams from DRAM over the NoC, streams them through
//!   the ICAP, and raises an interrupt on completion ([`dfxc`]);
//! * a [`sim`]ulator advances virtual time (78 MHz SoC clock) through the
//!   shared `presp-events` kernel — every shared resource (NoC links, the
//!   DRAM channel, the ICAP, each tile) is a reservation
//!   [`presp_events::ResourceTimeline`] — accounts DMA transfers with
//!   link-level NoC contention, executes accelerator behaviors from
//!   `presp-accel` for real results, meters energy ([`energy`]), and can
//!   emit a structured trace of every operation
//!   ([`sim::Soc::attach_tracer`]).
//!
//! # Example
//!
//! ```
//! use presp_soc::config::SocConfig;
//! use presp_soc::sim::Soc;
//! use presp_accel::{AccelOp, AccelValue, AcceleratorKind};
//!
//! let config = SocConfig::grid_2x2_single(AcceleratorKind::Mac)?;
//! let mut soc = Soc::new(&config)?;
//! let tile = soc.accelerator_tiles()[0];
//! let run = soc.run_accelerator(tile, &AccelOp::Mac {
//!     a: vec![1.0, 2.0],
//!     b: vec![3.0, 4.0],
//! })?;
//! assert_eq!(run.value, AccelValue::Scalar(11.0));
//! # Ok::<(), presp_soc::Error>(())
//! ```

pub mod config;
pub mod dfxc;
pub mod energy;
pub mod error;
pub mod noc;
pub mod sim;
pub mod tile;

pub use presp_events::json;

pub use config::{SocConfig, TileCoord};
pub use error::Error;
pub use sim::Soc;
