//! Error type for the SoC simulator.

use crate::config::TileCoord;
use std::fmt;

/// Errors produced by SoC configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The SoC configuration is invalid (missing CPU/MEM/AUX, bad grid, ...).
    BadConfig {
        /// Human-readable description.
        detail: String,
    },
    /// An operation targeted a tile that does not exist.
    NoSuchTile {
        /// The offending coordinate.
        coord: TileCoord,
    },
    /// An operation targeted the wrong kind of tile (e.g. starting an
    /// accelerator on a memory tile).
    WrongTileKind {
        /// The targeted tile.
        coord: TileCoord,
        /// What the operation expected.
        expected: &'static str,
    },
    /// A reconfigurable tile was used while decoupled, or reconfigured while
    /// coupled/busy — a violation of the decoupler protocol.
    DecouplerProtocol {
        /// The offending tile.
        coord: TileCoord,
        /// What went wrong.
        detail: String,
    },
    /// An accelerator was started on an empty reconfigurable tile.
    TileEmpty {
        /// The targeted tile.
        coord: TileCoord,
    },
    /// Accelerator execution failed.
    Accel(presp_accel::Error),
    /// Bitstream/ICAP failure during reconfiguration.
    Fpga(presp_fpga::Error),
    /// An unknown CSR address was accessed.
    BadRegister {
        /// The offending register offset.
        offset: u64,
    },
    /// A region move targeted frames that belong to another tile or are
    /// otherwise occupied.
    RegionConflict {
        /// The tile whose move was refused.
        coord: TileCoord,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadConfig { detail } => write!(f, "bad SoC configuration: {detail}"),
            Error::NoSuchTile { coord } => write!(f, "no tile at {coord}"),
            Error::WrongTileKind { coord, expected } => {
                write!(f, "tile at {coord} is not a {expected} tile")
            }
            Error::DecouplerProtocol { coord, detail } => {
                write!(f, "decoupler protocol violation at {coord}: {detail}")
            }
            Error::TileEmpty { coord } => {
                write!(f, "reconfigurable tile at {coord} holds no accelerator")
            }
            Error::Accel(e) => write!(f, "accelerator error: {e}"),
            Error::Fpga(e) => write!(f, "configuration error: {e}"),
            Error::BadRegister { offset } => write!(f, "no register at offset {offset:#x}"),
            Error::RegionConflict { coord, detail } => {
                write!(f, "region move conflict at {coord}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Accel(e) => Some(e),
            Error::Fpga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<presp_accel::Error> for Error {
    fn from(e: presp_accel::Error) -> Error {
        Error::Accel(e)
    }
}

impl From<presp_fpga::Error> for Error {
    fn from(e: presp_fpga::Error) -> Error {
        Error::Fpga(e)
    }
}
