//! Energy metering.
//!
//! Accumulates Joules from explicitly-reported activity intervals (dynamic
//! energy of computing accelerators, DFXC/ICAP activity during
//! reconfiguration) plus time-proportional terms (per-tile leakage of every
//! provisioned fabric region and board-level base power). The Fig. 4
//! trade-off — fewer tiles: better J/frame, worse latency — falls out of
//! leakage and base power integrating over a longer frame time versus more
//! provisioned fabric leaking in parallel.

use presp_accel::power::{leakage_w, BASE_POWER_W, RECONFIG_POWER_W};
use presp_fpga::resources::Resources;
use serde::{Deserialize, Serialize};

pub use presp_events::cycles_to_seconds;

/// An energy meter for one simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    dynamic_j: f64,
    reconfig_j: f64,
    provisioned: Resources,
}

/// A finalized energy report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic energy of accelerator/CPU activity, Joules.
    pub dynamic_j: f64,
    /// Energy spent streaming bitstreams through the ICAP, Joules.
    pub reconfig_j: f64,
    /// Leakage of all provisioned fabric over the run, Joules.
    pub leakage_j: f64,
    /// Board-level base energy over the run, Joules.
    pub base_j: f64,
    /// Wall-clock of the run, seconds.
    pub elapsed_s: f64,
}

impl EnergyReport {
    /// Total energy, Joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.reconfig_j + self.leakage_j + self.base_j
    }

    /// Average power over the run, Watts.
    pub fn average_w(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.total_j() / self.elapsed_s
        } else {
            0.0
        }
    }
}

impl EnergyMeter {
    /// A fresh meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Registers fabric that is provisioned for the whole run (tiles,
    /// reconfigurable regions) and therefore leaks continuously.
    pub fn provision(&mut self, resources: Resources) {
        self.provisioned += resources;
    }

    /// Adds dynamic energy: `power_w` drawn for `cycles`.
    pub fn add_active(&mut self, power_w: f64, cycles: u64) {
        self.dynamic_j += power_w * cycles_to_seconds(cycles);
    }

    /// Adds reconfiguration energy for an ICAP transfer of `micros`.
    pub fn add_reconfiguration(&mut self, micros: f64) {
        self.reconfig_j += RECONFIG_POWER_W * micros * 1e-6;
    }

    /// Dynamic Joules accumulated so far.
    pub fn dynamic_j(&self) -> f64 {
        self.dynamic_j
    }

    /// Finalizes the meter over a run of `elapsed_cycles`.
    pub fn report(&self, elapsed_cycles: u64) -> EnergyReport {
        let elapsed_s = cycles_to_seconds(elapsed_cycles);
        EnergyReport {
            dynamic_j: self.dynamic_j,
            reconfig_j: self.reconfig_j,
            leakage_j: leakage_w(&self.provisioned) * elapsed_s,
            base_j: BASE_POWER_W * elapsed_s,
            elapsed_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_conversion_uses_78mhz() {
        assert!((cycles_to_seconds(78_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_scales_with_time_and_area() {
        let mut meter = EnergyMeter::new();
        meter.provision(Resources::luts(100_000));
        let short = meter.report(78_000_000).leakage_j;
        let long = meter.report(156_000_000).leakage_j;
        assert!((long - 2.0 * short).abs() < 1e-9);
    }

    #[test]
    fn dynamic_energy_accumulates() {
        let mut meter = EnergyMeter::new();
        meter.add_active(1.0, 78_000_000); // 1 W for 1 s
        assert!((meter.dynamic_j() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let mut meter = EnergyMeter::new();
        meter.provision(Resources::luts(50_000));
        meter.add_active(0.5, 78_000_000);
        meter.add_reconfiguration(1000.0);
        let r = meter.report(78_000_000);
        let total = r.dynamic_j + r.reconfig_j + r.leakage_j + r.base_j;
        assert!((r.total_j() - total).abs() < 1e-12);
        assert!(r.average_w() > 0.0);
    }

    #[test]
    fn zero_elapsed_has_zero_average_power() {
        let meter = EnergyMeter::new();
        assert_eq!(meter.report(0).average_w(), 0.0);
    }
}
