//! The experiment implementations, one function per paper table/figure.

use presp_accel::catalog::AcceleratorKind;
use presp_accel::latency::cycles_to_micros;
use presp_accel::AccelOp;
use presp_cad::flow::{CadFlow, Strategy};
use presp_core::design::{region_name, SocDesign};
use presp_core::flow::PrEspFlow;
use presp_core::platform::deploy_wami;
use presp_core::strategy::{choose_strategy, SizeClass};
use presp_events::{MemorySink, TraceEvent, Tracer};
use presp_soc::config::SocConfig;
use presp_soc::sim::Soc;
use presp_wami::frames::SceneGenerator;
use presp_wami::gradient::gradient;
use presp_wami::graph::WamiKernel;
use presp_wami::lucas_kanade::{hessian, steepest_descent};
use presp_wami::matrix::invert6;
use presp_wami::warp::AffineParams;

/// Table I: the strategy matrix as (row label, γ<1, γ≈1, γ>1) cells.
pub fn table1() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    vec![
        ("κ ≈ α_av", "-", "serial", "fully-parallel"),
        ("κ ≫ α_av", "serial", "semi-parallel", "semi/fully-parallel"),
        ("κ ≪ α_av", "-", "serial", "fully-parallel"),
    ]
}

/// Table II row: a component and its LUT count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Component name.
    pub name: String,
    /// LUT count.
    pub luts: u64,
}

/// Table II: resource utilization of the characterization accelerators,
/// the CPU tile and the static part.
pub fn table2() -> Vec<Table2Row> {
    use presp_soc::tile::TileKind;
    let mut rows: Vec<Table2Row> = AcceleratorKind::CHARACTERIZATION
        .iter()
        .map(|a| Table2Row {
            name: a.name(),
            luts: a.resources().lut,
        })
        .collect();
    rows.push(Table2Row {
        name: "cpu".into(),
        luts: AcceleratorKind::Cpu.resources().lut,
    });
    let static_full = TileKind::Cpu.static_resources()
        + TileKind::Mem.static_resources()
        + TileKind::Aux.static_resources();
    rows.push(Table2Row {
        name: "static".into(),
        luts: static_full.lut,
    });
    rows.push(Table2Row {
        name: "static (w/o cpu)".into(),
        luts: static_full.lut - TileKind::Cpu.static_resources().lut,
    });
    rows
}

/// One parallelism configuration of a Table III sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TauPoint {
    /// Number of concurrent P&R instances.
    pub tau: usize,
    /// Static-only pre-route minutes (`None` for serial).
    pub t_static: Option<f64>,
    /// `max{Ω}` minutes (`None` for serial).
    pub max_omega: Option<f64>,
    /// Total P&R minutes.
    pub total: f64,
}

/// One Table III row: a characterization SoC swept over τ.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// SoC name.
    pub soc: String,
    /// α_av in percent.
    pub alpha_av: f64,
    /// κ in percent.
    pub kappa: f64,
    /// γ.
    pub gamma: f64,
    /// The swept parallelism points.
    pub points: Vec<TauPoint>,
}

impl Table3Row {
    /// The τ with the smallest total time.
    pub fn best_tau(&self) -> usize {
        self.points
            .iter()
            .min_by(|a, b| a.total.partial_cmp(&b.total).expect("finite minutes"))
            .expect("non-empty sweep")
            .tau
    }
}

fn sweep(design: &SocDesign, taus: &[usize]) -> Table3Row {
    let spec = design.to_spec().expect("paper designs are valid");
    let (kappa, alpha, gamma) = spec.size_metrics();
    let cad = CadFlow::new();
    let n = spec.reconfigurable().len();
    let points = taus
        .iter()
        .map(|&tau| {
            let strategy = Strategy::from_tau(tau, n).expect("tau from the paper's sweep");
            let report = cad.run_pnr(&spec, strategy).expect("pnr runs");
            TauPoint {
                tau,
                t_static: report.t_static.map(|m| m.value()),
                max_omega: report.max_omega.map(|m| m.value()),
                total: report.wall.value(),
            }
        })
        .collect();
    Table3Row {
        soc: design.name.clone(),
        alpha_av: alpha * 100.0,
        kappa: kappa * 100.0,
        gamma,
        points,
    }
}

/// Table III: the Vivado characterization — the four SoCs under different
/// parallelism levels (simulated minutes from the calibrated CAD model).
pub fn table3() -> Vec<Table3Row> {
    vec![
        sweep(
            &SocDesign::characterization_soc1().unwrap(),
            &[1, 2, 3, 4, 5, 16],
        ),
        sweep(&SocDesign::characterization_soc2().unwrap(), &[1, 2, 3, 4]),
        sweep(&SocDesign::characterization_soc3().unwrap(), &[1, 2, 3]),
        sweep(
            &SocDesign::characterization_soc4().unwrap(),
            &[1, 2, 3, 4, 5],
        ),
    ]
}

/// One Table IV row: a WAMI SoC's P&R time per strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// SoC name.
    pub soc: String,
    /// Fig. 3 indices of the accelerators.
    pub accels: Vec<usize>,
    /// Size class.
    pub class: SizeClass,
    /// α_av (%), κ (%), γ.
    pub metrics: (f64, f64, f64),
    /// Strategy chosen by PR-ESP.
    pub chosen: Strategy,
    /// Fully-parallel (t_static, max Ω, total).
    pub fully: (f64, f64, f64),
    /// Semi-parallel τ=2 (t_static, max Ω, total).
    pub semi: (f64, f64, f64),
    /// Serial total.
    pub serial: f64,
}

impl Table4Row {
    /// Wall minutes of the strategy PR-ESP chose.
    pub fn chosen_total(&self) -> f64 {
        match self.chosen {
            Strategy::Serial => self.serial,
            Strategy::SemiParallel { .. } => self.semi.2,
            Strategy::FullyParallel => self.fully.2,
        }
    }

    /// The smallest total over the three strategies.
    pub fn best_total(&self) -> f64 {
        self.serial.min(self.semi.2).min(self.fully.2)
    }
}

/// The four Table IV WAMI SoCs.
pub fn table4_designs() -> Vec<(SocDesign, Vec<usize>)> {
    vec![
        (
            SocDesign::wami_table4("soc_a", &[4, 8, 10, 9]).unwrap(),
            vec![4, 8, 10, 9],
        ),
        (
            SocDesign::wami_table4("soc_b", &[2, 3, 11, 1]).unwrap(),
            vec![2, 3, 11, 1],
        ),
        (
            SocDesign::wami_table4("soc_c", &[7, 11, 8, 2]).unwrap(),
            vec![7, 11, 8, 2],
        ),
        (
            SocDesign::wami_table4("soc_d", &[4, 5, 9, 2]).unwrap(),
            vec![4, 5, 9, 2],
        ),
    ]
}

/// Table IV: P&R parallelism evaluation on the WAMI SoCs.
pub fn table4() -> Vec<Table4Row> {
    let cad = CadFlow::new();
    table4_designs()
        .into_iter()
        .map(|(design, accels)| {
            let spec = design.to_spec().unwrap();
            let n = spec.reconfigurable().len();
            let (kappa, alpha, gamma) = spec.size_metrics();
            let (class, chosen) = choose_strategy(&spec).unwrap();
            let run = |strategy: Strategy| {
                let r = cad.run_pnr(&spec, strategy).expect("pnr runs");
                (
                    r.t_static.map(|m| m.value()).unwrap_or(0.0),
                    r.max_omega.map(|m| m.value()).unwrap_or(0.0),
                    r.wall.value(),
                )
            };
            let fully = run(Strategy::FullyParallel);
            let semi = run(Strategy::from_tau(2, n).unwrap());
            let serial = run(Strategy::Serial).2;
            Table4Row {
                soc: design.name.clone(),
                accels,
                class,
                metrics: (alpha * 100.0, kappa * 100.0, gamma),
                chosen,
                fully,
                semi,
                serial,
            }
        })
        .collect()
}

/// One Table V row: PR-ESP full flow vs the monolithic baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// SoC name.
    pub soc: String,
    /// PR-ESP synthesis wall minutes.
    pub synth: f64,
    /// Static-only P&R minutes (0 for serial).
    pub t_static: f64,
    /// `max{Ω}` minutes (0 for serial).
    pub max_omega: f64,
    /// PR-ESP end-to-end minutes.
    pub total: f64,
    /// Chosen strategy.
    pub strategy: Strategy,
    /// Monolithic synthesis minutes.
    pub mono_synth: f64,
    /// Monolithic P&R minutes.
    pub mono_pnr: f64,
    /// Monolithic end-to-end minutes.
    pub mono_total: f64,
}

impl Table5Row {
    /// Improvement of PR-ESP over the monolithic flow, percent (negative
    /// when PR-ESP is slower).
    pub fn improvement_pct(&self) -> f64 {
        (self.mono_total - self.total) / self.mono_total * 100.0
    }
}

/// Table V: compile-time comparison of PR-ESP against the standard
/// (monolithic) Xilinx DPR flow on SoC_A–SoC_D.
pub fn table5() -> Vec<Table5Row> {
    let flow = PrEspFlow::new();
    table4_designs()
        .into_iter()
        .map(|(design, _)| {
            let out = flow.run(&design).expect("flow runs");
            Table5Row {
                soc: design.name.clone(),
                synth: out.report.synth.wall.value(),
                t_static: out.report.pnr.t_static.map(|m| m.value()).unwrap_or(0.0),
                max_omega: out.report.pnr.max_omega.map(|m| m.value()).unwrap_or(0.0),
                total: out.report.total.value(),
                strategy: out.strategy,
                mono_synth: out.monolithic.synth.value(),
                mono_pnr: out.monolithic.pnr.value(),
                mono_total: out.monolithic.total.value(),
            }
        })
        .collect()
}

/// One Table VI row: a reconfigurable tile's kernels and pbs size.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// SoC name.
    pub soc: String,
    /// Tile label (RT_1, RT_2, ...).
    pub tile: String,
    /// Fig. 3 kernel indices allocated to the tile.
    pub kernels: Vec<usize>,
    /// Mean compressed partial-bitstream size, KB.
    pub pbs_kb: f64,
}

/// Table VI: accelerator partitioning and partial bitstream sizes for
/// SoC_X, SoC_Y and SoC_Z.
///
/// The `pbs (KB)` column is cross-checked against the flow's structured
/// trace: the mean of the [`TraceEvent::BitstreamGenerated`] sizes per
/// region must reproduce [`presp_core::flow::FlowOutput::mean_pbs_kb`]
/// exactly.
pub fn table6() -> Vec<Table6Row> {
    let flow = PrEspFlow::new();
    let designs = [
        SocDesign::wami_soc_x().unwrap(),
        SocDesign::wami_soc_y().unwrap(),
        SocDesign::wami_soc_z().unwrap(),
    ];
    let mut rows = Vec::new();
    for design in designs {
        let sink = MemorySink::shared();
        let mut tracer = Tracer::to_sink(sink.clone());
        let out = flow.run_traced(&design, &mut tracer).expect("flow runs");
        let records = presp_events::sink::drain(&sink);
        for (i, (coord, accels)) in design.tile_accels.iter().enumerate() {
            let region = region_name(*coord);
            let pbs_kb = out.mean_pbs_kb(&region).expect("region has bitstreams");
            let traced: Vec<f64> = records
                .iter()
                .filter_map(|r| match &r.event {
                    TraceEvent::BitstreamGenerated {
                        region: rg, bytes, ..
                    } if *rg == region => Some(*bytes as f64),
                    _ => None,
                })
                .collect();
            let traced_kb = traced.iter().sum::<f64>() / traced.len() as f64 / 1024.0;
            assert!(
                (traced_kb - pbs_kb).abs() < 1e-9,
                "{region}: trace says {traced_kb} KB, flow says {pbs_kb} KB"
            );
            rows.push(Table6Row {
                soc: design.name.clone(),
                tile: format!("RT_{}", i + 1),
                kernels: accels
                    .iter()
                    .filter_map(|a| match a {
                        AcceleratorKind::Wami(k) => Some(k.index()),
                        _ => None,
                    })
                    .collect(),
                pbs_kb,
            });
        }
    }
    rows
}

/// One Fig. 3 annotation: a WAMI accelerator's LUTs and execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Fig. 3 index.
    pub index: usize,
    /// Kernel name.
    pub name: &'static str,
    /// LUT count.
    pub luts: u64,
    /// Execution time on the 2×2 profiling SoC, microseconds.
    pub micros: f64,
}

/// Fig. 3: profiles every WAMI accelerator (LUTs + execution time) on a
/// 2×2 SoC with a single accelerator tile, frame size `size`×`size`.
pub fn fig3(size: usize) -> Vec<Fig3Row> {
    let mut scene = SceneGenerator::new(size, size, 42);
    let raw = scene.next_frame();
    let gray_prev = scene.next_frame_gray();
    let gray = scene.next_frame_gray();
    let rgb = presp_wami::debayer::debayer(&raw).expect("debayer");
    let grads = gradient(&gray_prev).expect("gradient");
    let sd = steepest_descent(&grads).expect("sd");
    let hess = hessian(&sd);
    let h_inv = invert6(&hess).expect("wami scenes are textured");
    let b = presp_wami::lucas_kanade::sd_update(&sd, &gray).expect("sd update");
    let params = AffineParams::translation(0.4, -0.3);
    let model = Box::new(presp_wami::change_detection::ChangeDetector::new(
        size,
        size,
        presp_wami::change_detection::GmmConfig::default(),
    ));

    WamiKernel::ALL
        .iter()
        .map(|kernel| {
            let op = match kernel {
                WamiKernel::Debayer => AccelOp::Debayer { raw: raw.clone() },
                WamiKernel::Grayscale => AccelOp::Grayscale { rgb: rgb.clone() },
                WamiKernel::Gradient => AccelOp::Gradient {
                    image: gray_prev.clone(),
                },
                WamiKernel::Warp => AccelOp::Warp {
                    image: gray.clone(),
                    params,
                },
                WamiKernel::Subtract => AccelOp::Subtract {
                    a: gray.clone(),
                    b: gray_prev.clone(),
                },
                WamiKernel::SteepestDescent => AccelOp::SteepestDescent {
                    grad: grads.clone(),
                },
                WamiKernel::Hessian => AccelOp::Hessian { sd: sd.clone() },
                WamiKernel::SdUpdate => AccelOp::SdUpdate {
                    sd: sd.clone(),
                    error: gray.clone(),
                },
                WamiKernel::MatrixInvert => AccelOp::MatrixInvert { m: hess },
                WamiKernel::DeltaP => AccelOp::DeltaP { h_inv, b, params },
                WamiKernel::WarpIwxp => AccelOp::Warp {
                    image: gray.clone(),
                    params,
                },
                WamiKernel::ChangeDetection => AccelOp::ChangeDetection {
                    frame: gray.clone(),
                    model: model.clone(),
                },
            };
            let kind = AcceleratorKind::Wami(*kernel);
            let config = SocConfig::grid_2x2_single(kind).expect("2x2 profile soc");
            let mut soc = Soc::new(&config).expect("soc boots");
            let tile = soc.accelerator_tiles()[0];
            let run = soc.run_accelerator(tile, &op).expect("profiling run");
            Fig3Row {
                index: kernel.index(),
                name: kernel.name(),
                luts: kind.resources().lut,
                micros: cycles_to_micros(run.latency()),
            }
        })
        .collect()
}

/// One prefetch-ablation row: the same deployment with interleaved vs
/// non-interleaved reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchAblationRow {
    /// SoC name.
    pub soc: String,
    /// ms/frame with prefetch (interleaved reconfiguration).
    pub prefetch_ms: f64,
    /// ms/frame without prefetch (non-interleaved).
    pub no_prefetch_ms: f64,
}

impl PrefetchAblationRow {
    /// Speedup of interleaved over non-interleaved reconfiguration.
    pub fn speedup(&self) -> f64 {
        self.no_prefetch_ms / self.prefetch_ms
    }
}

/// Ablation: interleaved (prefetch) vs non-interleaved reconfiguration on
/// the Table VI deployments — quantifies the paper's observation that
/// SoC_X suffers "a higher non-interleaved reconfiguration".
pub fn prefetch_ablation(
    frames: usize,
    size: usize,
    lk_iterations: usize,
) -> Vec<PrefetchAblationRow> {
    let flow = PrEspFlow::new();
    [
        SocDesign::wami_soc_x().unwrap(),
        SocDesign::wami_soc_z().unwrap(),
    ]
    .into_iter()
    .map(|design| {
        let out = flow.run(&design).expect("flow runs");
        let run = |prefetch: bool| -> f64 {
            let mut app = deploy_wami(&design, &out, lk_iterations)
                .expect("deploys")
                .with_prefetch(prefetch);
            let mut scene = SceneGenerator::new(size, size, 5);
            let mut cycles = 0;
            for i in 0..frames {
                let r = app.process_frame(&scene.next_frame()).expect("frame");
                if i > 0 {
                    cycles += r.latency();
                }
            }
            cycles_to_micros(cycles) / 1000.0 / (frames - 1) as f64
        };
        PrefetchAblationRow {
            soc: design.name.clone(),
            prefetch_ms: run(true),
            no_prefetch_ms: run(false),
        }
    })
    .collect()
}

/// One compression-ablation row: a partial bitstream raw vs compressed.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionAblationRow {
    /// Region + accelerator label.
    pub module: String,
    /// Raw pbs size, KB.
    pub raw_kb: f64,
    /// Compressed pbs size, KB.
    pub compressed_kb: f64,
    /// Raw ICAP load time, ms.
    pub raw_ms: f64,
    /// Compressed ICAP load time, ms.
    pub compressed_ms: f64,
}

/// Ablation: Vivado-style bitstream compression on vs off, measured as pbs
/// size and ICAP streaming latency for every SoC_Y module — the mechanism
/// behind the paper's choice "to reduce the memory access latency during
/// reconfiguration".
pub fn compression_ablation() -> Vec<CompressionAblationRow> {
    use presp_fpga::icap::Icap;
    let design = SocDesign::wami_soc_y().unwrap();
    let raw_out = PrEspFlow::new()
        .with_compression(false)
        .run(&design)
        .expect("raw flow");
    let comp_out = PrEspFlow::new().run(&design).expect("compressed flow");
    let device = design.part.device();
    raw_out
        .partial_bitstreams
        .iter()
        .zip(&comp_out.partial_bitstreams)
        .map(|(raw, comp)| {
            assert_eq!(raw.kind, comp.kind);
            let mut icap = Icap::new(&device);
            let raw_report = icap.load(&raw.bitstream).expect("raw pbs loads");
            let comp_report = icap.load(&comp.bitstream).expect("compressed pbs loads");
            CompressionAblationRow {
                module: format!("{}/{}", raw.region, raw.kind.name()),
                raw_kb: raw.bitstream.size_bytes() as f64 / 1024.0,
                compressed_kb: comp.bitstream.size_bytes() as f64 / 1024.0,
                raw_ms: raw_report.micros / 1000.0,
                compressed_ms: comp_report.micros / 1000.0,
            }
        })
        .collect()
}

/// One Fig. 4 bar pair: a deployed WAMI SoC's latency and energy.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// SoC name.
    pub soc: String,
    /// Reconfigurable tile count.
    pub tiles: usize,
    /// Steady-state execution time per frame, milliseconds.
    pub ms_per_frame: f64,
    /// Energy per frame, millijoules.
    pub mj_per_frame: f64,
    /// Reconfigurations per frame (steady state).
    pub reconfigs_per_frame: f64,
    /// Average change-detection output over the run (sanity signal).
    pub mean_changed_pixels: f64,
    /// Readback-scrub overhead per frame, milliseconds: one full sweep of
    /// every configured region after each frame, SEU-free, so the number
    /// is the pure cost of the integrity protection.
    pub scrub_ms_per_frame: f64,
    /// Cycles per frame the scrub sweeps spent waiting on the shared ICAP
    /// (contention between scrubbing and reconfiguration).
    pub scrub_wait_cycles_per_frame: f64,
}

/// Fig. 4: total execution time and energy efficiency of the WAMI
/// deployments SoC_X, SoC_Y and SoC_Z.
///
/// `frames` raw frames of `size`×`size` pixels are processed without
/// pipelining; per-frame numbers average over the steady-state frames
/// (the first frame only trains the pipeline).
pub fn fig4(frames: usize, size: usize, lk_iterations: usize) -> Vec<Fig4Row> {
    assert!(
        frames >= 3,
        "need at least 3 frames for a steady-state window"
    );
    let flow = PrEspFlow::new();
    let designs = [
        SocDesign::wami_soc_x().unwrap(),
        SocDesign::wami_soc_y().unwrap(),
        SocDesign::wami_soc_z().unwrap(),
    ];
    designs
        .into_iter()
        .map(|design| {
            let out = flow.run(&design).expect("flow runs");
            let mut app = deploy_wami(&design, &out, lk_iterations).expect("deploys");
            let mut scene = SceneGenerator::new(size, size, 2023);
            let mut reports = Vec::new();
            let mut scrub_cycles = 0u64;
            let mut scrub_waited = 0u64;
            for _ in 0..frames {
                reports.push(app.process_frame(&scene.next_frame()).expect("frame runs"));
                // Scrub-overhead accounting: a full readback sweep after
                // every frame, like a background scrubber on a per-frame
                // period.
                let mgr = app.manager_mut();
                let at = mgr.makespan();
                for (_, scrub) in mgr.scrub_all_at(at).expect("scrub sweeps") {
                    scrub_cycles += scrub.end - scrub.start;
                    scrub_waited += scrub.waited;
                }
            }
            let steady = &reports[1..];
            let cycles: u64 = steady.iter().map(|r| r.latency()).sum();
            let reconfigs: u64 = steady.iter().map(|r| r.reconfigurations).sum();
            let changed: usize = steady.iter().map(|r| r.changed_pixels).sum();
            let manager = app.into_manager();
            let energy = manager.soc().energy_report();
            let n = steady.len() as f64;
            Fig4Row {
                soc: design.name.clone(),
                tiles: design.tile_accels.len(),
                ms_per_frame: cycles_to_micros(cycles) / 1000.0 / n,
                mj_per_frame: energy.total_j() * 1000.0 / (reports.len() as f64),
                reconfigs_per_frame: reconfigs as f64 / n,
                mean_changed_pixels: changed as f64 / n,
                scrub_ms_per_frame: cycles_to_micros(scrub_cycles)
                    / 1000.0
                    / (reports.len() as f64),
                scrub_wait_cycles_per_frame: scrub_waited as f64 / (reports.len() as f64),
            }
        })
        .collect()
}
