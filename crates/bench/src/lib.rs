//! Experiment regenerators for every table and figure in the PR-ESP paper,
//! shared by the `table*`/`fig*` binaries, the Criterion benches and the
//! integration tests.

pub mod experiments;
pub mod export;
pub mod render;
