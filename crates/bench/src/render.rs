//! Minimal ASCII table rendering for the experiment binaries.

/// Renders a table with a header row, column-aligned.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    line(
        &mut out,
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
    );
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let out = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer"));
    }
}
