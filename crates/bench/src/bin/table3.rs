//! Regenerates Table III: the Vivado characterization under different
//! levels of P&R parallelism (simulated minutes).

use presp_bench::{experiments, export, render};

fn main() {
    let rows = experiments::table3();
    if export::json_requested() {
        println!("{}", export::table3_json(&rows).pretty());
        return;
    }
    println!("Table III — characterization of the CAD engine under different parallelism\n");
    for row in rows {
        println!(
            "{}:  α_av = {:.1}%  κ = {:.1}%  γ = {:.2}   (best: τ = {})",
            row.soc,
            row.alpha_av,
            row.kappa,
            row.gamma,
            row.best_tau()
        );
        let cells: Vec<Vec<String>> = row
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("τ={}", p.tau),
                    p.t_static.map_or("-".into(), |v| format!("{v:.0}")),
                    p.max_omega.map_or("-".into(), |v| format!("{v:.0}")),
                    format!("{:.0}", p.total),
                ]
            })
            .collect();
        println!(
            "{}",
            render::table(&["", "t_static", "max{Ω}", "T_tot"], &cells)
        );
    }
}
