//! Regenerates Table IV: P&R parallelism evaluation on the WAMI SoCs.

use presp_bench::{experiments, export, render};

fn main() {
    let rows = experiments::table4();
    if export::json_requested() {
        println!("{}", export::table4_json(&rows).pretty());
        return;
    }
    println!("Table IV — evaluation of the P&R parallelism in PR-ESP (minutes)\n");
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                format!("{:?}", r.accels),
                format!("{}", r.class),
                format!("{:.1}", r.metrics.0),
                format!("{:.1}", r.metrics.1),
                format!("{:.2}", r.metrics.2),
                format!("{:.0}+{:.0}={:.0}", r.fully.0, r.fully.1, r.fully.2),
                format!("{:.0}+{:.0}={:.0}", r.semi.0, r.semi.1, r.semi.2),
                format!("{:.0}", r.serial),
                format!("{} ({:.0})", r.chosen, r.chosen_total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "SoC",
                "accs",
                "class",
                "α_av%",
                "κ%",
                "γ",
                "fully-par",
                "semi-par",
                "serial",
                "PR-ESP choice"
            ],
            &cells
        )
    );
}
