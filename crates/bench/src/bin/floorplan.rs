//! Amorphous-floorplanning benchmarks: the region allocator, bitstream
//! relocation, and the online defragmenter, measured as three cells.
//!
//! * **allocator** — seeded allocate/release churn of mixed-width CLB
//!   regions over the full VC707 column model (143 columns), once per
//!   fit policy. Reports operations/s, the refusal count, and the
//!   external fragmentation plus compaction-plan length the churn
//!   leaves behind.
//! * **relocation** — relocates a multi-frame partial bitstream between
//!   two same-kind columns back and forth, re-deriving the ECC syndrome
//!   and stream CRC each hop. Reports frames relocated per second; this
//!   is the `--check` gate's metric (pure CPU, no thread scheduling in
//!   the loop).
//! * **repack** — the reject-to-admit arc from DESIGN.md §16 driven
//!   end to end through the threaded scheduler: pack a 7-tile window,
//!   open non-adjacent holes, get the 3-wide GEMM refused, time one
//!   daemon repack pass, and confirm the retry is admitted. Reports the
//!   pass latency and the moves/frames it applied.
//!
//! Writes `BENCH_floorplan.json` (schema `presp-bench-floorplan/v1`);
//! `--json` prints the same document; `--smoke` shrinks the churn and
//! relocation reps for CI; `--check` re-runs only the relocation cell
//! at full size and fails when frames/s regressed more than 20 %
//! against the committed `BENCH_floorplan.json`.

use presp_accel::AcceleratorKind;
use presp_bench::export;
use presp_events::json::JsonValue;
use presp_floorplan::{FitPolicy, RegionAllocator};
use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp_fpga::fabric::{ColumnKind, Device};
use presp_fpga::fault::SplitMix64;
use presp_fpga::frame::FrameAddress;
use presp_fpga::part::FpgaPart;
use presp_runtime::defrag::Defragmenter;
use presp_runtime::error::Error;
use presp_runtime::registry::BitstreamRegistry;
use presp_runtime::threaded::ThreadedManager;
use presp_soc::config::SocConfig;
use presp_soc::sim::Soc;
use std::time::Instant;

/// Allowed relocation frames/s regression in `--check` mode.
const CHECK_TOLERANCE: f64 = 0.20;
/// Seed for the allocator churn (the cell is deterministic op-for-op).
const CHURN_SEED: u64 = 0x0F10_0E0F_10F1_000E;

struct Workload {
    /// Allocate/release operations per churn cell.
    churn_ops: usize,
    /// Relocation hops (each hop rewrites every frame).
    reloc_reps: usize,
    /// Minor frames per column in the relocated bitstream.
    reloc_frames: u32,
}

// ---------------------------------------------------------------------------
// Cell 1: allocator churn.

struct ChurnCell {
    policy: FitPolicy,
    ops: u64,
    refusals: u64,
    elapsed_secs: f64,
    external_fragmentation: f64,
    free_columns: u64,
    compaction_moves: u64,
}

/// Seeded allocate/release churn: keep up to 24 live leases of width
/// 1–4 CLB columns, releasing a random one whenever the table is full
/// or the coin says so. Refusals (no span fits) count as operations —
/// they are exactly the events the defragmenter exists to convert.
fn run_churn(device: &Device, policy: FitPolicy, ops: usize) -> ChurnCell {
    let mut alloc = RegionAllocator::new(device, policy);
    let mut rng = SplitMix64::new(CHURN_SEED);
    let mut live: Vec<u64> = Vec::new();
    let mut refusals = 0u64;
    let start = Instant::now();
    for _ in 0..ops {
        let release = !live.is_empty() && (live.len() >= 24 || rng.next_u64().is_multiple_of(3));
        if release {
            let id = live.swap_remove((rng.next_u64() as usize) % live.len());
            assert!(alloc.release(id), "released a lease the allocator lost");
        } else {
            let width = 1 + (rng.next_u64() % 4) as usize;
            let pattern = vec![ColumnKind::Clb; width];
            match alloc.allocate(&pattern) {
                Some(lease) => live.push(lease.id),
                None => refusals += 1,
            }
        }
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let stats = alloc.stats();
    ChurnCell {
        policy,
        ops: ops as u64,
        refusals,
        elapsed_secs,
        external_fragmentation: stats.external_fragmentation(),
        free_columns: stats.free_columns as u64,
        compaction_moves: alloc.plan_compaction().len() as u64,
    }
}

// ---------------------------------------------------------------------------
// Cell 2: bitstream relocation.

struct RelocCell {
    frames: u64,
    reps: u64,
    elapsed_secs: f64,
}

impl RelocCell {
    fn frames_per_sec(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            (self.frames * self.reps) as f64 / self.elapsed_secs
        }
    }
}

/// A deep single-column CLB bitstream: `frames` minor frames at `col`.
fn column_bitstream(device: &Device, col: u32, frames: u32) -> Bitstream {
    let mut b = BitstreamBuilder::new(device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    for minor in 0..frames {
        b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
            .expect("canonical frame address is in range");
    }
    b.build(true)
}

/// Hop a deep bitstream between the fabric's first and last CLB columns,
/// re-deriving ECC and CRC on every hop (that is what `relocate` does).
fn run_relocation(device: &Device, wl: &Workload) -> RelocCell {
    let clb = |k: ColumnKind| k == ColumnKind::Clb;
    let first = (0..device.columns())
        .find(|&c| clb(device.column_kind(c)))
        .expect("the fabric model has CLB columns") as u32;
    let last = (0..device.columns())
        .rfind(|&c| clb(device.column_kind(c)))
        .expect("the fabric model has CLB columns") as u32;
    assert!(last > first, "need two distinct CLB columns to hop between");
    let delta = (last - first) as i64;
    let mut current = column_bitstream(device, first, wl.reloc_frames);
    let frames = current.frame_count() as u64;
    let start = Instant::now();
    for rep in 0..wl.reloc_reps {
        let hop = if rep % 2 == 0 { delta } else { -delta };
        current = current
            .relocate(device, hop)
            .expect("CLB-to-CLB hop relocates");
        assert_eq!(current.frame_count() as u64, frames);
    }
    RelocCell {
        frames,
        reps: wl.reloc_reps as u64,
        elapsed_secs: start.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// Cell 3: the runtime repack arc.

struct RepackCell {
    repack_micros: u64,
    moves: u64,
    frames_moved: u64,
    oversized_rejected: u64,
    repack_admitted: u64,
}

fn deep_bitstream(soc: &Soc, col: u32, frames: u32) -> Bitstream {
    column_bitstream(&soc.part().device(), col, frames)
}

fn span_bitstream(soc: &Soc, cols: std::ops::Range<u32>, frames: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    for col in cols {
        for minor in 0..frames {
            b.add_frame(FrameAddress::new(0, col, minor), vec![col + minor; words])
                .expect("canonical frame address is in range");
        }
    }
    b.build(true)
}

/// The measured reject-to-admit arc: seven 1-column MAC loads pack the
/// `1..12` window, a SORT swap opens non-adjacent holes, the 3-column
/// GEMM is refused, one timed daemon pass heals the fragmentation, and
/// the retry is admitted.
fn run_repack() -> RepackCell {
    let cfg = SocConfig::grid_reconf("bench_floorplan", 7).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for &tile in &tiles {
        registry
            .register(tile, AcceleratorKind::Mac, deep_bitstream(&soc, 1, 4))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, deep_bitstream(&soc, 3, 4))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Gemm, span_bitstream(&soc, 7..10, 4))
            .unwrap();
    }
    let mgr = ThreadedManager::spawn(soc, registry);
    mgr.enable_regions_within(FitPolicy::FirstFit, 1..12)
        .unwrap();
    let defrag = Defragmenter::attach(&mgr);
    for &t in &tiles {
        mgr.reconfigure_blocking(t, AcceleratorKind::Mac).unwrap();
    }
    mgr.reconfigure_blocking(tiles[5], AcceleratorKind::Sort)
        .unwrap();
    let refused = mgr.reconfigure_blocking(tiles[1], AcceleratorKind::Gemm);
    assert!(
        matches!(refused, Err(Error::RegionUnavailable { .. })),
        "the fragmented window admitted a 3-wide region: {refused:?}"
    );
    let start = Instant::now();
    let report = defrag.repack_blocking().expect("repack pass completes");
    let repack_micros = start.elapsed().as_micros() as u64;
    mgr.reconfigure_blocking(tiles[1], AcceleratorKind::Gemm)
        .expect("repacked window admits the retry");
    let stats = mgr.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    defrag.shutdown();
    mgr.shutdown();
    RepackCell {
        repack_micros,
        moves: report.moves,
        frames_moved: report.frames_moved,
        oversized_rejected: stats.oversized_rejected,
        repack_admitted: stats.repack_admitted,
    }
}

// ---------------------------------------------------------------------------
// Document and modes.

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn int(v: u64) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn policy_token(policy: FitPolicy) -> &'static str {
    match policy {
        FitPolicy::FirstFit => "first_fit",
        FitPolicy::BestFit => "best_fit",
    }
}

fn document(churn: &[ChurnCell], reloc: &RelocCell, repack: &RepackCell) -> JsonValue {
    obj(vec![
        ("schema", s("presp-bench-floorplan/v1")),
        (
            "allocator",
            JsonValue::Array(
                churn
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("policy", s(policy_token(c.policy))),
                            ("ops", int(c.ops)),
                            (
                                "ops_per_sec",
                                num(if c.elapsed_secs == 0.0 {
                                    0.0
                                } else {
                                    c.ops as f64 / c.elapsed_secs
                                }),
                            ),
                            ("refusals", int(c.refusals)),
                            ("external_fragmentation", num(c.external_fragmentation)),
                            ("free_columns", int(c.free_columns)),
                            ("compaction_moves", int(c.compaction_moves)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "relocation",
            obj(vec![
                ("frames", int(reloc.frames)),
                ("reps", int(reloc.reps)),
                ("frames_per_sec", num(reloc.frames_per_sec())),
            ]),
        ),
        (
            "repack",
            obj(vec![
                ("repack_micros", int(repack.repack_micros)),
                ("moves", int(repack.moves)),
                ("frames_moved", int(repack.frames_moved)),
                ("oversized_rejected", int(repack.oversized_rejected)),
                ("repack_admitted", int(repack.repack_admitted)),
            ]),
        ),
    ])
}

/// The committed relocation frames/s figure from `BENCH_floorplan.json`.
fn committed_frames_per_sec() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_floorplan.json").ok()?;
    let doc = presp_events::json::parse(&text).ok()?;
    match doc.get("relocation")?.get("frames_per_sec")? {
        JsonValue::Number(n) => Some(*n),
        _ => None,
    }
}

/// Perf-smoke gate: re-measure only the relocation cell at full size and
/// fail when frames/s regressed more than [`CHECK_TOLERANCE`] against
/// the committed document. Exits the process with the verdict.
fn run_check(device: &Device, wl: &Workload) -> ! {
    let Some(committed) = committed_frames_per_sec() else {
        eprintln!("BENCH_floorplan.json has no committed relocation frames_per_sec");
        std::process::exit(1);
    };
    let fresh = run_relocation(device, wl).frames_per_sec();
    let floor = committed * (1.0 - CHECK_TOLERANCE);
    println!(
        "perf check: fresh relocation {fresh:.0} frames/s vs committed {committed:.0} \
         frames/s (floor {floor:.0})"
    );
    if fresh < floor {
        eprintln!(
            "FAIL: relocation frames/s regressed more than {:.0} %",
            100.0 * CHECK_TOLERANCE
        );
        std::process::exit(1);
    }
    println!("OK");
    std::process::exit(0);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check");
    let full = Workload {
        churn_ops: 200_000,
        reloc_reps: 2_000,
        reloc_frames: 36,
    };
    let wl = if smoke {
        Workload {
            churn_ops: 20_000,
            reloc_reps: 200,
            reloc_frames: 36,
        }
    } else {
        Workload { ..full }
    };
    let device = FpgaPart::Vc707.device();
    if check {
        // The gate compares against the committed full-workload figure.
        run_check(&device, &full);
    }

    let churn = [
        run_churn(&device, FitPolicy::FirstFit, wl.churn_ops),
        run_churn(&device, FitPolicy::BestFit, wl.churn_ops),
    ];
    let reloc = run_relocation(&device, &wl);
    let repack = run_repack();
    let doc = document(&churn, &reloc, &repack);
    export::write_json("BENCH_floorplan.json", &doc).expect("write BENCH_floorplan.json");

    if export::json_requested() {
        println!("{}", doc.pretty());
        return;
    }

    println!(
        "Amorphous floorplanning — {} ({} columns), churn {} ops, relocation {} frames x {} hops\n",
        device.part(),
        device.columns(),
        wl.churn_ops,
        reloc.frames,
        reloc.reps
    );
    for c in &churn {
        println!(
            "allocator {:>9}: {:>9.0} ops/s, {:>5} refusals, frag {:.2}, \
             {} free cols, {} compaction moves",
            policy_token(c.policy),
            c.ops as f64 / c.elapsed_secs,
            c.refusals,
            c.external_fragmentation,
            c.free_columns,
            c.compaction_moves
        );
    }
    println!(
        "relocation: {:.0} frames/s ({} frames x {} hops in {:.2}s)",
        reloc.frames_per_sec(),
        reloc.frames,
        reloc.reps,
        reloc.elapsed_secs
    );
    println!(
        "repack: {} move(s), {} frame(s) relocated in {} us; \
         reject-to-admit {} -> {}",
        repack.moves,
        repack.frames_moved,
        repack.repack_micros,
        repack.oversized_rejected,
        repack.repack_admitted
    );
    println!("wrote BENCH_floorplan.json");
}
