//! Runtime throughput of the sharded DPR scheduler: a mixed open-loop
//! workload (reconfigure bursts, ensure-loaded executes, plain runs)
//! from several client threads over four independent tiles, replayed
//! against a single-worker pool and a four-worker pool.
//!
//! The ticket gate makes the virtual-time outcomes identical for any
//! worker count; what the worker pool buys is wall-clock overlap of the
//! behavioral evaluation, measured here as requests/s, queue-wait
//! percentiles, and the coalesce / bitstream-cache hit rates. Writes
//! `BENCH_runtime.json`; `--json` prints the same document; `--smoke`
//! shrinks the workload for CI.
//!
//! Evaluation latency is emulated (`PRESP_BENCH_EVAL_DELAY_MICROS`, set
//! below): each run/execute's lock-free prepare stage blocks for a fixed
//! wall-clock delay, standing in for the device/RTL evaluation a real
//! deployment would wait on. Blocking time overlaps across workers
//! regardless of the host's core count, so the reported speedup measures
//! the scheduler's lock structure, not the benchmark machine. On a
//! multi-core host the CPU-bound sort payload parallelizes on top.

use presp_accel::{AccelOp, AcceleratorKind};
use presp_bench::{export, render};
use presp_events::json::JsonValue;
use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp_fpga::frame::FrameAddress;
use presp_runtime::registry::BitstreamRegistry;
use presp_runtime::threaded::ThreadedManager;
use presp_runtime::RecoveryPolicy;
use presp_soc::config::{SocConfig, TileCoord};
use presp_soc::sim::Soc;
use std::time::Instant;

const TILES: usize = 4;
const CLIENTS: usize = 4;

struct Workload {
    rounds: usize,
    sort_len: usize,
}

struct RunResult {
    workers: usize,
    requests: u64,
    elapsed_secs: f64,
    p50_wait_micros: u64,
    p99_wait_micros: u64,
    coalesce_rate: f64,
    cache_hit_rate: f64,
    reconfigurations: u64,
    makespan: u64,
}

impl RunResult {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs
    }
}

fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, 1 + col % 60, 0), vec![col; words])
        .unwrap();
    b.build(true)
}

fn boot(workers: usize) -> (ThreadedManager, Vec<TileCoord>) {
    let cfg = SocConfig::grid_3x3_reconf("throughput", TILES).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let manager =
        ThreadedManager::spawn_with_workers(soc, registry, RecoveryPolicy::default(), workers);
    (manager, tiles)
}

/// One client's round: a coalescible reconfigure burst, a heavy
/// ensure-loaded sort (the behavioral evaluation dominates and is what
/// the worker pool overlaps), a plain run on the loaded sorter, and a
/// swap back to MAC. Submissions are open-loop within the round — all
/// admitted before any completion is awaited.
///
/// The barrier phase-aligns the clients' submissions: the ticket gate
/// commits in strict global admission order, so a heavy job blocks every
/// *later-admitted* commit. Batching the four independent heavies into
/// adjacent tickets (the pattern a parallel application naturally
/// produces) is what lets the pool overlap them; unaligned submission
/// degenerates to the single-worker schedule by design.
///
/// Returns the number of requests submitted.
fn client_round(
    manager: &ThreadedManager,
    barrier: &std::sync::Barrier,
    tile: TileCoord,
    round: usize,
    sort_len: usize,
) -> u64 {
    let burst: Vec<_> = (0..3)
        .map(|_| manager.submit_reconfigure(tile, AcceleratorKind::Mac))
        .collect();
    barrier.wait();
    let data: Vec<f32> = (0..sort_len)
        .map(|i| ((i * 2_654_435_761 + round * 40_503) % 1_000_003) as f32)
        .collect();
    let heavy = manager.submit_execute(tile, AcceleratorKind::Sort, AccelOp::Sort { data });
    barrier.wait();
    let mac = manager.submit_execute(
        tile,
        AcceleratorKind::Mac,
        AccelOp::Mac {
            a: vec![round as f32; 8],
            b: vec![2.0; 8],
        },
    );
    for pending in burst {
        pending.wait().unwrap();
    }
    let (run, _path) = heavy.wait().unwrap();
    assert!(run.end > 0);
    mac.wait().unwrap();
    barrier.wait();
    5
}

fn run_workload(workers: usize, wl: &Workload) -> RunResult {
    let (manager, tiles) = boot(workers);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CLIENTS));
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let manager = manager.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            let tile = tiles[c % TILES];
            let rounds = wl.rounds;
            let sort_len = wl.sort_len;
            std::thread::spawn(move || {
                (0..rounds)
                    .map(|round| client_round(&manager, &barrier, tile, round, sort_len))
                    .sum::<u64>()
            })
        })
        .collect();
    let requests: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed_secs = start.elapsed().as_secs_f64();

    let stats = manager.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    let sched = manager.scheduler_stats();
    let cache = manager.cache_stats();
    let submitted = sched.admitted + sched.coalesced;
    let result = RunResult {
        workers,
        requests,
        elapsed_secs,
        p50_wait_micros: sched.wait_percentile_micros(50.0),
        p99_wait_micros: sched.wait_percentile_micros(99.0),
        coalesce_rate: if submitted == 0 {
            0.0
        } else {
            sched.coalesced as f64 / submitted as f64
        },
        cache_hit_rate: cache.hit_rate(),
        reconfigurations: stats.reconfigurations,
        makespan: manager.makespan(),
    };
    manager.shutdown();
    result
}

fn run_json(r: &RunResult) -> JsonValue {
    JsonValue::Object(vec![
        ("workers".to_string(), JsonValue::Number(r.workers as f64)),
        ("requests".to_string(), JsonValue::Number(r.requests as f64)),
        (
            "elapsed_secs".to_string(),
            JsonValue::Number(r.elapsed_secs),
        ),
        (
            "requests_per_sec".to_string(),
            JsonValue::Number(r.requests_per_sec()),
        ),
        (
            "p50_wait_micros".to_string(),
            JsonValue::Number(r.p50_wait_micros as f64),
        ),
        (
            "p99_wait_micros".to_string(),
            JsonValue::Number(r.p99_wait_micros as f64),
        ),
        (
            "coalesce_rate".to_string(),
            JsonValue::Number(r.coalesce_rate),
        ),
        (
            "cache_hit_rate".to_string(),
            JsonValue::Number(r.cache_hit_rate),
        ),
        (
            "reconfigurations".to_string(),
            JsonValue::Number(r.reconfigurations as f64),
        ),
        ("makespan".to_string(), JsonValue::Number(r.makespan as f64)),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let wl = if smoke {
        Workload {
            rounds: 3,
            sort_len: 2_000,
        }
    } else {
        Workload {
            rounds: 20,
            sort_len: 10_000,
        }
    };
    // Emulated per-evaluation device latency (see module docs). Respect an
    // externally-set value so the knob stays scriptable.
    if std::env::var("PRESP_BENCH_EVAL_DELAY_MICROS").is_err() {
        std::env::set_var(
            "PRESP_BENCH_EVAL_DELAY_MICROS",
            if smoke { "500" } else { "2000" },
        );
    }

    let single = run_workload(1, &wl);
    let quad = run_workload(4, &wl);
    // (The gate's worker-count invariance holds per submission order;
    // racing clients produce a fresh order each run, so the makespans
    // here are near-equal, not identical — the byte-identical claim is
    // proven by the deterministic stress suite.)
    let speedup = quad.requests_per_sec() / single.requests_per_sec();

    let doc = JsonValue::Object(vec![
        (
            "workload".to_string(),
            JsonValue::Object(vec![
                ("clients".to_string(), JsonValue::Number(CLIENTS as f64)),
                ("tiles".to_string(), JsonValue::Number(TILES as f64)),
                ("rounds".to_string(), JsonValue::Number(wl.rounds as f64)),
                (
                    "sort_len".to_string(),
                    JsonValue::Number(wl.sort_len as f64),
                ),
            ]),
        ),
        (
            "runs".to_string(),
            JsonValue::Array(vec![run_json(&single), run_json(&quad)]),
        ),
        ("speedup".to_string(), JsonValue::Number(speedup)),
    ]);
    export::write_json("BENCH_runtime.json", &doc).expect("write BENCH_runtime.json");

    if export::json_requested() {
        println!("{}", doc.pretty());
        return;
    }

    println!("Runtime throughput — sharded scheduler, 1 vs 4 workers\n");
    let rows: Vec<Vec<String>> = [&single, &quad]
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!("{:.0}", r.requests_per_sec()),
                format!("{}", r.p50_wait_micros),
                format!("{}", r.p99_wait_micros),
                format!("{:.1}%", 100.0 * r.coalesce_rate),
                format!("{:.1}%", 100.0 * r.cache_hit_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "workers",
                "req/s",
                "p50 wait us",
                "p99 wait us",
                "coalesced",
                "cache hits"
            ],
            &rows
        )
    );
    println!("speedup (4 workers / 1 worker): {speedup:.2}x");
    println!("wrote BENCH_runtime.json");
}
