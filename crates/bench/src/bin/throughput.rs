//! Runtime throughput of the sharded DPR scheduler: a mixed open-loop
//! workload (reconfigure bursts, ensure-loaded executes, plain runs)
//! from sixteen client threads over a 64-tile reconfigurable fabric,
//! replayed against one-, four- and sixteen-worker pools with sharded
//! per-worker tracing attached.
//!
//! The ticket gate makes the virtual-time outcomes identical for any
//! worker count; what the worker pool buys is wall-clock overlap of the
//! lock-free prepare stage (behavioral evaluation + bitstream
//! pre-fetch), measured here as requests/s, queue-wait percentiles, the
//! coalesce / bitstream-cache hit rates, and the per-stage wall-clock
//! breakdown (prepare / gate wait / commit / trace drain). Writes
//! `BENCH_runtime.json` (schema `presp-bench-runtime/v2`); `--json`
//! prints the same document; `--smoke` shrinks the workload for CI;
//! `--check` re-runs only the 16-worker cell and fails when its
//! requests/s regressed more than 20 % against the committed
//! `BENCH_runtime.json`.
//!
//! Evaluation latency is emulated (`PRESP_BENCH_EVAL_DELAY_MICROS`, set
//! below): each run/execute's lock-free prepare stage blocks for a fixed
//! wall-clock delay, standing in for the device/RTL evaluation a real
//! deployment would wait on. Blocking time overlaps across workers
//! regardless of the host's core count, so the reported speedup measures
//! the scheduler's lock structure, not the benchmark machine. On a
//! multi-core host the CPU-bound sort payload parallelizes on top.

use presp_accel::{AccelOp, AcceleratorKind};
use presp_bench::export::{self, OverloadRun, RuntimeRun, RuntimeWorkload};
use presp_bench::render;
use presp_events::ShardedSink;
use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
use presp_fpga::frame::FrameAddress;
use presp_runtime::error::Error;
use presp_runtime::manager::OverloadPolicy;
use presp_runtime::registry::BitstreamRegistry;
use presp_runtime::threaded::ThreadedManager;
use presp_runtime::RecoveryPolicy;
use presp_soc::config::{SocConfig, TileCoord};
use presp_soc::sim::Soc;
use std::time::Instant;

const TILES: usize = 64;
const CLIENTS: usize = 16;
const WORKER_MATRIX: [usize; 3] = [1, 4, 16];
/// Allowed requests/s regression in `--check` mode before failing.
const CHECK_TOLERANCE: f64 = 0.20;

struct Workload {
    rounds: usize,
    sort_len: usize,
}

fn bitstream(soc: &Soc, col: u32) -> Bitstream {
    let device = soc.part().device();
    let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    let words = device.part().family().frame_words();
    b.add_frame(FrameAddress::new(0, 1 + col % 60, 0), vec![col; words])
        .unwrap();
    b.build(true)
}

fn boot(workers: usize) -> (ThreadedManager, Vec<TileCoord>) {
    let cfg = SocConfig::grid_reconf("throughput", TILES).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 130 + i as u32))
            .unwrap();
    }
    let manager =
        ThreadedManager::spawn_with_workers(soc, registry, RecoveryPolicy::default(), workers);
    (manager, tiles)
}

/// One client's round: a coalescible reconfigure burst and a heavy
/// ensure-loaded sort on one tile (the behavioral evaluation dominates
/// and is what the worker pool overlaps), a MAC execute on an
/// *independent* second tile (so the two evaluation chains overlap
/// rather than serializing through one tile's FIFO), and a tile rotation
/// between rounds so the whole 64-tile fabric — and the bitstream cache
/// behind it — stays under pressure. Submissions are open-loop within
/// the round: all admitted before any completion is awaited.
///
/// The barriers phase-align the clients' submissions: the ticket gate
/// commits in strict global admission order, so a heavy job blocks every
/// *later-admitted* commit. Batching the thirty-two independent
/// evaluations of a round into adjacent tickets (the pattern a parallel
/// application naturally produces) is what lets the pool overlap them;
/// unaligned submission degenerates to the single-worker schedule by
/// design.
///
/// Returns the number of requests submitted.
fn client_round(
    manager: &ThreadedManager,
    barrier: &std::sync::Barrier,
    tile: TileCoord,
    mac_tile: TileCoord,
    round: usize,
    sort_len: usize,
) -> u64 {
    let burst: Vec<_> = (0..3)
        .map(|_| manager.submit_reconfigure(tile, AcceleratorKind::Mac))
        .collect();
    barrier.wait();
    let data: Vec<f32> = (0..sort_len)
        .map(|i| ((i * 2_654_435_761 + round * 40_503) % 1_000_003) as f32)
        .collect();
    let heavy = manager.submit_execute(tile, AcceleratorKind::Sort, AccelOp::Sort { data });
    let mac = manager.submit_execute(
        mac_tile,
        AcceleratorKind::Mac,
        AccelOp::Mac {
            a: vec![round as f32; 8],
            b: vec![2.0; 8],
        },
    );
    for pending in burst {
        pending.wait().unwrap();
    }
    let (run, _path) = heavy.wait().unwrap();
    assert!(run.end > 0);
    mac.wait().unwrap();
    barrier.wait();
    5
}

fn run_workload(workers: usize, wl: &Workload) -> RuntimeRun {
    let (manager, tiles) = boot(workers);
    let sink = ShardedSink::new(workers);
    manager.attach_sharded_tracer(&sink);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CLIENTS));
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let manager = manager.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            let tiles = tiles.clone();
            let rounds = wl.rounds;
            let sort_len = wl.sort_len;
            std::thread::spawn(move || {
                (0..rounds)
                    .map(|round| {
                        // Rotate through the fabric: every tile sees
                        // traffic, and the 128-entry (tile, kind) working
                        // set overflows the 16-entry bitstream cache. The
                        // MAC tile is offset half the fabric away, so no
                        // two in-flight chains share a tile in any round.
                        let tile = tiles[(c + round * CLIENTS) % TILES];
                        let mac_tile = tiles[(c + round * CLIENTS + TILES / 2) % TILES];
                        client_round(&manager, &barrier, tile, mac_tile, round, sort_len)
                    })
                    .sum::<u64>()
            })
        })
        .collect();
    let requests: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed_secs = start.elapsed().as_secs_f64();

    let stats = manager.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    let sched = manager.scheduler_stats();
    let cache = manager.cache_stats();
    let makespan = manager.makespan();
    manager.shutdown();
    let drain_started = Instant::now();
    let merged = sink.drain_merged();
    let stage_trace_drain_nanos = drain_started.elapsed().as_nanos() as u64;
    assert!(!merged.is_empty(), "traced workload emitted nothing");

    let submitted = sched.admitted + sched.coalesced;
    RuntimeRun {
        workers: workers as u64,
        requests,
        elapsed_secs,
        p50_wait_micros: sched.wait_percentile_micros(50.0),
        p99_wait_micros: sched.wait_percentile_micros(99.0),
        coalesce_rate: if submitted == 0 {
            0.0
        } else {
            sched.coalesced as f64 / submitted as f64
        },
        cache_hit_rate: cache.hit_rate(),
        reconfigurations: stats.reconfigurations,
        makespan,
        stage_prepare_nanos: sched.stage_prepare_nanos,
        stage_gate_wait_nanos: sched.stage_gate_wait_nanos,
        stage_commit_nanos: sched.stage_commit_nanos,
        stage_trace_drain_nanos,
    }
}

/// The overload cell: bounded per-tile queues and virtual-time deadlines
/// under an open-loop burst that deliberately outruns the fabric — the
/// regime the throughput matrix never enters. Sixteen clients hammer four
/// tiles whose queues hold four requests each; the admission controller
/// sheds the overflow at the door and the deadline watchdog degrades
/// late commits to the CPU path. Reports the shed and deadline-miss
/// rates; every submission is still answered (shed requests get an
/// `Overloaded` verdict, not silence).
fn run_overload(workers: usize, smoke: bool) -> OverloadRun {
    const OVERLOAD_TILES: usize = 4;
    let queue_capacity = 4u64;
    let deadline_cycles = 30_000u64;
    let sort_len = if smoke { 8_000 } else { 20_000 };
    let rounds = if smoke { 2 } else { 8 };
    let burst = 6usize;

    let cfg = SocConfig::grid_3x3_reconf("overload", OVERLOAD_TILES).unwrap();
    let soc = Soc::new(&cfg).unwrap();
    let tiles = cfg.reconfigurable_tiles();
    let mut registry = BitstreamRegistry::new();
    for (i, &tile) in tiles.iter().enumerate() {
        registry
            .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
            .unwrap();
        registry
            .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
            .unwrap();
    }
    let policy = RecoveryPolicy {
        cpu_fallback: true,
        queue_capacity,
        deadline_cycles,
        overload: OverloadPolicy::RejectNew,
        ..RecoveryPolicy::default()
    };
    let manager: ThreadedManager =
        ThreadedManager::spawn_with_workers(soc, registry, policy, workers);

    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let manager = manager.clone();
            let tiles = tiles.clone();
            std::thread::spawn(move || {
                let mut submitted = 0u64;
                let mut completed = 0u64;
                for round in 0..rounds {
                    let tile = tiles[(c + round) % OVERLOAD_TILES];
                    let mut pendings = Vec::with_capacity(burst + 1);
                    pendings.push(manager.submit_execute(
                        tile,
                        AcceleratorKind::Sort,
                        AccelOp::Sort {
                            data: (0..sort_len).rev().map(|i| i as f32).collect(),
                        },
                    ));
                    for j in 0..burst {
                        pendings.push(manager.submit_execute(
                            tile,
                            AcceleratorKind::Mac,
                            AccelOp::Mac {
                                a: vec![(1 + c + j) as f32; 8],
                                b: vec![2.0; 8],
                            },
                        ));
                    }
                    submitted += pendings.len() as u64;
                    for pending in pendings {
                        match pending.wait() {
                            Ok(_) => completed += 1,
                            Err(Error::Overloaded { .. }) => {}
                            Err(e) => panic!("overload cell lost a request: {e}"),
                        }
                    }
                }
                (submitted, completed)
            })
        })
        .collect();
    let (submitted, completed) = handles
        .into_iter()
        .map(|h| h.join().unwrap())
        .fold((0u64, 0u64), |(s, c), (ds, dc)| (s + ds, c + dc));
    let elapsed_secs = start.elapsed().as_secs_f64();

    let stats = manager.stats();
    assert!(stats.consistent(), "inconsistent stats: {stats:?}");
    manager.shutdown();
    assert_eq!(
        completed + stats.shed,
        submitted,
        "shed accounting does not close: {stats:?}"
    );
    OverloadRun {
        workers: workers as u64,
        queue_capacity,
        deadline_cycles,
        submitted,
        completed,
        shed: stats.shed,
        deadline_misses: stats.deadline_misses,
        elapsed_secs,
    }
}

/// `--overload` entry: run the overload cell and merge its rates into
/// the committed `BENCH_runtime.json` without touching the throughput
/// `runs` the `--check` gate reads.
fn run_overload_mode(smoke: bool) -> ! {
    let run = run_overload(4, smoke);
    let doc = std::fs::read_to_string("BENCH_runtime.json")
        .ok()
        .and_then(|text| presp_events::json::parse(&text).ok())
        .unwrap_or(presp_events::json::JsonValue::Null);
    let merged = export::merge_overload(doc, &run);
    export::write_json("BENCH_runtime.json", &merged).expect("write BENCH_runtime.json");
    println!(
        "overload cell — {} workers, queue capacity {}, deadline {} cycles",
        run.workers, run.queue_capacity, run.deadline_cycles
    );
    println!(
        "  submitted {} / completed {} / shed {} ({:.1}%) / deadline misses {} ({:.1}%)",
        run.submitted,
        run.completed,
        run.shed,
        100.0 * run.shed_rate(),
        run.deadline_misses,
        100.0 * run.deadline_miss_rate()
    );
    if run.shed == 0 {
        eprintln!("FAIL: the overload burst never filled a queue");
        std::process::exit(1);
    }
    println!("wrote BENCH_runtime.json (overload object)");
    std::process::exit(0);
}

/// The committed 16-worker requests/s figure from `BENCH_runtime.json`.
fn committed_requests_per_sec(workers: u64) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_runtime.json").ok()?;
    let doc = presp_events::json::parse(&text).ok()?;
    doc.get("runs")?.as_array()?.iter().find_map(|run| {
        if run.get("workers")?.as_usize()? as u64 != workers {
            return None;
        }
        match run.get("requests_per_sec")? {
            presp_events::json::JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    })
}

/// Perf-smoke gate: re-measure only the 16-worker cell on the full
/// workload and fail when it regressed more than [`CHECK_TOLERANCE`]
/// against the committed document. Exits the process with the verdict.
fn run_check(wl: &Workload) -> ! {
    let workers = *WORKER_MATRIX.last().unwrap() as u64;
    let Some(committed) = committed_requests_per_sec(workers) else {
        eprintln!("BENCH_runtime.json has no committed {workers}-worker requests_per_sec");
        std::process::exit(1);
    };
    let fresh = run_workload(workers as usize, wl).requests_per_sec();
    let floor = committed * (1.0 - CHECK_TOLERANCE);
    println!(
        "perf check: fresh {workers}-worker run {fresh:.0} req/s vs committed {committed:.0} \
         req/s (floor {floor:.0})"
    );
    if fresh < floor {
        eprintln!(
            "FAIL: requests/s regressed more than {:.0} %",
            100.0 * CHECK_TOLERANCE
        );
        std::process::exit(1);
    }
    println!("OK");
    std::process::exit(0);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check");
    if std::env::args().any(|a| a == "--overload") {
        run_overload_mode(smoke);
    }
    let wl = if smoke {
        Workload {
            rounds: 3,
            sort_len: 2_000,
        }
    } else {
        Workload {
            rounds: 20,
            sort_len: 4_000,
        }
    };
    // Emulated per-evaluation device latency (see module docs). Respect an
    // externally-set value so the knob stays scriptable.
    if std::env::var("PRESP_BENCH_EVAL_DELAY_MICROS").is_err() {
        std::env::set_var(
            "PRESP_BENCH_EVAL_DELAY_MICROS",
            if smoke { "500" } else { "2000" },
        );
    }
    if check {
        // The gate compares against the committed full-workload figures.
        run_check(&Workload {
            rounds: 20,
            sort_len: 4_000,
        });
    }

    let runs: Vec<RuntimeRun> = WORKER_MATRIX
        .iter()
        .map(|&workers| run_workload(workers, &wl))
        .collect();
    // (The gate's worker-count invariance holds per submission order;
    // racing clients produce a fresh order each run, so the makespans
    // here are near-equal, not identical — the byte-identical claim is
    // proven by the deterministic stress suite and the scenario matrix.)
    let workload = RuntimeWorkload {
        clients: CLIENTS as u64,
        tiles: TILES as u64,
        rounds: wl.rounds as u64,
        sort_len: wl.sort_len as u64,
    };
    let doc = export::runtime_document(&workload, &runs);
    export::write_json("BENCH_runtime.json", &doc).expect("write BENCH_runtime.json");

    if export::json_requested() {
        println!("{}", doc.pretty());
        return;
    }

    println!(
        "Runtime throughput — sharded scheduler, {TILES} tiles x {CLIENTS} clients, \
         workers {WORKER_MATRIX:?}\n"
    );
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!("{:.0}", r.requests_per_sec()),
                format!("{}", r.p50_wait_micros),
                format!("{}", r.p99_wait_micros),
                format!("{:.1}%", 100.0 * r.coalesce_rate),
                format!("{:.1}%", 100.0 * r.cache_hit_rate),
                format!("{:.1}", r.stage_prepare_nanos as f64 / 1e6),
                format!("{:.1}", r.stage_gate_wait_nanos as f64 / 1e6),
                format!("{:.1}", r.stage_commit_nanos as f64 / 1e6),
                format!("{:.2}", r.stage_trace_drain_nanos as f64 / 1e6),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "workers",
                "req/s",
                "p50 wait us",
                "p99 wait us",
                "coalesced",
                "cache hits",
                "prepare ms",
                "gate ms",
                "commit ms",
                "drain ms",
            ],
            &rows
        )
    );
    let base = runs[0].requests_per_sec();
    for r in &runs[1..] {
        println!(
            "speedup ({} workers / 1 worker): {:.2}x",
            r.workers,
            r.requests_per_sec() / base
        );
    }
    println!("wrote BENCH_runtime.json");
}
