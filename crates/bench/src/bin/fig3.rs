//! Regenerates Fig. 3's annotations: per-accelerator LUTs and execution
//! time on a 2×2 profiling SoC.

use presp_bench::{experiments, export, render};

fn main() {
    let size = 128;
    let rows = experiments::fig3(size);
    if export::json_requested() {
        println!("{}", export::fig3_json(&rows).pretty());
        return;
    }
    println!("Fig. 3 — WAMI accelerator profile ({size}x{size} frames, 2x2 SoC, VC707)\n");
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                format!("#{}", r.index),
                r.name.into(),
                r.luts.to_string(),
                format!("{:.1}", r.micros),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(&["idx", "kernel", "LUTs", "exec (µs)"], &cells)
    );
}
