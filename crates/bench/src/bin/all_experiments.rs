//! Runs every table/figure regenerator in sequence (the full evaluation)
//! and writes the machine-readable result documents `BENCH_tables.json`
//! and `BENCH_wami.json` next to the rendered tables.

use presp_bench::{experiments, export, render};

fn main() {
    println!("=== PR-ESP full evaluation ===\n");

    println!("--- Table I ---");
    let t1 = experiments::table1();
    let rows: Vec<Vec<String>> = t1
        .iter()
        .map(|(l, a, b, c)| vec![(*l).into(), (*a).into(), (*b).into(), (*c).into()])
        .collect();
    println!("{}", render::table(&["", "γ < 1", "γ ≈ 1", "γ > 1"], &rows));

    println!("--- Table II ---");
    let t2 = experiments::table2();
    let rows: Vec<Vec<String>> = t2
        .iter()
        .map(|r| vec![r.name.clone(), r.luts.to_string()])
        .collect();
    println!("{}", render::table(&["component", "LUTs"], &rows));

    println!("--- Table III ---");
    let t3 = experiments::table3();
    for row in &t3 {
        println!("{} (best τ = {}):", row.soc, row.best_tau());
        for p in &row.points {
            println!(
                "  τ={:<2}  t_static={:<6} max Ω={:<6} T_tot={:.0}",
                p.tau,
                p.t_static.map_or("-".into(), |v| format!("{v:.0}")),
                p.max_omega.map_or("-".into(), |v| format!("{v:.0}")),
                p.total
            );
        }
    }

    println!("\n--- Table IV ---");
    let t4 = experiments::table4();
    for r in &t4 {
        println!(
            "{} ({}): fully={:.0} semi={:.0} serial={:.0} → chose {} ({:.0})",
            r.soc,
            r.class,
            r.fully.2,
            r.semi.2,
            r.serial,
            r.chosen,
            r.chosen_total()
        );
    }

    println!("\n--- Table V ---");
    let t5 = experiments::table5();
    for r in &t5 {
        println!(
            "{}: PR-ESP {:.0} min vs monolithic {:.0} min ({:+.1}%)",
            r.soc,
            r.total,
            r.mono_total,
            r.improvement_pct()
        );
    }

    println!("\n--- Table VI ---");
    let t6 = experiments::table6();
    for r in &t6 {
        println!("{} {}: {:?} → {:.0} KB", r.soc, r.tile, r.kernels, r.pbs_kb);
    }

    println!("\n--- Fig. 3 ---");
    let f3 = experiments::fig3(128);
    for r in &f3 {
        println!(
            "#{:<2} {:<18} {:>6} LUTs  {:>8.1} µs",
            r.index, r.name, r.luts, r.micros
        );
    }

    println!("\n--- Fig. 4 ---");
    let f4 = experiments::fig4(6, 64, 2);
    for r in &f4 {
        println!(
            "{} ({} RTs): {:.2} ms/frame, {:.2} mJ/frame, {:.1} reconf/frame, \
             {:.2} scrub ms/frame ({:.0} wait cyc)",
            r.soc,
            r.tiles,
            r.ms_per_frame,
            r.mj_per_frame,
            r.reconfigs_per_frame,
            r.scrub_ms_per_frame,
            r.scrub_wait_cycles_per_frame
        );
    }

    let tables = export::tables_document(&t1, &t2, &t3, &t4, &t5, &t6, &f3);
    let wami = export::wami_document(&f4);
    for (path, doc) in [("BENCH_tables.json", &tables), ("BENCH_wami.json", &wami)] {
        match export::write_json(path, doc) {
            Ok(()) => println!("\nwrote {path}"),
            Err(e) => eprintln!("\nfailed to write {path}: {e}"),
        }
    }
}
