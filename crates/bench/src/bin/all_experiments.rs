//! Runs every table/figure regenerator in sequence (the full evaluation).

use presp_bench::{experiments, render};

fn main() {
    println!("=== PR-ESP full evaluation ===\n");

    println!("--- Table I ---");
    let rows: Vec<Vec<String>> = experiments::table1()
        .into_iter()
        .map(|(l, a, b, c)| vec![l.into(), a.into(), b.into(), c.into()])
        .collect();
    println!("{}", render::table(&["", "γ < 1", "γ ≈ 1", "γ > 1"], &rows));

    println!("--- Table II ---");
    let rows: Vec<Vec<String>> = experiments::table2()
        .into_iter()
        .map(|r| vec![r.name, r.luts.to_string()])
        .collect();
    println!("{}", render::table(&["component", "LUTs"], &rows));

    println!("--- Table III ---");
    for row in experiments::table3() {
        println!("{} (best τ = {}):", row.soc, row.best_tau());
        for p in &row.points {
            println!(
                "  τ={:<2}  t_static={:<6} max Ω={:<6} T_tot={:.0}",
                p.tau,
                p.t_static.map_or("-".into(), |v| format!("{v:.0}")),
                p.max_omega.map_or("-".into(), |v| format!("{v:.0}")),
                p.total
            );
        }
    }

    println!("\n--- Table IV ---");
    for r in experiments::table4() {
        println!(
            "{} ({}): fully={:.0} semi={:.0} serial={:.0} → chose {} ({:.0})",
            r.soc,
            r.class,
            r.fully.2,
            r.semi.2,
            r.serial,
            r.chosen,
            r.chosen_total()
        );
    }

    println!("\n--- Table V ---");
    for r in experiments::table5() {
        println!(
            "{}: PR-ESP {:.0} min vs monolithic {:.0} min ({:+.1}%)",
            r.soc,
            r.total,
            r.mono_total,
            r.improvement_pct()
        );
    }

    println!("\n--- Table VI ---");
    for r in experiments::table6() {
        println!("{} {}: {:?} → {:.0} KB", r.soc, r.tile, r.kernels, r.pbs_kb);
    }

    println!("\n--- Fig. 3 ---");
    for r in experiments::fig3(128) {
        println!(
            "#{:<2} {:<18} {:>6} LUTs  {:>8.1} µs",
            r.index, r.name, r.luts, r.micros
        );
    }

    println!("\n--- Fig. 4 ---");
    for r in experiments::fig4(6, 64, 2) {
        println!(
            "{} ({} RTs): {:.2} ms/frame, {:.2} mJ/frame, {:.1} reconf/frame",
            r.soc, r.tiles, r.ms_per_frame, r.mj_per_frame, r.reconfigs_per_frame
        );
    }
}
