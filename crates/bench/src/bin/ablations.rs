//! Ablation studies of PR-ESP's design choices: prefetch (interleaved)
//! reconfiguration and bitstream compression.

use presp_bench::{experiments, render};

fn main() {
    println!("Ablation 1 — interleaved (prefetch) vs non-interleaved reconfiguration\n");
    let rows: Vec<Vec<String>> = experiments::prefetch_ablation(5, 48, 2)
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                format!("{:.2}", r.prefetch_ms),
                format!("{:.2}", r.no_prefetch_ms),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "SoC",
                "prefetch ms/frame",
                "no-prefetch ms/frame",
                "speedup"
            ],
            &rows
        )
    );

    println!("Ablation 2 — bitstream compression (size and ICAP latency per module)\n");
    let rows: Vec<Vec<String>> = experiments::compression_ablation()
        .into_iter()
        .map(|r| {
            vec![
                r.module.clone(),
                format!("{:.0}", r.raw_kb),
                format!("{:.0}", r.compressed_kb),
                format!("{:.2}", r.raw_ms),
                format!("{:.2}", r.compressed_ms),
                format!("{:.1}x", r.raw_kb / r.compressed_kb),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &["module", "raw KB", "comp KB", "raw ms", "comp ms", "ratio"],
            &rows
        )
    );
}
