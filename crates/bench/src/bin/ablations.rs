//! Ablation studies of PR-ESP's design choices: prefetch (interleaved)
//! reconfiguration and bitstream compression.

use presp_bench::{experiments, export, render};
use presp_events::json::JsonValue;

fn main() {
    let prefetch = experiments::prefetch_ablation(5, 48, 2);
    let compression = experiments::compression_ablation();
    if export::json_requested() {
        let doc = JsonValue::Object(vec![
            (
                "prefetch".to_string(),
                export::prefetch_ablation_json(&prefetch),
            ),
            (
                "compression".to_string(),
                export::compression_ablation_json(&compression),
            ),
        ]);
        println!("{}", doc.pretty());
        return;
    }

    println!("Ablation 1 — interleaved (prefetch) vs non-interleaved reconfiguration\n");
    let rows: Vec<Vec<String>> = prefetch
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                format!("{:.2}", r.prefetch_ms),
                format!("{:.2}", r.no_prefetch_ms),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "SoC",
                "prefetch ms/frame",
                "no-prefetch ms/frame",
                "speedup"
            ],
            &rows
        )
    );

    println!("Ablation 2 — bitstream compression (size and ICAP latency per module)\n");
    let rows: Vec<Vec<String>> = compression
        .into_iter()
        .map(|r| {
            vec![
                r.module.clone(),
                format!("{:.0}", r.raw_kb),
                format!("{:.0}", r.compressed_kb),
                format!("{:.2}", r.raw_ms),
                format!("{:.2}", r.compressed_ms),
                format!("{:.1}x", r.raw_kb / r.compressed_kb),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &["module", "raw KB", "comp KB", "raw ms", "comp ms", "ratio"],
            &rows
        )
    );
}
