//! Regenerates Table VI: accelerator partitioning and pbs sizes.

use presp_bench::{experiments, export, render};

fn main() {
    let rows = experiments::table6();
    if export::json_requested() {
        println!("{}", export::table6_json(&rows).pretty());
        return;
    }
    println!("Table VI — partitioning of accelerators and partial bitstream sizes\n");
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                r.tile.clone(),
                format!("{:?}", r.kernels),
                format!("{:.0}", r.pbs_kb),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(&["SoC", "tile", "WAMI accs", "pbs (KB)"], &cells)
    );
}
