//! Regenerates Table VI: accelerator partitioning and pbs sizes.

use presp_bench::{experiments, render};

fn main() {
    println!("Table VI — partitioning of accelerators and partial bitstream sizes\n");
    let rows: Vec<Vec<String>> = experiments::table6()
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                r.tile.clone(),
                format!("{:?}", r.kernels),
                format!("{:.0}", r.pbs_kb),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(&["SoC", "tile", "WAMI accs", "pbs (KB)"], &rows)
    );
}
