//! Regenerates Table V: PR-ESP vs monolithic compile time.

use presp_bench::{experiments, export, render};

fn main() {
    let rows = experiments::table5();
    if export::json_requested() {
        println!("{}", export::table5_json(&rows).pretty());
        return;
    }
    println!("Table V — PR-ESP vs monolithic implementation (minutes)\n");
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                format!("{:.0}", r.synth),
                format!("{:.0}", r.t_static),
                format!("{:.0}", r.max_omega),
                format!("{:.0}", r.total),
                format!("{}", r.strategy),
                format!("{:.0}", r.mono_synth),
                format!("{:.0}", r.mono_pnr),
                format!("{:.0}", r.mono_total),
                format!("{:+.1}%", r.improvement_pct()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "SoC", "synth", "t_static", "max{Ω}", "T_tot", "τ", "m.synth", "m.P&R", "m.T_tot",
                "improv."
            ],
            &cells
        )
    );
}
