//! Regenerates Fig. 4: execution time and energy per frame for the three
//! deployed WAMI SoCs.

use presp_bench::{experiments, export, render};

fn main() {
    let (frames, size, iters) = (6, 64, 2);
    let rows = experiments::fig4(frames, size, iters);
    if export::json_requested() {
        println!("{}", export::fig4_json(&rows).pretty());
        return;
    }
    println!("Fig. 4 — WAMI SoC implementations ({frames} frames of {size}x{size}, {iters} LK iterations)\n");
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| {
            vec![
                r.soc.clone(),
                r.tiles.to_string(),
                format!("{:.2}", r.ms_per_frame),
                format!("{:.2}", r.mj_per_frame),
                format!("{:.1}", r.reconfigs_per_frame),
                format!("{:.0}", r.mean_changed_pixels),
                format!("{:.2}", r.scrub_ms_per_frame),
                format!("{:.0}", r.scrub_wait_cycles_per_frame),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(
            &[
                "SoC",
                "RTs",
                "ms/frame",
                "mJ/frame",
                "reconf/frame",
                "changed px",
                "scrub ms/frame",
                "scrub wait cyc"
            ],
            &cells
        )
    );
}
