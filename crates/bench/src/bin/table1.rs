//! Regenerates Table I: the size-driven implementation strategies.

use presp_bench::{experiments, render};

fn main() {
    let rows: Vec<Vec<String>> = experiments::table1()
        .into_iter()
        .map(|(label, lo, eq, hi)| vec![label.into(), lo.into(), eq.into(), hi.into()])
        .collect();
    println!("Table I — size-driven implementation strategies in PR-ESP\n");
    println!("{}", render::table(&["", "γ < 1", "γ ≈ 1", "γ > 1"], &rows));
}
