//! Regenerates Table I: the size-driven implementation strategies.

use presp_bench::{experiments, export, render};

fn main() {
    let rows = experiments::table1();
    if export::json_requested() {
        println!("{}", export::table1_json(&rows).pretty());
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|(label, lo, eq, hi)| vec![label.into(), lo.into(), eq.into(), hi.into()])
        .collect();
    println!("Table I — size-driven implementation strategies in PR-ESP\n");
    println!(
        "{}",
        render::table(&["", "γ < 1", "γ ≈ 1", "γ > 1"], &cells)
    );
}
