//! Regenerates Table II: resource utilization of the accelerators.

use presp_bench::{experiments, export, render};

fn main() {
    let rows = experiments::table2();
    if export::json_requested() {
        println!("{}", export::table2_json(&rows).pretty());
        return;
    }
    let cells: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| vec![r.name, r.luts.to_string()])
        .collect();
    println!("Table II — resource utilization of the accelerators (VC707)\n");
    println!("{}", render::table(&["component", "LUTs"], &cells));
}
