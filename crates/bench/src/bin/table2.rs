//! Regenerates Table II: resource utilization of the accelerators.

use presp_bench::{experiments, render};

fn main() {
    let rows: Vec<Vec<String>> = experiments::table2()
        .into_iter()
        .map(|r| vec![r.name, r.luts.to_string()])
        .collect();
    println!("Table II — resource utilization of the accelerators (VC707)\n");
    println!("{}", render::table(&["component", "LUTs"], &rows));
}
