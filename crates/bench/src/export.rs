//! Machine-readable export of the experiment results.
//!
//! Each regenerator has a converter from its row type to a
//! [`JsonValue`] document, so the binaries can emit the numbers next to
//! the rendered ASCII tables: `all_experiments` writes
//! `BENCH_tables.json` / `BENCH_wami.json`, and every per-table binary
//! prints the same document to stdout under the shared `--json` flag.

use crate::experiments::{
    CompressionAblationRow, Fig3Row, Fig4Row, PrefetchAblationRow, Table2Row, Table3Row, Table4Row,
    Table5Row, Table6Row,
};
use presp_events::json::JsonValue;

/// Whether the process was invoked with the shared `--json` flag.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Writes `doc` to `path` as pretty-printed JSON with a trailing newline.
///
/// # Errors
///
/// Propagates I/O errors from the underlying write.
pub fn write_json(path: &str, doc: &JsonValue) -> std::io::Result<()> {
    std::fs::write(path, doc.pretty() + "\n")
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn int(v: u64) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn s(v: &str) -> JsonValue {
    JsonValue::String(v.to_string())
}

fn opt(v: Option<f64>) -> JsonValue {
    v.map_or(JsonValue::Null, JsonValue::Number)
}

fn arr<T>(items: &[T], f: impl Fn(&T) -> JsonValue) -> JsonValue {
    JsonValue::Array(items.iter().map(f).collect())
}

/// Schema tag of `BENCH_runtime.json`. `v2` is a strict superset of the
/// untagged `v1` layout: every v1 field survives unchanged and each run
/// gains a `stages` object with the per-stage wall-clock breakdown
/// (prepare / gate wait / commit / trace drain).
pub const RUNTIME_SCHEMA: &str = "presp-bench-runtime/v2";

/// The runtime throughput benchmark's workload shape.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeWorkload {
    pub clients: u64,
    pub tiles: u64,
    pub rounds: u64,
    pub sort_len: u64,
}

/// One worker-count cell of the runtime throughput benchmark.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeRun {
    pub workers: u64,
    pub requests: u64,
    pub elapsed_secs: f64,
    pub p50_wait_micros: u64,
    pub p99_wait_micros: u64,
    pub coalesce_rate: f64,
    pub cache_hit_rate: f64,
    pub reconfigurations: u64,
    pub makespan: u64,
    /// Summed across workers: lock-free behavioral evaluation +
    /// bitstream pre-fetch.
    pub stage_prepare_nanos: u64,
    /// Summed across workers: blocked at the commit-order ticket gate.
    pub stage_gate_wait_nanos: u64,
    /// Summed across workers: inside the shard + core critical section.
    pub stage_commit_nanos: u64,
    /// Wall clock of the final sharded-sink merge-drain.
    pub stage_trace_drain_nanos: u64,
}

impl RuntimeRun {
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs
    }
}

/// The overload cell of the runtime benchmark: bounded per-tile queues
/// and per-request deadlines under an open-loop burst that outruns the
/// fabric. Written into `BENCH_runtime.json` as the optional `overload`
/// object (the base schema stays a superset — readers of `runs` are
/// unaffected).
#[derive(Debug, Clone, Copy)]
pub struct OverloadRun {
    pub workers: u64,
    pub queue_capacity: u64,
    pub deadline_cycles: u64,
    pub submitted: u64,
    pub completed: u64,
    pub shed: u64,
    pub deadline_misses: u64,
    pub elapsed_secs: f64,
}

impl OverloadRun {
    /// Fraction of submissions refused at the admission door.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Fraction of submissions that blew their virtual-time deadline.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.submitted as f64
        }
    }
}

fn overload_json(r: &OverloadRun) -> JsonValue {
    obj(vec![
        ("workers", int(r.workers)),
        ("queue_capacity", int(r.queue_capacity)),
        ("deadline_cycles", int(r.deadline_cycles)),
        ("submitted", int(r.submitted)),
        ("completed", int(r.completed)),
        ("shed", int(r.shed)),
        ("deadline_misses", int(r.deadline_misses)),
        ("shed_rate", num(r.shed_rate())),
        ("deadline_miss_rate", num(r.deadline_miss_rate())),
        ("elapsed_secs", num(r.elapsed_secs)),
    ])
}

/// Merges the overload cell into an existing `BENCH_runtime.json`
/// document, replacing any previous `overload` object in place so the
/// committed throughput `runs` (and the `--check` gate reading them)
/// survive untouched. A non-object document is replaced by a fresh one
/// carrying only the schema tag and the overload cell.
pub fn merge_overload(doc: JsonValue, run: &OverloadRun) -> JsonValue {
    match doc {
        JsonValue::Object(mut fields) => {
            fields.retain(|(k, _)| k != "overload");
            fields.push(("overload".to_string(), overload_json(run)));
            JsonValue::Object(fields)
        }
        _ => obj(vec![
            ("schema", s(RUNTIME_SCHEMA)),
            ("overload", overload_json(run)),
        ]),
    }
}

fn runtime_run_json(r: &RuntimeRun) -> JsonValue {
    let per_request = |nanos: u64| {
        if r.requests == 0 {
            0.0
        } else {
            nanos as f64 / 1_000.0 / r.requests as f64
        }
    };
    obj(vec![
        ("workers", int(r.workers)),
        ("requests", int(r.requests)),
        ("elapsed_secs", num(r.elapsed_secs)),
        ("requests_per_sec", num(r.requests_per_sec())),
        ("p50_wait_micros", int(r.p50_wait_micros)),
        ("p99_wait_micros", int(r.p99_wait_micros)),
        ("coalesce_rate", num(r.coalesce_rate)),
        ("cache_hit_rate", num(r.cache_hit_rate)),
        ("reconfigurations", int(r.reconfigurations)),
        ("makespan", int(r.makespan)),
        (
            "stages",
            obj(vec![
                ("prepare_nanos", int(r.stage_prepare_nanos)),
                ("gate_wait_nanos", int(r.stage_gate_wait_nanos)),
                ("commit_nanos", int(r.stage_commit_nanos)),
                ("trace_drain_nanos", int(r.stage_trace_drain_nanos)),
                (
                    "prepare_micros_per_request",
                    num(per_request(r.stage_prepare_nanos)),
                ),
                (
                    "gate_wait_micros_per_request",
                    num(per_request(r.stage_gate_wait_nanos)),
                ),
                (
                    "commit_micros_per_request",
                    num(per_request(r.stage_commit_nanos)),
                ),
            ]),
        ),
    ])
}

/// `BENCH_runtime.json` ([`RUNTIME_SCHEMA`]): the workload shape, one
/// entry per worker count in `runs` order, the legacy `speedup` field
/// (second run vs first) and `speedup_max` (last run vs first).
pub fn runtime_document(workload: &RuntimeWorkload, runs: &[RuntimeRun]) -> JsonValue {
    let base = runs.first().map(RuntimeRun::requests_per_sec);
    let ratio = |r: Option<&RuntimeRun>| match (base, r) {
        (Some(base), Some(r)) if base > 0.0 => num(r.requests_per_sec() / base),
        _ => JsonValue::Null,
    };
    obj(vec![
        ("schema", s(RUNTIME_SCHEMA)),
        (
            "workload",
            obj(vec![
                ("clients", int(workload.clients)),
                ("tiles", int(workload.tiles)),
                ("rounds", int(workload.rounds)),
                ("sort_len", int(workload.sort_len)),
            ]),
        ),
        ("runs", arr(runs, runtime_run_json)),
        ("speedup", ratio(runs.get(1))),
        ("speedup_max", ratio(runs.last())),
    ])
}

/// Table I as a JSON array of strategy-matrix rows.
pub fn table1_json(rows: &[(&str, &str, &str, &str)]) -> JsonValue {
    arr(rows, |(label, lo, eq, hi)| {
        obj(vec![
            ("row", s(label)),
            ("gamma_lt_1", s(lo)),
            ("gamma_eq_1", s(eq)),
            ("gamma_gt_1", s(hi)),
        ])
    })
}

/// Table II as a JSON array of `{component, luts}` rows.
pub fn table2_json(rows: &[Table2Row]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![("component", s(&r.name)), ("luts", int(r.luts))])
    })
}

/// Table III as a JSON array of per-SoC τ sweeps.
pub fn table3_json(rows: &[Table3Row]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("soc", s(&r.soc)),
            ("alpha_av_pct", num(r.alpha_av)),
            ("kappa_pct", num(r.kappa)),
            ("gamma", num(r.gamma)),
            ("best_tau", int(r.best_tau() as u64)),
            (
                "points",
                arr(&r.points, |p| {
                    obj(vec![
                        ("tau", int(p.tau as u64)),
                        ("t_static_min", opt(p.t_static)),
                        ("max_omega_min", opt(p.max_omega)),
                        ("total_min", num(p.total)),
                    ])
                }),
            ),
        ])
    })
}

fn strategy_triple(
    name: &str,
    (t_static, max_omega, total): (f64, f64, f64),
) -> (String, JsonValue) {
    (
        name.to_string(),
        obj(vec![
            ("t_static_min", num(t_static)),
            ("max_omega_min", num(max_omega)),
            ("total_min", num(total)),
        ]),
    )
}

/// Table IV as a JSON array of per-SoC strategy comparisons.
pub fn table4_json(rows: &[Table4Row]) -> JsonValue {
    arr(rows, |r| {
        let mut fields = vec![
            ("soc".to_string(), s(&r.soc)),
            (
                "accelerators".to_string(),
                arr(&r.accels, |a| int(*a as u64)),
            ),
            ("class".to_string(), s(&r.class.to_string())),
            ("alpha_av_pct".to_string(), num(r.metrics.0)),
            ("kappa_pct".to_string(), num(r.metrics.1)),
            ("gamma".to_string(), num(r.metrics.2)),
        ];
        fields.push(strategy_triple("fully_parallel", r.fully));
        fields.push(strategy_triple("semi_parallel", r.semi));
        fields.push(("serial_min".to_string(), num(r.serial)));
        fields.push(("chosen".to_string(), s(&r.chosen.to_string())));
        fields.push(("chosen_total_min".to_string(), num(r.chosen_total())));
        JsonValue::Object(fields)
    })
}

/// Table V as a JSON array of PR-ESP vs monolithic rows.
pub fn table5_json(rows: &[Table5Row]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("soc", s(&r.soc)),
            ("synth_min", num(r.synth)),
            ("t_static_min", num(r.t_static)),
            ("max_omega_min", num(r.max_omega)),
            ("total_min", num(r.total)),
            ("strategy", s(&r.strategy.to_string())),
            ("mono_synth_min", num(r.mono_synth)),
            ("mono_pnr_min", num(r.mono_pnr)),
            ("mono_total_min", num(r.mono_total)),
            ("improvement_pct", num(r.improvement_pct())),
        ])
    })
}

/// Table VI as a JSON array of per-tile partitioning rows.
pub fn table6_json(rows: &[Table6Row]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("soc", s(&r.soc)),
            ("tile", s(&r.tile)),
            ("kernels", arr(&r.kernels, |k| int(*k as u64))),
            ("pbs_kb", num(r.pbs_kb)),
        ])
    })
}

/// Fig. 3's annotations as a JSON array of per-kernel profiles.
pub fn fig3_json(rows: &[Fig3Row]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("index", int(r.index as u64)),
            ("kernel", s(r.name)),
            ("luts", int(r.luts)),
            ("exec_micros", num(r.micros)),
        ])
    })
}

/// Fig. 4 as a JSON array of per-deployment latency/energy rows.
pub fn fig4_json(rows: &[Fig4Row]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("soc", s(&r.soc)),
            ("reconfigurable_tiles", int(r.tiles as u64)),
            ("ms_per_frame", num(r.ms_per_frame)),
            ("mj_per_frame", num(r.mj_per_frame)),
            ("reconfigs_per_frame", num(r.reconfigs_per_frame)),
            ("mean_changed_pixels", num(r.mean_changed_pixels)),
            ("scrub_ms_per_frame", num(r.scrub_ms_per_frame)),
            (
                "scrub_wait_cycles_per_frame",
                num(r.scrub_wait_cycles_per_frame),
            ),
        ])
    })
}

/// The prefetch ablation as a JSON array.
pub fn prefetch_ablation_json(rows: &[PrefetchAblationRow]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("soc", s(&r.soc)),
            ("prefetch_ms_per_frame", num(r.prefetch_ms)),
            ("no_prefetch_ms_per_frame", num(r.no_prefetch_ms)),
            ("speedup", num(r.speedup())),
        ])
    })
}

/// The compression ablation as a JSON array.
pub fn compression_ablation_json(rows: &[CompressionAblationRow]) -> JsonValue {
    arr(rows, |r| {
        obj(vec![
            ("module", s(&r.module)),
            ("raw_kb", num(r.raw_kb)),
            ("compressed_kb", num(r.compressed_kb)),
            ("raw_icap_ms", num(r.raw_ms)),
            ("compressed_icap_ms", num(r.compressed_ms)),
        ])
    })
}

/// The `BENCH_tables.json` document: Tables I–VI plus Fig. 3 in one object.
#[allow(clippy::too_many_arguments)]
pub fn tables_document(
    t1: &[(&str, &str, &str, &str)],
    t2: &[Table2Row],
    t3: &[Table3Row],
    t4: &[Table4Row],
    t5: &[Table5Row],
    t6: &[Table6Row],
    f3: &[Fig3Row],
) -> JsonValue {
    obj(vec![
        ("table1", table1_json(t1)),
        ("table2", table2_json(t2)),
        ("table3", table3_json(t3)),
        ("table4", table4_json(t4)),
        ("table5", table5_json(t5)),
        ("table6", table6_json(t6)),
        ("fig3", fig3_json(f3)),
    ])
}

/// The `BENCH_wami.json` document: the Fig. 4 WAMI deployment numbers.
pub fn wami_document(f4: &[Fig4Row]) -> JsonValue {
    obj(vec![("fig4", fig4_json(f4))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_events::json;

    #[test]
    fn table2_roundtrips_through_the_parser() {
        let rows = vec![
            Table2Row {
                name: "mac".into(),
                luts: 2450,
            },
            Table2Row {
                name: "fft".into(),
                luts: 33690,
            },
        ];
        let doc = table2_json(&rows);
        let parsed = json::parse(&doc.pretty()).expect("valid JSON");
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("component").unwrap().as_str(), Some("mac"));
        assert_eq!(arr[1].get("luts").unwrap().as_usize(), Some(33690));
    }

    #[test]
    fn merge_overload_replaces_without_touching_runs() {
        let run = OverloadRun {
            workers: 4,
            queue_capacity: 4,
            deadline_cycles: 5_000,
            submitted: 200,
            completed: 150,
            shed: 50,
            deadline_misses: 20,
            elapsed_secs: 0.5,
        };
        let doc = obj(vec![
            ("schema", s(RUNTIME_SCHEMA)),
            ("runs", JsonValue::Array(vec![int(1)])),
            ("overload", s("stale")),
        ]);
        let merged = merge_overload(doc, &run);
        let text = merged.pretty();
        let parsed = json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("runs").unwrap().as_array().unwrap().len(), 1);
        let ov = parsed.get("overload").unwrap();
        assert_eq!(ov.get("shed").unwrap().as_usize(), Some(50));
        assert!(matches!(
            ov.get("shed_rate"),
            Some(JsonValue::Number(r)) if (*r - 0.25).abs() < 1e-9
        ));
        assert!(matches!(
            ov.get("deadline_miss_rate"),
            Some(JsonValue::Number(r)) if (*r - 0.10).abs() < 1e-9
        ));
        assert!(!text.contains("stale"), "old overload object survived");
    }

    #[test]
    fn merge_overload_into_non_object_starts_fresh() {
        let run = OverloadRun {
            workers: 1,
            queue_capacity: 2,
            deadline_cycles: 0,
            submitted: 0,
            completed: 0,
            shed: 0,
            deadline_misses: 0,
            elapsed_secs: 0.0,
        };
        let merged = merge_overload(JsonValue::Null, &run);
        assert_eq!(merged.get("schema").unwrap().as_str(), Some(RUNTIME_SCHEMA));
        // Zero submissions must not divide by zero.
        assert!(matches!(
            merged.get("overload").unwrap().get("shed_rate"),
            Some(JsonValue::Number(r)) if *r == 0.0
        ));
    }

    #[test]
    fn serial_sweep_points_serialize_nulls() {
        use crate::experiments::TauPoint;
        let rows = vec![Table3Row {
            soc: "soc1".into(),
            alpha_av: 2.0,
            kappa: 60.0,
            gamma: 0.03,
            points: vec![TauPoint {
                tau: 1,
                t_static: None,
                max_omega: None,
                total: 540.0,
            }],
        }];
        let doc = table3_json(&rows);
        let text = doc.pretty();
        assert!(text.contains("\"t_static_min\": null"));
        json::parse(&text).expect("valid JSON");
    }
}
