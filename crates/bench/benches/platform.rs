//! Criterion benchmarks of the platform substrates: NoC, ICAP/bitstreams,
//! floorplanner and the CAD runtime model.

use criterion::{criterion_group, criterion_main, Criterion};
use presp_cad::flow::{CadFlow, Strategy};
use presp_core::design::SocDesign;
use presp_floorplan::{Floorplanner, RegionRequest};
use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
use presp_fpga::frame::FrameAddress;
use presp_fpga::icap::Icap;
use presp_fpga::part::FpgaPart;
use presp_fpga::resources::Resources;
use presp_soc::config::TileCoord;
use presp_soc::noc::{Noc, Plane};

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc_1000_transfers", |b| {
        b.iter(|| {
            let mut noc = Noc::new();
            let mut t = 0;
            for i in 0..1000u64 {
                let src = TileCoord::new((i % 3) as usize, 0);
                let dst = TileCoord::new(2, 2);
                t = noc.transfer(t, src, dst, 256 + i % 512, Plane::Dma).end;
            }
            t
        });
    });
}

fn bench_bitstream_and_icap(c: &mut Criterion) {
    let device = FpgaPart::Vc707.device();
    let words = device.part().family().frame_words();
    let mut builder = BitstreamBuilder::new(&device, BitstreamKind::Partial);
    for col in 1..30u32 {
        for minor in 0..20u32 {
            let content = if minor < 8 {
                vec![col * 131 + minor; words]
            } else {
                vec![0; words]
            };
            builder
                .add_frame(FrameAddress::new(0, col, minor), content)
                .expect("frame");
        }
    }
    c.bench_function("bitstream_build_compressed", |b| {
        b.iter(|| builder.build(true));
    });
    let bs = builder.build(true);
    c.bench_function("icap_load", |b| {
        b.iter(|| {
            let mut icap = Icap::new(&device);
            icap.load(&bs).expect("loads")
        });
    });
}

fn bench_floorplanner(c: &mut Criterion) {
    let device = FpgaPart::Vc707.device();
    let requests: Vec<RegionRequest> = [34_000u64, 30_000, 24_000, 21_500]
        .iter()
        .enumerate()
        .map(|(i, &l)| {
            RegionRequest::new(
                format!("rt{i}"),
                Resources::new(l, l * 13 / 10, l / 700, l / 400),
            )
        })
        .collect();
    c.bench_function("floorplan_4_wami_regions", |b| {
        let planner = Floorplanner::new(&device);
        b.iter(|| planner.floorplan(&requests).expect("plans"));
    });
}

fn bench_cad_schedules(c: &mut Criterion) {
    let spec = SocDesign::characterization_soc2()
        .unwrap()
        .to_spec()
        .unwrap();
    let cad = CadFlow::new();
    c.bench_function("cad_pnr_all_strategies", |b| {
        b.iter(|| {
            let serial = cad.run_pnr(&spec, Strategy::Serial).expect("serial");
            let semi = cad
                .run_pnr(&spec, Strategy::SemiParallel { tau: 2 })
                .expect("semi");
            let full = cad.run_pnr(&spec, Strategy::FullyParallel).expect("full");
            (serial.wall, semi.wall, full.wall)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_noc, bench_bitstream_and_icap, bench_floorplanner, bench_cad_schedules
);
criterion_main!(benches);
