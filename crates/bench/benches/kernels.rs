//! Criterion micro-benchmarks of the WAMI kernels and characterization
//! accelerators (host-side throughput of the behavioral models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presp_accel::{AccelInstance, AccelOp, AcceleratorKind};
use presp_wami::debayer::debayer;
use presp_wami::frames::SceneGenerator;
use presp_wami::lucas_kanade::{register, LkConfig};

fn bench_debayer(c: &mut Criterion) {
    let mut group = c.benchmark_group("debayer");
    for size in [64usize, 128] {
        let mut scene = SceneGenerator::new(size, size, 1);
        let raw = scene.next_frame();
        group.bench_with_input(BenchmarkId::from_parameter(size), &raw, |b, raw| {
            b.iter(|| debayer(raw).expect("debayer"));
        });
    }
    group.finish();
}

fn bench_lucas_kanade(c: &mut Criterion) {
    let mut group = c.benchmark_group("lucas_kanade_register");
    for size in [48usize, 64] {
        let mut scene = SceneGenerator::new(size, size, 7).without_objects();
        let template = scene.next_frame_gray();
        let input = scene.next_frame_gray();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| register(&template, &input, &LkConfig::default()).expect("registers"));
        });
    }
    group.finish();
}

fn bench_characterization_accels(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterization_accels");
    group.bench_function("gemm_32", |b| {
        let mut acc = AccelInstance::new(AcceleratorKind::Gemm);
        let a = vec![1.5f32; 32 * 32];
        let m = vec![0.5f32; 32 * 32];
        b.iter(|| {
            acc.execute(&AccelOp::Gemm {
                m: 32,
                k: 32,
                n: 32,
                a: a.clone(),
                b: m.clone(),
            })
            .expect("gemm")
        });
    });
    group.bench_function("fft_1024", |b| {
        let mut acc = AccelInstance::new(AcceleratorKind::Fft);
        let re: Vec<f32> = (0..1024).map(|i| (i as f32 * 0.1).sin()).collect();
        b.iter(|| {
            acc.execute(&AccelOp::Fft {
                re: re.clone(),
                im: vec![0.0; 1024],
            })
            .expect("fft")
        });
    });
    group.bench_function("sort_4096", |b| {
        let mut acc = AccelInstance::new(AcceleratorKind::Sort);
        let data: Vec<f32> = (0..4096)
            .map(|i| ((i * 2654435761u64 as usize) % 9973) as f32)
            .collect();
        b.iter(|| {
            acc.execute(&AccelOp::Sort { data: data.clone() })
                .expect("sort")
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_debayer, bench_lucas_kanade, bench_characterization_accels
);
criterion_main!(benches);
