//! Criterion wrappers around the paper's experiments: `cargo bench` runs
//! the regenerators for every table and figure (and prints their outputs
//! once, so a bench run records the reproduced evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use presp_bench::experiments;

fn bench_table3(c: &mut Criterion) {
    // Print the reproduced table once per bench run.
    for row in experiments::table3() {
        eprintln!("[table3] {} best τ = {}", row.soc, row.best_tau());
    }
    c.bench_function("table3_characterization_sweep", |b| {
        b.iter(experiments::table3);
    });
}

fn bench_table4(c: &mut Criterion) {
    for r in experiments::table4() {
        eprintln!(
            "[table4] {}: chose {} ({:.0} min), best {:.0} min",
            r.soc,
            r.chosen,
            r.chosen_total(),
            r.best_total()
        );
    }
    c.bench_function("table4_wami_pnr_eval", |b| {
        b.iter(experiments::table4);
    });
}

fn bench_table5(c: &mut Criterion) {
    for r in experiments::table5() {
        eprintln!(
            "[table5] {}: {:+.1}% vs monolithic",
            r.soc,
            r.improvement_pct()
        );
    }
    c.bench_function("table5_flow_vs_monolithic", |b| {
        b.iter(experiments::table5);
    });
}

fn bench_table6(c: &mut Criterion) {
    for r in experiments::table6() {
        eprintln!("[table6] {} {}: {:.0} KB", r.soc, r.tile, r.pbs_kb);
    }
    c.bench_function("table6_pbs_generation", |b| {
        b.iter(experiments::table6);
    });
}

fn bench_fig3(c: &mut Criterion) {
    for r in experiments::fig3(64) {
        eprintln!("[fig3] #{} {}: {:.1} µs", r.index, r.name, r.micros);
    }
    c.bench_function("fig3_profiling", |b| {
        b.iter(|| experiments::fig3(64));
    });
}

fn bench_fig4(c: &mut Criterion) {
    for r in experiments::fig4(4, 48, 2) {
        eprintln!(
            "[fig4] {}: {:.2} ms/frame, {:.2} mJ/frame",
            r.soc, r.ms_per_frame, r.mj_per_frame
        );
    }
    c.bench_function("fig4_wami_deployments", |b| {
        b.iter(|| experiments::fig4(4, 48, 2));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3, bench_table4, bench_table5, bench_table6, bench_fig3, bench_fig4
);
criterion_main!(benches);
