//! Fixture corpus: one minimal violating file per check, each proven to
//! be flagged at its exact line.
//!
//! Every fixture marks its expected findings with a `// FLAG:<rule>`
//! trailing comment; the harness derives the expected `(line, rule)` set
//! from those markers and requires the analyzer's findings to match them
//! exactly (cycle findings, which summarize whole strongly connected
//! components, are asserted separately).

use presp_analyze::manifest::Manifest;
use presp_analyze::{analyze, Analysis, Options};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The `(line, rule)` pairs a fixture marks with `// FLAG:<rule>`.
fn flags(file: &str) -> Vec<(usize, String)> {
    let text = std::fs::read_to_string(fixtures_dir().join(file)).unwrap();
    text.lines()
        .enumerate()
        .filter_map(|(idx, line)| {
            line.split("// FLAG:")
                .nth(1)
                .map(|rule| (idx + 1, rule.trim().to_string()))
        })
        .collect()
}

fn run(manifest_json: &str) -> Analysis {
    let manifest = Manifest::parse(manifest_json).unwrap();
    analyze(&fixtures_dir(), &manifest, &Options::default())
}

/// Asserts the non-cycle findings in `file` are exactly its FLAG markers.
fn assert_flagged_exactly(analysis: &Analysis, file: &str) {
    let expected = flags(file);
    assert!(!expected.is_empty(), "{file} has no FLAG markers");
    let got: Vec<(usize, String)> = analysis
        .findings
        .iter()
        .filter(|f| f.rule != "lock-cycle")
        .map(|f| {
            assert_eq!(f.file, file, "finding in unexpected file: {f}");
            (f.line, f.rule.clone())
        })
        .collect();
    assert_eq!(got, expected, "findings for {file}");
}

#[test]
fn lock_order_inversion_is_flagged_at_exact_line() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "lock_order": {
    "roots": ["lock_order_inversion.rs"],
    "edges": [["alpha", "beta"]]
  }
}"#);
    assert_flagged_exactly(&analysis, "lock_order_inversion.rs");
    let cycles: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "lock-cycle")
        .collect();
    assert_eq!(
        cycles.len(),
        1,
        "the inversion closes an {{alpha, beta}} cycle"
    );
    assert!(cycles[0].message.contains("alpha") && cycles[0].message.contains("beta"));
    assert!(
        cycles[0].message.contains("lock_order_inversion.rs:"),
        "cycle message spells out acquisition sites: {}",
        cycles[0].message
    );
}

#[test]
fn undeclared_edge_is_flagged_without_cycle() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "lock_order": {
    "roots": ["undeclared_edge.rs"],
    "edges": [["alpha", "beta"]]
  }
}"#);
    assert_flagged_exactly(&analysis, "undeclared_edge.rs");
    assert!(
        analysis.findings.iter().all(|f| f.rule != "lock-cycle"),
        "alpha -> gamma alone is not a cycle"
    );
    let f = &analysis.findings[0];
    assert!(
        f.message.contains("alpha -> gamma"),
        "edge named in the message: {}",
        f.message
    );
}

#[test]
fn send_while_locked_is_flagged() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "hazards": {"guard_roots": ["send_while_locked.rs"]}
}"#);
    assert_flagged_exactly(&analysis, "send_while_locked.rs");
    assert!(analysis.findings[0].message.contains("alpha"));
}

#[test]
fn unwrap_on_lock_outside_doorway_is_flagged() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "hazards": {"unwrap_roots": ["unwrap_on_lock.rs"]}
}"#);
    assert_flagged_exactly(&analysis, "unwrap_on_lock.rs");
}

#[test]
fn unwrap_on_lock_doorway_file_is_exempt() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "hazards": {
    "unwrap_roots": ["unwrap_on_lock.rs"],
    "unwrap_doorways": ["unwrap_on_lock.rs"]
  }
}"#);
    assert!(analysis.is_clean(), "doorway files may unwrap lock results");
}

#[test]
fn doorway_breach_pattern_rule_fires_only_on_code() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "pattern_rules": [
    {
      "name": "sync-facade",
      "roots": ["doorway_breach.rs"],
      "forbidden": ["std::sync"],
      "why": "facade doorway"
    }
  ]
}"#);
    assert_flagged_exactly(&analysis, "doorway_breach.rs");
}

#[test]
fn wait_on_wrong_lock_is_flagged() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "lock_order": {
    "roots": ["wait_wrong_lock.rs"],
    "edges": [["alpha", "beta"]]
  },
  "hazards": {"guard_roots": ["wait_wrong_lock.rs"]}
}"#);
    assert_flagged_exactly(&analysis, "wait_wrong_lock.rs");
    assert!(analysis.findings[0].message.contains("alpha, beta"));
}

#[test]
fn cfg_test_desync_regression_production_line_after_test_mod_is_flagged() {
    let analysis = run(r#"{
  "schema": "presp-analyze/v1",
  "pattern_rules": [
    {
      "name": "sync-facade",
      "roots": ["cfg_test_desync.rs"],
      "forbidden": ["std::sync"],
      "why": "facade doorway"
    }
  ]
}"#);
    assert_flagged_exactly(&analysis, "cfg_test_desync.rs");
}

/// A faithful replica of the old `presp-lint` cfg(test) skipper: it
/// `break`s at the first `#[cfg(test)] mod` line and never scans the rest
/// of the file. This is the bug the fixture pins down — the replica finds
/// nothing in `cfg_test_desync.rs` even though a forbidden production
/// import follows the test module.
#[test]
fn old_scanner_replica_misses_the_regression_fixture() {
    let text = std::fs::read_to_string(fixtures_dir().join("cfg_test_desync.rs")).unwrap();
    let mut pending_cfg_test = false;
    let mut old_findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed == "#[cfg(test)]" {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                break; // the old scanner abandons the file here
            }
            if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        if !raw.trim_start().starts_with("//") && raw.contains("std::sync") {
            old_findings.push(idx + 1);
        }
    }
    assert!(
        old_findings.is_empty(),
        "the old scanner silently exempted the production import"
    );
    assert!(
        !flags("cfg_test_desync.rs").is_empty(),
        "…which the fixture marks as a required finding"
    );
}
