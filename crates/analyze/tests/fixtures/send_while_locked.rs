//! Violating fixture: a channel send while the `alpha` guard is live. A
//! bounded (or rendezvous) channel would block inside the critical
//! section; even an unbounded one forces the receiver to contend.

struct Shared {
    alpha: Mutex<u32>,
    done_tx: Sender<u32>,
}

fn build(v: u32) -> Shared {
    Shared {
        alpha: S::mutex_labeled("alpha", v),
        done_tx: S::channel().0,
    }
}

fn notify(s: &Shared) {
    let g = S::lock(&s.alpha);
    let _ = S::send(&s.done_tx, *g); // FLAG:send-while-locked
}
