//! Violating fixture: a raw `.lock().unwrap()` outside the designated
//! poison-recovery doorway files. One poisoned lock and every later
//! reader panics; the facade's `lock`/`lock_recover` is the doorway.

struct Counter {
    inner: std::sync::Mutex<u64>,
}

fn read(c: &Counter) -> u64 {
    *c.inner.lock().unwrap() // FLAG:unwrap-on-lock
}
