//! Violating fixture: a condvar wait on `beta` while the unrelated
//! `alpha` guard stays held. The wait releases only the guard it
//! consumes; `alpha` is pinned for the entire (possibly unbounded) wait.

struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    beta_cv: Condvar,
}

fn build() -> Shared {
    Shared {
        alpha: S::mutex_labeled("alpha", 0),
        beta: S::mutex_labeled("beta", 0),
        beta_cv: S::condvar(),
    }
}

fn wait_for_signal(s: &Shared) {
    let a = S::lock(&s.alpha);
    let mut b = S::lock(&s.beta);
    b = S::wait(&s.beta_cv, b); // FLAG:wait-wrong-lock
    drop(b);
    drop(a);
}
