//! Violating fixture: `backward` nests the two locks against the declared
//! `alpha -> beta` order. The analyzer must report the undeclared
//! `beta -> alpha` edge at the exact inner-acquisition line, and the
//! resulting `{alpha, beta}` cycle.

struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

fn build() -> Shared {
    Shared {
        alpha: S::mutex_labeled("alpha", 0),
        beta: S::mutex_labeled("beta", 0),
    }
}

fn forward(s: &Shared) {
    let a = S::lock(&s.alpha);
    let b = S::lock(&s.beta);
    drop(b);
    drop(a);
}

fn backward(s: &Shared) {
    let b = S::lock(&s.beta);
    let a = S::lock(&s.alpha); // FLAG:lock-order
    drop(a);
    drop(b);
}
