//! Violating fixture for the pattern rules: a direct `std::sync` import
//! in facade-disciplined code. Note the same pattern inside the string
//! and the comment below must NOT be flagged — only the real import is.

fn describe() -> &'static str {
    "this string mentions std::sync and must not trip the rule"
}

// a comment mentioning std::sync must not trip the rule either

use std::sync::Mutex; // FLAG:sync-facade

fn guarded(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}
