//! Violating fixture: `takes_both` nests `gamma` inside `alpha`, an edge
//! the declared lock-order DAG (`alpha -> beta` only) does not allow. No
//! cycle — just the undeclared edge, at the inner acquisition line.

struct Shared {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
}

fn build() -> Shared {
    Shared {
        alpha: S::mutex_labeled("alpha", 0),
        beta: S::mutex_labeled("beta", 0),
        gamma: S::mutex_labeled("gamma", 0),
    }
}

fn declared(s: &Shared) {
    let a = S::lock(&s.alpha);
    let b = S::lock(&s.beta);
    drop(b);
    drop(a);
}

fn takes_both(s: &Shared) {
    let a = S::lock(&s.alpha);
    let g = S::lock(&s.gamma); // FLAG:lock-order
    drop(g);
    drop(a);
}
