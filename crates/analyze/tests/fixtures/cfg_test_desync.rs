//! Regression fixture for the old `presp-lint` cfg(test) region skipper.
//!
//! The old scanner stopped at the *first* `#[cfg(test)] mod` line and
//! never scanned the rest of the file, and a naive brace counter would be
//! desynchronized by the `{` inside the string literal below. Both flaws
//! silently exempt the production import after the test module. The
//! token-level region tracker must resume after the module's real closing
//! brace and flag that import at its exact line.

pub fn production() -> usize {
    42
}

#[cfg(test)]
mod tests {
    use super::production;

    #[test]
    fn brace_inside_string_desyncs_naive_scanners() {
        let tricky = "unbalanced { brace";
        assert_eq!(tricky.len(), 18);
        assert_eq!(production(), 42);
    }
}

use std::sync::Mutex; // FLAG:sync-facade

pub fn after_tests(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}
