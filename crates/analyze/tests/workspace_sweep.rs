//! Clean-sweep test over the real workspace: the shipped `analyze.json`
//! manifest must find nothing in the production tree by default, and the
//! static lock graph must contain exactly the declared edges. With
//! `include_mutants` the committed inversion mutants must surface as
//! findings at the exact marked lines.

use presp_analyze::manifest::Manifest;
use presp_analyze::{analyze, Options};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn load_manifest() -> Manifest {
    Manifest::load(&workspace_root().join("analyze.json")).unwrap()
}

#[test]
fn real_workspace_is_clean_by_default() {
    let analysis = analyze(&workspace_root(), &load_manifest(), &Options::default());
    assert!(
        analysis.is_clean(),
        "unexpected findings:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        analysis.files_scanned >= 200,
        "sweep covered only {} files",
        analysis.files_scanned
    );
}

#[test]
fn static_graph_matches_declared_dag_exactly() {
    let manifest = load_manifest();
    let analysis = analyze(&workspace_root(), &manifest, &Options::default());
    let declared: BTreeSet<(String, String)> = manifest.lock_order.edges.iter().cloned().collect();
    let observed: BTreeSet<(String, String)> = analysis.graph.edge_pairs().into_iter().collect();
    assert_eq!(
        observed, declared,
        "static lock graph must realize exactly the declared DAG"
    );
}

#[test]
fn committed_mutants_are_flagged_statically_at_marked_lines() {
    let root = workspace_root();
    let analysis = analyze(
        &root,
        &load_manifest(),
        &Options {
            include_mutants: true,
        },
    );

    let order: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    let edges: BTreeSet<&str> = order.iter().map(|f| f.message.as_str()).collect();
    assert!(
        edges
            .iter()
            .any(|e| e.contains("`tile_queue -> sched_admission`")),
        "queue_admission_inversion mutant must surface: {edges:?}"
    );
    assert!(
        edges.iter().any(|e| e.contains("`core -> tile_state`")),
        "shard_core_inversion mutant must surface: {edges:?}"
    );
    assert!(
        edges.iter().any(|e| e.contains("`scrub_stats ->")),
        "scrubber lock_inversion mutant must surface: {edges:?}"
    );

    let cycles = analysis
        .findings
        .iter()
        .filter(|f| f.rule == "lock-cycle")
        .count();
    assert!(cycles >= 2, "both inversions close cycles, found {cycles}");

    // Exact-line precision without hardcoding numbers: a direct finding
    // sits on a line literally carrying the mutant marker; a finding
    // propagated through a call chain ("via a -> b") sits at the call
    // site, with the marked acquisition above it in the same file.
    for f in &order {
        let text = std::fs::read_to_string(root.join(&f.file)).unwrap();
        let line = text.lines().nth(f.line - 1).unwrap_or("");
        if line.contains("presp-analyze: mutant") {
            continue;
        }
        let propagated = f.message.contains(" -> ") && f.message.contains("via");
        let marked_above = text
            .lines()
            .take(f.line - 1)
            .any(|l| l.contains("presp-analyze: mutant"));
        assert!(
            propagated && marked_above,
            "{}:{} is neither a marked mutant line nor a call-site witness \
             of one: {line}",
            f.file,
            f.line
        );
    }
}
