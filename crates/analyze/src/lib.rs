//! `presp-analyze` — token-level static analysis for the PR-ESP workspace.
//!
//! Three passes over a comment/string-aware lex of the source tree, all
//! driven by one declarative manifest (`analyze.json`):
//!
//! 1. **Pattern rules** — the doorway/discipline checks `presp-lint` used
//!    to hard-code (sync-facade, virtual-time, config-memory, tile-shard,
//!    trace-sink), matched against blanked source lines so strings and
//!    comments can never trigger or hide a finding.
//! 2. **Lock-order pass** — every facade lock field is labeled by its
//!    `mutex_labeled` declaration; a guard-scope tracker computes which
//!    locks are acquired while another guard is live (per function, with
//!    one level of intra-crate call propagation); the resulting workspace
//!    lock graph is run through Tarjan SCC and diffed against the declared
//!    lock-order DAG. Any undeclared edge or cycle is a finding with the
//!    acquisition chain spelled out.
//! 3. **Held-guard hazards** — channel `send`/`recv` while a guard is
//!    live, `Condvar::wait` with a second (different) lock held, and
//!    `.lock().unwrap()`/`.expect(` outside the poison-recovering doorway
//!    files.
//!
//! The committed deadlock mutants (`queue_admission_inversion`,
//! `shard_core_inversion`, scrubber `lock_inversion`) are marked with
//! `presp-analyze: mutant` line markers: the default sweep skips them, and
//! `Options::include_mutants` (CLI `--mutants`) analyzes them — the
//! inverted edges must then surface as undeclared-edge and cycle findings.
//!
//! No external dependencies; JSON comes from the in-tree
//! [`presp_events::json`] module.

pub mod graph;
pub mod guards;
pub mod lexer;
pub mod manifest;

use graph::{EdgeSite, LockGraph};
use guards::{FileScan, ScanContext};
use lexer::LexedFile;
use manifest::Manifest;
use presp_events::json::JsonValue;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Schema tag of the machine-readable findings document.
pub const FINDINGS_SCHEMA: &str = "presp-analyze-findings/v1";

/// Analysis options.
#[derive(Debug, Clone, Copy, Default)]
pub struct Options {
    /// Analyze acquisitions on `presp-analyze: mutant` lines too. The
    /// committed deadlock mutants must then surface as findings.
    pub include_mutants: bool,
}

/// One finding, with `file:line` precision.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule name (`sync-facade`, `lock-order`, `lock-cycle`, …).
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The full result of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// All findings in deterministic order.
    pub findings: Vec<Finding>,
    /// The statically derived lock graph (declared + observed edges all
    /// witnessed in source).
    pub graph: LockGraph,
    /// Per-rule-per-file scan count (pattern rules) plus the lock/hazard
    /// and unwrap pass file counts.
    pub files_scanned: usize,
}

impl Analysis {
    /// True when the sweep produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings as a machine-readable JSON document (bench-export
    /// style), including the derived lock graph.
    pub fn to_json(&self, opts: &Options) -> JsonValue {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                JsonValue::Object(vec![
                    ("rule".into(), JsonValue::String(f.rule.clone())),
                    ("file".into(), JsonValue::String(f.file.clone())),
                    ("line".into(), JsonValue::Number(f.line as f64)),
                    ("message".into(), JsonValue::String(f.message.clone())),
                ])
            })
            .collect();
        let edges = self
            .graph
            .edges()
            .map(|((outer, inner), site)| {
                JsonValue::Object(vec![
                    ("outer".into(), JsonValue::String(outer.clone())),
                    ("inner".into(), JsonValue::String(inner.clone())),
                    ("file".into(), JsonValue::String(site.file.clone())),
                    ("line".into(), JsonValue::Number(site.line as f64)),
                    (
                        "via".into(),
                        JsonValue::Array(
                            site.chain
                                .iter()
                                .map(|c| JsonValue::String(c.clone()))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("schema".into(), JsonValue::String(FINDINGS_SCHEMA.into())),
            (
                "files_scanned".into(),
                JsonValue::Number(self.files_scanned as f64),
            ),
            (
                "include_mutants".into(),
                JsonValue::Bool(opts.include_mutants),
            ),
            ("findings".into(), JsonValue::Array(findings)),
            (
                "lock_graph".into(),
                JsonValue::Object(vec![("edges".into(), JsonValue::Array(edges))]),
            ),
        ])
    }
}

/// Recursively collects `.rs` files under `path` (or `path` itself when it
/// is a file), sorted for determinism.
fn rust_files(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Cached per-file lex plus the line sets the passes need.
struct FileData {
    lexed: LexedFile,
    /// Token-index ranges of `#[cfg(test)] mod` regions.
    test_ranges: Vec<(usize, usize)>,
    /// 1-based lines inside `#[cfg(test)] mod` regions.
    test_lines: BTreeSet<usize>,
    /// Lines carrying an explicit allow marker.
    allow_lines: BTreeSet<usize>,
    /// Lines carrying a `presp-analyze: mutant` marker.
    mutant_lines: BTreeSet<usize>,
}

struct Workspace<'a> {
    root: &'a Path,
    cache: BTreeMap<PathBuf, FileData>,
}

impl<'a> Workspace<'a> {
    fn load(&mut self, path: &Path) -> Option<&FileData> {
        if !self.cache.contains_key(path) {
            let source = std::fs::read_to_string(path).ok()?;
            let lexed = lexer::lex(&source);
            let test_ranges = lexer::cfg_test_mod_ranges(&lexed.tokens);
            let test_lines = lexer::lines_of_ranges(&lexed.tokens, &test_ranges);
            let mut allow_lines = BTreeSet::new();
            let mut mutant_lines = BTreeSet::new();
            for (idx, raw) in source.lines().enumerate() {
                if raw.contains("presp-lint: allow") || raw.contains("presp-analyze: allow") {
                    allow_lines.insert(idx + 1);
                }
                if raw.contains("presp-analyze: mutant") {
                    mutant_lines.insert(idx + 1);
                }
            }
            self.cache.insert(
                path.to_path_buf(),
                FileData {
                    lexed,
                    test_ranges,
                    test_lines,
                    allow_lines,
                    mutant_lines,
                },
            );
        }
        self.cache.get(path)
    }

    fn rel(&self, path: &Path) -> String {
        path.strip_prefix(self.root)
            .unwrap_or(path)
            .display()
            .to_string()
    }
}

/// Run the full analysis of the tree at `root` under `manifest`.
pub fn analyze(root: &Path, manifest: &Manifest, opts: &Options) -> Analysis {
    let mut ws = Workspace {
        root,
        cache: BTreeMap::new(),
    };
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;

    // -- pass 1: pattern rules ------------------------------------------
    for rule in &manifest.pattern_rules {
        for dir in &rule.roots {
            let mut files = Vec::new();
            rust_files(&root.join(dir), &mut files);
            for file in files {
                let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if rule.exempt_files.iter().any(|e| e == name) {
                    continue;
                }
                files_scanned += 1;
                let rel = ws.rel(&file);
                let Some(data) = ws.load(&file) else {
                    continue;
                };
                for (idx, line) in data.lexed.blanked_lines().iter().enumerate() {
                    let lineno = idx + 1;
                    if data.test_lines.contains(&lineno) || data.allow_lines.contains(&lineno) {
                        continue;
                    }
                    for pattern in &rule.forbidden {
                        if line.contains(pattern.as_str()) {
                            findings.push(Finding {
                                rule: rule.name.clone(),
                                file: rel.clone(),
                                line: lineno,
                                message: format!("forbidden `{pattern}` — {}", rule.why),
                            });
                        }
                    }
                }
            }
        }
    }

    // -- pass 2: lock-order + held-guard hazards ------------------------
    let spec = &manifest.lock_order;
    let mut lock_files = Vec::new();
    for dir in &spec.roots {
        rust_files(&root.join(dir), &mut lock_files);
    }
    lock_files.sort();
    lock_files.dedup();

    // Label discovery over the whole scope, then manifest aliases on top.
    let mut labels: BTreeMap<String, String> = BTreeMap::new();
    for file in &lock_files {
        let rel = ws.rel(file);
        let Some(data) = ws.load(file) else { continue };
        let (found, conflicts) = guards::discover_labels(&data.lexed.tokens);
        for (name, line) in conflicts {
            if !spec.aliases.contains_key(&name) {
                findings.push(Finding {
                    rule: "ambiguous-lock-label".into(),
                    file: rel.clone(),
                    line,
                    message: format!(
                        "binding `{name}` is labeled inconsistently across \
                         `mutex_labeled` sites; add a lock_order alias"
                    ),
                });
            }
        }
        for (name, label) in found {
            labels.entry(name).or_insert(label);
        }
    }
    for (name, label) in &spec.aliases {
        labels.insert(name.clone(), label.clone());
    }

    let hazard_roots: BTreeSet<PathBuf> = {
        let mut set = BTreeSet::new();
        for dir in &manifest.hazards.guard_roots {
            let mut fs = Vec::new();
            rust_files(&root.join(dir), &mut fs);
            set.extend(fs);
        }
        set
    };

    let mut scans: Vec<(PathBuf, FileScan)> = Vec::new();
    for file in &lock_files {
        files_scanned += 1;
        let rel = ws.rel(file);
        let Some(data) = ws.load(file) else { continue };
        let mut skip: BTreeSet<usize> = data.allow_lines.clone();
        if !opts.include_mutants {
            skip.extend(data.mutant_lines.iter().copied());
        }
        let ctx = ScanContext {
            facades: &spec.facades,
            labels: &labels,
            skip_lines: &skip,
            excluded: &data.test_ranges,
        };
        let scan = guards::scan_file(&data.lexed.tokens, &ctx);
        if hazard_roots.contains(file) {
            for hz in &scan.hazards {
                findings.push(Finding {
                    rule: hz.rule.clone(),
                    file: rel.clone(),
                    line: hz.line,
                    message: hz.message.clone(),
                });
            }
        }
        scans.push((file.clone(), scan));
    }
    // Hazard-only files not already covered by the lock scope.
    for file in &hazard_roots {
        if lock_files.contains(file) {
            continue;
        }
        files_scanned += 1;
        let rel = ws.rel(file);
        let Some(data) = ws.load(file) else { continue };
        let mut skip: BTreeSet<usize> = data.allow_lines.clone();
        if !opts.include_mutants {
            skip.extend(data.mutant_lines.iter().copied());
        }
        let ctx = ScanContext {
            facades: &spec.facades,
            labels: &labels,
            skip_lines: &skip,
            excluded: &data.test_ranges,
        };
        let scan = guards::scan_file(&data.lexed.tokens, &ctx);
        for hz in &scan.hazards {
            findings.push(Finding {
                rule: hz.rule.clone(),
                file: rel.clone(),
                line: hz.line,
                message: hz.message.clone(),
            });
        }
        scans.push((file.clone(), scan));
    }

    // Build the graph: direct edges, then one level of call propagation
    // through callees whose bare name is unique in the scope.
    let mut graph = LockGraph::new();
    let mut fn_table: BTreeMap<String, (usize, Vec<guards::Acquisition>)> = BTreeMap::new();
    for (_, scan) in &scans {
        for f in &scan.functions {
            let entry = fn_table
                .entry(f.name.clone())
                .or_insert_with(|| (0, Vec::new()));
            entry.0 += 1;
            entry.1.extend(f.acquired.iter().cloned());
        }
    }
    for (file, scan) in &scans {
        let rel = ws.rel(file);
        for f in &scan.functions {
            for (outer, inner, line) in &f.edges {
                graph.add_edge(
                    outer,
                    inner,
                    EdgeSite {
                        file: rel.clone(),
                        line: *line,
                        chain: vec![f.name.clone()],
                    },
                );
            }
            for call in &f.calls {
                let Some((count, acquired)) = fn_table.get(&call.callee) else {
                    continue;
                };
                if *count != 1 || acquired.is_empty() {
                    continue;
                }
                for held in &call.held {
                    for acq in acquired {
                        graph.add_edge(
                            held,
                            &acq.label,
                            EdgeSite {
                                file: rel.clone(),
                                line: call.line,
                                chain: vec![f.name.clone(), call.callee.clone()],
                            },
                        );
                    }
                }
            }
        }
    }

    // Diff against the declared DAG.
    let declared: BTreeSet<(String, String)> = spec.edges.iter().cloned().collect();
    for ((outer, inner), site) in graph.edges() {
        if !declared.contains(&(outer.clone(), inner.clone())) {
            findings.push(Finding {
                rule: "lock-order".into(),
                file: site.file.clone(),
                line: site.line,
                message: format!(
                    "undeclared lock-order edge `{outer} -> {inner}`: {}",
                    site.describe(outer, inner)
                ),
            });
        }
    }
    for cycle in graph.cycles() {
        let mut sites = Vec::new();
        for outer in &cycle {
            for inner in &cycle {
                if let Some(site) = graph.site(outer, inner) {
                    sites.push(format!(
                        "{} at {}:{}",
                        site.describe(outer, inner),
                        site.file,
                        site.line
                    ));
                }
            }
        }
        let anchor = cycle
            .iter()
            .flat_map(|o| cycle.iter().filter_map(|i| graph.site(o, i)))
            .next();
        findings.push(Finding {
            rule: "lock-cycle".into(),
            file: anchor.map(|s| s.file.clone()).unwrap_or_default(),
            line: anchor.map(|s| s.line).unwrap_or_default(),
            message: format!(
                "potential deadlock cycle among {{{}}}: {}",
                cycle.join(", "),
                sites.join("; ")
            ),
        });
    }

    // -- pass 3: unwrap-on-lock outside the poison doorways -------------
    for dir in &manifest.hazards.unwrap_roots {
        let mut files = Vec::new();
        rust_files(&root.join(dir), &mut files);
        for file in files {
            let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if manifest.hazards.unwrap_doorways.iter().any(|d| d == name) {
                continue;
            }
            files_scanned += 1;
            let rel = ws.rel(&file);
            let Some(data) = ws.load(&file) else { continue };
            for line in guards::scan_unwrap_on_lock(
                &data.lexed.tokens,
                &data.test_ranges,
                &data.allow_lines,
            ) {
                findings.push(Finding {
                    rule: "unwrap-on-lock".into(),
                    file: rel.clone(),
                    line,
                    message: "lock result unwrapped outside a poison-recovering \
                              doorway; use the facade's lock/lock_recover"
                        .into(),
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Analysis {
        findings,
        graph,
        files_scanned,
    }
}

/// Walk up from `start` to the workspace root (the directory containing
/// `analyze.json`, falling back to the one containing `crates/`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("analyze.json").is_file() || dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Shared CLI driver for `presp-analyze` and the `presp-lint` wrapper.
/// Returns the process exit code (0 clean, 1 findings, 2 usage/IO error).
pub fn run_cli(tool: &str, args: &[String]) -> i32 {
    let mut opts = Options::default();
    let mut json_out: Option<Option<PathBuf>> = None;
    let mut manifest_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--mutants" => opts.include_mutants = true,
            "--json" => {
                let file = args
                    .get(i + 1)
                    .filter(|a| !a.starts_with("--"))
                    .map(PathBuf::from);
                if file.is_some() {
                    i += 1;
                }
                json_out = Some(file);
            }
            "--manifest" => {
                i += 1;
                match args.get(i) {
                    Some(p) => manifest_path = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("{tool}: --manifest requires a path");
                        return 2;
                    }
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root_arg = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("{tool}: --root requires a path");
                        return 2;
                    }
                }
            }
            other => {
                eprintln!(
                    "{tool}: unknown argument `{other}` \
                     (usage: {tool} [--json [FILE]] [--mutants] [--manifest FILE] [--root DIR])"
                );
                return 2;
            }
        }
        i += 1;
    }

    let root =
        match root_arg.or_else(|| std::env::current_dir().ok().and_then(|cwd| find_root(&cwd))) {
            Some(r) => r,
            None => {
                eprintln!("{tool}: workspace root (containing analyze.json or crates/) not found");
                return 2;
            }
        };
    let manifest_file = manifest_path.unwrap_or_else(|| root.join("analyze.json"));
    let manifest = match Manifest::load(&manifest_file) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{tool}: {e}");
            return 2;
        }
    };

    let analysis = analyze(&root, &manifest, &opts);
    if let Some(dest) = &json_out {
        let doc = analysis.to_json(&opts).pretty() + "\n";
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &doc) {
                    eprintln!("{tool}: cannot write {}: {e}", path.display());
                    return 2;
                }
                eprintln!("{tool}: findings written to {}", path.display());
            }
            None => print!("{doc}"),
        }
    }
    if analysis.is_clean() {
        eprintln!("{tool}: {} files clean", analysis.files_scanned);
        0
    } else {
        for finding in &analysis.findings {
            eprintln!("{finding}");
        }
        eprintln!(
            "{tool}: {} finding(s) in {} files",
            analysis.findings.len(),
            analysis.files_scanned
        );
        1
    }
}
