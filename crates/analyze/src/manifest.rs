//! The declarative rule manifest (`analyze.json`).
//!
//! Everything the analyzer enforces is data: the doorway/discipline
//! pattern rules that used to be hard-coded in `presp-lint`, the declared
//! lock-order DAG the static graph is diffed against, and the scopes of
//! the held-guard hazard passes.

use presp_events::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::path::Path;

/// Schema tag expected at the top of `analyze.json`.
pub const MANIFEST_SCHEMA: &str = "presp-analyze/v1";

/// One line-oriented forbidden-pattern rule (the old `presp-lint` rules,
/// now data). Patterns are matched against blanked source lines, so
/// strings and comments can never trigger a rule.
#[derive(Debug, Clone)]
pub struct PatternRule {
    /// Rule name used in findings and JSON output.
    pub name: String,
    /// Directories (or single files) to scan, relative to the root.
    pub roots: Vec<String>,
    /// File names exempt from this rule (the doorway implementations).
    pub exempt_files: Vec<String>,
    /// Substrings that must not appear outside tests/doorways.
    pub forbidden: Vec<String>,
    /// Human rationale, echoed in findings.
    pub why: String,
}

/// Configuration of the static lock-order pass.
#[derive(Debug, Clone, Default)]
pub struct LockOrderSpec {
    /// Subtrees whose functions are analyzed for lock acquisitions.
    pub roots: Vec<String>,
    /// Facade type idents through which locks are taken (e.g. `S`).
    pub facades: Vec<String>,
    /// Extra binding-name → label aliases where discovery is ambiguous.
    pub aliases: BTreeMap<String, String>,
    /// The declared DAG: `(outer, inner)` pairs that are allowed.
    pub edges: Vec<(String, String)>,
}

/// Configuration of the held-guard hazard pass.
#[derive(Debug, Clone, Default)]
pub struct HazardSpec {
    /// Subtrees scanned for send/recv/wait-while-locked hazards.
    pub guard_roots: Vec<String>,
    /// Subtrees scanned for `.lock().unwrap()` outside doorways.
    pub unwrap_roots: Vec<String>,
    /// File names allowed to unwrap/expect lock results (poison doorways).
    pub unwrap_doorways: Vec<String>,
}

/// The full parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Pattern rules (doorway and discipline checks).
    pub pattern_rules: Vec<PatternRule>,
    /// Lock-order pass configuration.
    pub lock_order: LockOrderSpec,
    /// Hazard pass configuration.
    pub hazards: HazardSpec,
}

fn str_list(v: &JsonValue, what: &str) -> Result<Vec<String>, String> {
    let items = v
        .as_array()
        .ok_or_else(|| format!("{what} must be an array of strings"))?;
    items
        .iter()
        .map(|it| {
            it.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what} entries must be strings"))
        })
        .collect()
}

fn require<'v>(obj: &'v JsonValue, key: &str, what: &str) -> Result<&'v JsonValue, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what} is missing required key `{key}`"))
}

impl Manifest {
    /// Parse a manifest from JSON text.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = json::parse(text)?;
        let schema = require(&doc, "schema", "manifest")?
            .as_str()
            .ok_or("manifest `schema` must be a string")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest schema `{schema}` unsupported (expected `{MANIFEST_SCHEMA}`)"
            ));
        }

        let mut pattern_rules = Vec::new();
        if let Some(rules) = doc.get("pattern_rules") {
            for rule in rules.as_array().ok_or("`pattern_rules` must be an array")? {
                let name = require(rule, "name", "pattern rule")?
                    .as_str()
                    .ok_or("pattern rule `name` must be a string")?
                    .to_string();
                let what = format!("pattern rule `{name}`");
                pattern_rules.push(PatternRule {
                    roots: str_list(require(rule, "roots", &what)?, &format!("{what} roots"))?,
                    exempt_files: match rule.get("exempt_files") {
                        Some(v) => str_list(v, &format!("{what} exempt_files"))?,
                        None => Vec::new(),
                    },
                    forbidden: str_list(
                        require(rule, "forbidden", &what)?,
                        &format!("{what} forbidden"),
                    )?,
                    why: require(rule, "why", &what)?
                        .as_str()
                        .ok_or("pattern rule `why` must be a string")?
                        .to_string(),
                    name,
                });
            }
        }

        let mut lock_order = LockOrderSpec {
            facades: vec!["S".to_string()],
            ..LockOrderSpec::default()
        };
        if let Some(lo) = doc.get("lock_order") {
            lock_order.roots = str_list(require(lo, "roots", "lock_order")?, "lock_order roots")?;
            lock_order.facades = match lo.get("facades") {
                Some(v) => str_list(v, "lock_order facades")?,
                None => vec!["S".to_string()],
            };
            if let Some(aliases) = lo.get("aliases") {
                match aliases {
                    JsonValue::Object(fields) => {
                        for (k, v) in fields {
                            let label = v
                                .as_str()
                                .ok_or("lock_order alias values must be strings")?;
                            lock_order.aliases.insert(k.clone(), label.to_string());
                        }
                    }
                    _ => return Err("lock_order `aliases` must be an object".into()),
                }
            }
            for pair in require(lo, "edges", "lock_order")?
                .as_array()
                .ok_or("lock_order `edges` must be an array")?
            {
                let pair = pair
                    .as_array()
                    .ok_or("lock_order edges must be [outer, inner] pairs")?;
                if pair.len() != 2 {
                    return Err("lock_order edges must be [outer, inner] pairs".into());
                }
                let outer = pair[0]
                    .as_str()
                    .ok_or("lock_order edge endpoints must be strings")?;
                let inner = pair[1]
                    .as_str()
                    .ok_or("lock_order edge endpoints must be strings")?;
                lock_order
                    .edges
                    .push((outer.to_string(), inner.to_string()));
            }
        }

        let mut hazards = HazardSpec::default();
        if let Some(hz) = doc.get("hazards") {
            hazards.guard_roots = match hz.get("guard_roots") {
                Some(v) => str_list(v, "hazards guard_roots")?,
                None => Vec::new(),
            };
            hazards.unwrap_roots = match hz.get("unwrap_roots") {
                Some(v) => str_list(v, "hazards unwrap_roots")?,
                None => Vec::new(),
            };
            hazards.unwrap_doorways = match hz.get("unwrap_doorways") {
                Some(v) => str_list(v, "hazards unwrap_doorways")?,
                None => Vec::new(),
            };
        }

        let manifest = Manifest {
            pattern_rules,
            lock_order,
            hazards,
        };
        manifest.check_declared_dag()?;
        Ok(manifest)
    }

    /// Load a manifest from a file on disk.
    pub fn load(path: &Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Manifest::parse(&text)
    }

    /// The declared edge set must itself be acyclic — otherwise "matches
    /// the declared DAG" is meaningless.
    fn check_declared_dag(&self) -> Result<(), String> {
        let mut graph = crate::graph::LockGraph::new();
        for (outer, inner) in &self.lock_order.edges {
            graph.add_edge(outer, inner, crate::graph::EdgeSite::default());
        }
        let cycles = graph.cycles();
        if cycles.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "declared lock-order edges contain a cycle: {}",
                cycles[0].join(" -> ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_manifest() {
        let m = Manifest::parse(
            r#"{
  "schema": "presp-analyze/v1",
  "pattern_rules": [
    {"name": "r", "roots": ["src"], "forbidden": ["std::sync"], "why": "w"}
  ],
  "lock_order": {
    "roots": ["src"],
    "aliases": {"worker_stats": "scrub_stats"},
    "edges": [["a", "b"]]
  },
  "hazards": {"guard_roots": ["src"], "unwrap_roots": ["src"], "unwrap_doorways": ["f.rs"]}
}"#,
        )
        .unwrap();
        assert_eq!(m.pattern_rules.len(), 1);
        assert_eq!(m.lock_order.edges, vec![("a".into(), "b".into())]);
        assert_eq!(m.lock_order.facades, vec!["S".to_string()]);
        assert_eq!(m.lock_order.aliases["worker_stats"], "scrub_stats");
        assert_eq!(m.hazards.unwrap_doorways, vec!["f.rs".to_string()]);
    }

    #[test]
    fn rejects_cyclic_declared_edges() {
        let err = Manifest::parse(
            r#"{
  "schema": "presp-analyze/v1",
  "lock_order": {"roots": [], "edges": [["a", "b"], ["b", "a"]]}
}"#,
        )
        .unwrap_err();
        assert!(err.contains("cycle"), "{err}");
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(Manifest::parse(r#"{"schema": "nope/v0"}"#).is_err());
    }
}
