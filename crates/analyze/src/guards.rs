//! The guard-scope tracker: a per-function walk over the token stream
//! that models which facade lock guards are live at each point.
//!
//! The model is deliberately lexical — guards bound by `let` die at the
//! close of their enclosing block or at an explicit `drop(name)`;
//! temporary guards (a lock result immediately method-chained or used in
//! expression position) die at the end of their statement. That is enough
//! to witness every nested acquisition in this workspace, and the
//! dynamic-graph cross-check (static ⊇ dynamic) keeps the approximation
//! honest.

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One lock acquisition: the resolved label and its source line.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Resolved lock label (declared name, alias, or raw binding ident).
    pub label: String,
    /// 1-based acquisition line.
    pub line: usize,
}

/// A call made while at least one guard is live (propagation candidate).
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// Bare callee identifier.
    pub callee: String,
    /// 1-based call line.
    pub line: usize,
    /// Labels of the guards live at the call.
    pub held: Vec<String>,
}

/// A held-guard hazard observed during the walk.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// Hazard rule name (`send-while-locked`, `wait-wrong-lock`).
    pub rule: String,
    /// 1-based source line.
    pub line: usize,
    /// Human description including the held labels.
    pub message: String,
}

/// Everything the walk learned about one function.
#[derive(Debug, Clone, Default)]
pub struct FnScan {
    /// Bare function name.
    pub name: String,
    /// `(outer, inner, line)` — `inner` acquired while `outer` was live.
    pub edges: Vec<(String, String, usize)>,
    /// Every acquisition in the body (for one-level call propagation).
    pub acquired: Vec<Acquisition>,
    /// Calls made while guards were live.
    pub calls: Vec<HeldCall>,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Per-function results, in source order.
    pub functions: Vec<FnScan>,
    /// Held-guard hazards.
    pub hazards: Vec<Hazard>,
}

/// Inputs shared by the walks over one file.
pub struct ScanContext<'a> {
    /// Facade type idents (`S`) through which locks are acquired.
    pub facades: &'a [String],
    /// Binding/field name → declared lock label.
    pub labels: &'a BTreeMap<String, String>,
    /// Lines whose acquisitions are skipped (mutant markers, allow markers).
    pub skip_lines: &'a BTreeSet<usize>,
    /// Token-index ranges of `#[cfg(test)] mod` regions.
    pub excluded: &'a [(usize, usize)],
}

fn in_excluded(excluded: &[(usize, usize)], i: usize) -> Option<usize> {
    excluded
        .iter()
        .find(|&&(a, b)| i >= a && i <= b)
        .map(|&(_, b)| b)
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "move", "unsafe", "in",
    "as", "break", "continue", "where", "impl", "dyn", "ref", "mut", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static",
];

#[derive(Debug)]
struct Guard {
    label: String,
    names: Vec<String>,
    depth: usize,
    temp: bool,
}

/// Scan one file: find every function body and walk it.
pub fn scan_file(tokens: &[Token], ctx: &ScanContext<'_>) -> FileScan {
    let mut out = FileScan::default();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(end) = in_excluded(ctx.excluded, i) {
            i = end + 1;
            continue;
        }
        if tokens[i].is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            // Find the parameter list, then the body `{` (or `;` for a
            // bodiless trait method).
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct("(") {
                j += 1;
            }
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct("(") {
                    depth += 1;
                } else if tokens[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                j += 1;
            }
            if j >= tokens.len() || tokens[j].is_punct(";") {
                i = j.min(tokens.len() - 1) + 1;
                continue;
            }
            let (scan, end) = walk_body(tokens, j, name, ctx, &mut out.hazards);
            out.functions.push(scan);
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Match `facade :: method (` at index `i`; returns the method name.
fn facade_call<'t>(tokens: &'t [Token], i: usize, facades: &[String]) -> Option<&'t str> {
    let t = tokens.get(i)?;
    if t.kind != TokenKind::Ident || !facades.iter().any(|f| f == &t.text) {
        return None;
    }
    if !tokens.get(i + 1)?.is_punct("::") {
        return None;
    }
    let method = tokens.get(i + 2)?;
    if method.kind != TokenKind::Ident || !tokens.get(i + 3)?.is_punct("(") {
        return None;
    }
    Some(&method.text)
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].is_punct("(") {
            depth += 1;
        } else if tokens[k].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    tokens.len() - 1
}

/// The last identifier of the (possibly `&`/`mut`-prefixed, dotted or
/// `::`-separated) lock argument path: `&self.shared.core` → `core`.
fn lock_arg_base(tokens: &[Token], open: usize, close: usize) -> Option<String> {
    let mut base = None;
    for t in &tokens[open + 1..close] {
        match t.kind {
            TokenKind::Ident if t.text != "mut" => base = Some(t.text.clone()),
            TokenKind::Punct if t.text == "," => break,
            _ => {}
        }
    }
    base
}

fn walk_body(
    tokens: &[Token],
    open: usize,
    name: String,
    ctx: &ScanContext<'_>,
    hazards: &mut Vec<Hazard>,
) -> (FnScan, usize) {
    let mut scan = FnScan {
        name,
        ..FnScan::default()
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 1usize;
    // `let` binding state: Some(names) while collecting or bound.
    let mut binding: Option<Vec<String>> = None;
    let mut collecting = false;
    let mut i = open + 1;
    while i < tokens.len() {
        if let Some(end) = in_excluded(ctx.excluded, i) {
            i = end + 1;
            continue;
        }
        let t = &tokens[i];
        if collecting {
            match t.kind {
                TokenKind::Ident if t.text != "mut" && t.text != "ref" => {
                    if let Some(names) = binding.as_mut() {
                        names.push(t.text.clone());
                    }
                }
                TokenKind::Punct if t.text == "=" => collecting = false,
                TokenKind::Punct if t.text == ";" => {
                    collecting = false;
                    binding = None;
                }
                _ => {}
            }
        }
        if t.is_ident("let") {
            binding = Some(Vec::new());
            collecting = true;
            i += 1;
            continue;
        }
        if let Some(method) = facade_call(tokens, i, ctx.facades) {
            let line = t.line;
            let close = matching_paren(tokens, i + 3);
            match method {
                "lock" | "lock_recover" => {
                    if !ctx.skip_lines.contains(&line) {
                        let base = lock_arg_base(tokens, i + 3, close)
                            .unwrap_or_else(|| "<unknown>".to_string());
                        let label = ctx.labels.get(&base).cloned().unwrap_or(base);
                        for g in &guards {
                            scan.edges.push((g.label.clone(), label.clone(), line));
                        }
                        scan.acquired.push(Acquisition {
                            label: label.clone(),
                            line,
                        });
                        let temp = tokens.get(close + 1).is_some_and(|n| n.is_punct("."));
                        let names = if temp {
                            Vec::new()
                        } else {
                            binding.clone().unwrap_or_default()
                        };
                        guards.push(Guard {
                            label,
                            names,
                            depth,
                            temp: temp || binding.is_none(),
                        });
                    }
                    i = close + 1;
                    continue;
                }
                "wait" | "wait_timeout" => {
                    // The guard is consumed and handed back: held set is
                    // unchanged. Waiting while a *different* lock is also
                    // held is the hazard.
                    if guards.len() >= 2 && !ctx.skip_lines.contains(&line) {
                        let held: Vec<&str> = guards.iter().map(|g| g.label.as_str()).collect();
                        hazards.push(Hazard {
                            rule: "wait-wrong-lock".to_string(),
                            line,
                            message: format!(
                                "condvar wait with multiple guards live ({}): the \
                                 non-condvar lock stays held for the whole wait",
                                held.join(", ")
                            ),
                        });
                    }
                    i = close + 1;
                    continue;
                }
                "send" | "recv" => {
                    if !guards.is_empty() && !ctx.skip_lines.contains(&line) {
                        let held: Vec<&str> = guards.iter().map(|g| g.label.as_str()).collect();
                        hazards.push(Hazard {
                            rule: "send-while-locked".to_string(),
                            line,
                            message: format!(
                                "channel {method} while holding {}: blocks (or makes \
                                 the peer block) inside a critical section",
                                held.join(", ")
                            ),
                        });
                    }
                    i = close + 1;
                    continue;
                }
                _ => {
                    // Other facade calls (spawn, notify, channel…) neither
                    // create guards nor hazard; fall through to generic
                    // call handling below so held calls still register.
                }
            }
        }
        match t.kind {
            TokenKind::Punct if t.text == "{" => depth += 1,
            TokenKind::Punct if t.text == "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                if depth == 0 {
                    return (scan, i);
                }
            }
            TokenKind::Punct if t.text == ";" => {
                let d = depth;
                guards.retain(|g| !(g.temp && g.depth == d));
                binding = None;
                collecting = false;
            }
            TokenKind::Ident
                if t.text == "drop" && tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
            {
                if let Some(arg) = tokens.get(i + 2).filter(|a| a.kind == TokenKind::Ident) {
                    guards.retain(|g| !g.names.iter().any(|n| n == &arg.text));
                }
            }
            // Generic call site: `ident (` with guards live.
            TokenKind::Ident
                if !guards.is_empty()
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && !KEYWORDS.contains(&t.text.as_str()) =>
            {
                scan.calls.push(HeldCall {
                    callee: t.text.clone(),
                    line: t.line,
                    held: guards.iter().map(|g| g.label.clone()).collect(),
                });
            }
            _ => {}
        }
        i += 1;
    }
    (scan, tokens.len() - 1)
}

/// The `.lock().unwrap()` / `.lock().expect(` pass: raw lock results must
/// only be unwrapped inside the designated poison-recovery doorways.
pub fn scan_unwrap_on_lock(
    tokens: &[Token],
    excluded: &[(usize, usize)],
    skip_lines: &BTreeSet<usize>,
) -> Vec<usize> {
    let mut lines = Vec::new();
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        if let Some(end) = in_excluded(excluded, i) {
            i = end + 1;
            continue;
        }
        if tokens[i].is_ident("lock")
            && tokens[i + 1].is_punct("(")
            && tokens[i + 2].is_punct(")")
            && tokens[i + 3].is_punct(".")
            && (tokens[i + 4].is_ident("unwrap") || tokens[i + 4].is_ident("expect"))
            && !skip_lines.contains(&tokens[i + 4].line)
            && !skip_lines.contains(&tokens[i].line)
        {
            lines.push(tokens[i].line);
            i += 5;
            continue;
        }
        i += 1;
    }
    lines
}

/// Discover `name → label` bindings from `mutex_labeled("label", …)`
/// sites: the identifier just before the nearest preceding `:` (struct
/// field) or `=` (let binding) names the lock.
///
/// Returns the map plus any conflicting rebinds (same name, two labels) —
/// those must be resolved via manifest aliases.
pub fn discover_labels(tokens: &[Token]) -> (BTreeMap<String, String>, Vec<(String, usize)>) {
    let mut labels = BTreeMap::new();
    let mut conflicts = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("mutex_labeled") && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))) {
            continue;
        }
        let Some(label_tok) = tokens.get(i + 2) else {
            continue;
        };
        if label_tok.kind != TokenKind::Str {
            continue;
        }
        // Walk back over the call prefix (`Arc :: new ( S ::` …) to the
        // binding punctuation.
        let mut k = i;
        let mut name = None;
        while k > 0 {
            k -= 1;
            let b = &tokens[k];
            match b.kind {
                TokenKind::Ident => {}
                TokenKind::Punct if b.text == "::" || b.text == "(" || b.text == "&" => {}
                TokenKind::Punct if b.text == ":" || b.text == "=" => {
                    // The nearest identifier before the binder names it.
                    let mut m = k;
                    while m > 0 {
                        m -= 1;
                        if tokens[m].kind == TokenKind::Ident {
                            name = Some(tokens[m].text.clone());
                            break;
                        }
                        if matches!(tokens[m].kind, TokenKind::Punct)
                            && !matches!(tokens[m].text.as_str(), "&" | "(")
                        {
                            break;
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
        if let Some(name) = name {
            let label = label_tok.text.clone();
            match labels.get(&name) {
                Some(existing) if existing != &label => {
                    conflicts.push((name.clone(), t.line));
                }
                _ => {
                    labels.insert(name, label);
                }
            }
        }
    }
    (labels, conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(labels: &'a BTreeMap<String, String>, skip: &'a BTreeSet<usize>) -> ScanContext<'a> {
        static FACADES: &[String] = &[];
        let _ = FACADES;
        ScanContext {
            facades: Box::leak(Box::new(vec!["S".to_string()])),
            labels,
            skip_lines: skip,
            excluded: &[],
        }
    }

    #[test]
    fn nested_acquisition_yields_edge() {
        let lexed = lex("fn f(s: &Shared) {\n    let a = S::lock(&s.alpha);\n    let b = S::lock(&s.beta);\n}\n");
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert_eq!(scan.functions.len(), 1);
        assert_eq!(
            scan.functions[0].edges,
            vec![("alpha".to_string(), "beta".to_string(), 3)]
        );
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let lexed = lex(
            "fn f(s: &Shared) {\n    let at = S::lock(&s.alpha).horizon();\n    let b = S::lock(&s.beta);\n}\n",
        );
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert!(
            scan.functions[0].edges.is_empty(),
            "{:?}",
            scan.functions[0].edges
        );
    }

    #[test]
    fn drop_releases_named_guard() {
        let lexed = lex(
            "fn f(s: &Shared) {\n    let a = S::lock(&s.alpha);\n    drop(a);\n    let b = S::lock(&s.beta);\n}\n",
        );
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert!(scan.functions[0].edges.is_empty());
    }

    #[test]
    fn block_close_releases_guard() {
        let lexed = lex(
            "fn f(s: &Shared) {\n    let x = {\n        let a = S::lock(&s.alpha);\n        a.val()\n    };\n    let b = S::lock(&s.beta);\n}\n",
        );
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert!(scan.functions[0].edges.is_empty());
    }

    #[test]
    fn skip_lines_suppress_acquisitions() {
        let lexed = lex(
            "fn f(s: &Shared) {\n    let b = S::lock(&s.beta);\n    let a = S::lock(&s.alpha);\n}\n",
        );
        let labels = BTreeMap::new();
        let skip: BTreeSet<usize> = [2usize, 3].into_iter().collect();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert!(scan.functions[0].edges.is_empty());
        assert!(scan.functions[0].acquired.is_empty());
    }

    #[test]
    fn held_call_is_recorded() {
        let lexed =
            lex("fn f(s: &Shared) {\n    let a = S::lock(&s.alpha);\n    helper(&mut a);\n}\n");
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        let calls = &scan.functions[0].calls;
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].callee, "helper");
        assert_eq!(calls[0].held, vec!["alpha".to_string()]);
    }

    #[test]
    fn send_while_locked_is_a_hazard() {
        let lexed = lex(
            "fn f(s: &Shared) {\n    let a = S::lock(&s.alpha);\n    let _ = S::send(&s.tx, 1);\n}\n",
        );
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert_eq!(scan.hazards.len(), 1);
        assert_eq!(scan.hazards[0].rule, "send-while-locked");
        assert_eq!(scan.hazards[0].line, 3);
    }

    #[test]
    fn wait_with_single_guard_is_fine() {
        let lexed = lex(
            "fn f(s: &Shared) {\n    let mut a = S::lock(&s.alpha);\n    a = S::wait(&s.cv, a);\n}\n",
        );
        let labels = BTreeMap::new();
        let skip = BTreeSet::new();
        let scan = scan_file(&lexed.tokens, &ctx(&labels, &skip));
        assert!(scan.hazards.is_empty());
    }

    #[test]
    fn unwrap_on_lock_pass() {
        let lexed = lex("fn f(m: &M) -> u32 {\n    *m.inner.lock().unwrap()\n}\n");
        let lines = scan_unwrap_on_lock(&lexed.tokens, &[], &BTreeSet::new());
        assert_eq!(lines, vec![2]);
    }

    #[test]
    fn discover_field_and_let_labels() {
        let lexed = lex(
            "struct X { state: S::Mutex<u32> }\nfn b() {\n    let g = Shared { state: S::mutex_labeled(\"tile_state\", 0) };\n    let stats = Arc::new(S::mutex_labeled(\"scrub_stats\", 0));\n}\n",
        );
        let (labels, conflicts) = discover_labels(&lexed.tokens);
        assert_eq!(labels["state"], "tile_state");
        assert_eq!(labels["stats"], "scrub_stats");
        assert!(conflicts.is_empty());
    }
}
