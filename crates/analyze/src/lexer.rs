//! A small comment/string/raw-string/char-literal-aware Rust lexer.
//!
//! The analyzer never needs a full grammar: every pass works on a flat token
//! stream with line numbers, plus a "blanked" copy of the source in which
//! comment bytes and literal contents are replaced by spaces. The blanked
//! copy is what the pattern rules match against, so a forbidden pattern
//! inside a string or a comment can never fire, and — crucially — a brace
//! inside a string can never desynchronize the `#[cfg(test)]` region
//! tracker (the bug the old substring scanner had).

/// Token classification. Deliberately coarse: the passes only ever care
/// about identifiers, string literals (for lock labels), and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// String literal (plain, raw, byte); `text` holds the inner content.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// Numeric literal.
    Num,
    /// Punctuation. Everything is a single character except `::`.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse classification.
    pub kind: TokenKind,
    /// Token text. For `Str` this is the *inner* content (no quotes).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: usize,
}

impl Token {
    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == id
    }
}

/// The result of lexing one file: the token stream plus a blanked copy of
/// the source (comments and literal contents replaced by spaces, newlines
/// preserved) for line-oriented pattern matching.
#[derive(Debug)]
pub struct LexedFile {
    /// Flat token stream in source order.
    pub tokens: Vec<Token>,
    /// Source with comment/literal bytes blanked; same line structure.
    pub blanked: String,
}

impl LexedFile {
    /// The blanked source split into lines (1-based access via `line - 1`).
    pub fn blanked_lines(&self) -> Vec<&str> {
        self.blanked.lines().collect()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: usize,
    blanked: Vec<u8>,
    tokens: Vec<Token>,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    /// Advance one byte, keeping it visible in the blanked copy.
    fn keep(&mut self) {
        if self.src[self.i] == b'\n' {
            self.line += 1;
        }
        self.blanked.push(self.src[self.i]);
        self.i += 1;
    }

    /// Advance one byte, blanking it (newlines stay so lines align).
    fn blank(&mut self) {
        let b = self.src[self.i];
        if b == b'\n' {
            self.line += 1;
            self.blanked.push(b'\n');
        } else {
            self.blanked.push(b' ');
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        while self.i < self.src.len() && self.src[self.i] != b'\n' {
            self.blank();
        }
    }

    fn block_comment(&mut self) {
        // Consume the opening `/*`; nested comments are tracked by depth.
        self.blank();
        self.blank();
        let mut depth = 1usize;
        while self.i < self.src.len() && depth > 0 {
            if self.src[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.blank();
                self.blank();
            } else if self.src[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.blank();
                self.blank();
            } else {
                self.blank();
            }
        }
    }

    /// Plain (escaped) string or char/byte literal. `quote` is `"` or `'`.
    fn escaped_literal(&mut self, quote: u8) -> String {
        let mut content = Vec::new();
        self.blank(); // opening quote
        while self.i < self.src.len() {
            let b = self.src[self.i];
            if b == b'\\' && self.i + 1 < self.src.len() {
                content.push(b);
                content.push(self.src[self.i + 1]);
                self.blank();
                self.blank();
            } else if b == quote {
                self.blank();
                break;
            } else {
                content.push(b);
                self.blank();
            }
        }
        String::from_utf8_lossy(&content).into_owned()
    }

    /// Raw string starting at the current `r` (with `hashes` many `#`).
    fn raw_string(&mut self, hashes: usize) -> String {
        self.blank(); // `r`
        for _ in 0..hashes {
            self.blank();
        }
        self.blank(); // opening quote
        let mut content = Vec::new();
        'outer: while self.i < self.src.len() {
            if self.src[self.i] == b'"' {
                // A closing quote must be followed by `hashes` many `#`.
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.blank(); // quote
                    for _ in 0..hashes {
                        self.blank();
                    }
                    break 'outer;
                }
            }
            content.push(self.src[self.i]);
            self.blank();
        }
        String::from_utf8_lossy(&content).into_owned()
    }
}

/// Count the `#` characters of a raw-string opener after offset `at`
/// (pointing at `r`). Returns `Some(hashes)` when a raw string starts here.
fn raw_string_hashes(src: &[u8], at: usize) -> Option<usize> {
    let mut k = at + 1;
    let mut hashes = 0usize;
    while src.get(k) == Some(&b'#') {
        hashes += 1;
        k += 1;
    }
    if src.get(k) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Lex one file into tokens plus the blanked pattern-matching copy.
pub fn lex(source: &str) -> LexedFile {
    let mut c = Cursor {
        src: source.as_bytes(),
        i: 0,
        line: 1,
        blanked: Vec::with_capacity(source.len()),
        tokens: Vec::new(),
    };
    while c.i < c.src.len() {
        let b = c.src[c.i];
        let line = c.line;
        if b == b'/' && c.peek(1) == Some(b'/') {
            c.line_comment();
        } else if b == b'/' && c.peek(1) == Some(b'*') {
            c.block_comment();
        } else if b == b'"' {
            let content = c.escaped_literal(b'"');
            c.push(TokenKind::Str, content, line);
        } else if b == b'r' && raw_string_hashes(c.src, c.i).is_some() {
            let hashes = raw_string_hashes(c.src, c.i).unwrap();
            let content = c.raw_string(hashes);
            c.push(TokenKind::Str, content, line);
        } else if b == b'b' && c.peek(1) == Some(b'"') {
            c.blank(); // `b`
            let content = c.escaped_literal(b'"');
            c.push(TokenKind::Str, content, line);
        } else if b == b'b' && c.peek(1) == Some(b'\'') {
            c.blank(); // `b`
            let content = c.escaped_literal(b'\'');
            c.push(TokenKind::Char, content, line);
        } else if b == b'b'
            && c.peek(1) == Some(b'r')
            && raw_string_hashes(c.src, c.i + 1).is_some()
        {
            c.blank(); // `b`
            let hashes = raw_string_hashes(c.src, c.i).unwrap();
            let content = c.raw_string(hashes);
            c.push(TokenKind::Str, content, line);
        } else if b == b'r' && c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) {
            // Raw identifier `r#ident` — strip the prefix.
            c.keep();
            c.keep();
            let mut id = Vec::new();
            while c.i < c.src.len() && is_ident_continue(c.src[c.i]) {
                id.push(c.src[c.i]);
                c.keep();
            }
            c.push(
                TokenKind::Ident,
                String::from_utf8_lossy(&id).into_owned(),
                line,
            );
        } else if b == b'\'' {
            // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'('`).
            if c.peek(1) == Some(b'\\') {
                let content = c.escaped_literal(b'\'');
                c.push(TokenKind::Char, content, line);
            } else if c.peek(1).is_some_and(is_ident_start) {
                // Scan the identifier run; a trailing quote makes it a char.
                let mut k = c.i + 1;
                while c.src.get(k).copied().is_some_and(is_ident_continue) {
                    k += 1;
                }
                if c.src.get(k) == Some(&b'\'') {
                    let content = c.escaped_literal(b'\'');
                    c.push(TokenKind::Char, content, line);
                } else {
                    let mut id = Vec::new();
                    c.keep(); // `'`
                    while c.i < c.src.len() && is_ident_continue(c.src[c.i]) {
                        id.push(c.src[c.i]);
                        c.keep();
                    }
                    c.push(
                        TokenKind::Lifetime,
                        String::from_utf8_lossy(&id).into_owned(),
                        line,
                    );
                }
            } else {
                // `'('`-style char literal (or stray quote at EOF).
                let content = c.escaped_literal(b'\'');
                c.push(TokenKind::Char, content, line);
            }
        } else if is_ident_start(b) {
            let mut id = Vec::new();
            while c.i < c.src.len() && is_ident_continue(c.src[c.i]) {
                id.push(c.src[c.i]);
                c.keep();
            }
            c.push(
                TokenKind::Ident,
                String::from_utf8_lossy(&id).into_owned(),
                line,
            );
        } else if b.is_ascii_digit() {
            let mut num = Vec::new();
            while c.i < c.src.len()
                && (is_ident_continue(c.src[c.i])
                    || (c.src[c.i] == b'.' && c.peek(1).is_some_and(|n| n.is_ascii_digit())))
            {
                num.push(c.src[c.i]);
                c.keep();
            }
            c.push(
                TokenKind::Num,
                String::from_utf8_lossy(&num).into_owned(),
                line,
            );
        } else if b.is_ascii_whitespace() {
            c.keep();
        } else if b == b':' && c.peek(1) == Some(b':') {
            c.keep();
            c.keep();
            c.push(TokenKind::Punct, "::".to_string(), line);
        } else {
            c.keep();
            c.push(TokenKind::Punct, (b as char).to_string(), line);
        }
    }
    LexedFile {
        tokens: c.tokens,
        blanked: String::from_utf8_lossy(&c.blanked).into_owned(),
    }
}

/// Token-index ranges (inclusive) covered by `#[cfg(test)] mod … { … }`
/// regions. Brace depth is tracked on the *token* stream, so braces inside
/// strings or comments cannot desynchronize the tracker, and scanning
/// resumes after the module closes instead of abandoning the file.
pub fn cfg_test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(end) = cfg_test_mod_end(tokens, i) {
            ranges.push((i, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// When a `#[cfg(test)]`-attributed `mod` begins at token `i`, return the
/// index of its closing `}` (or the `;` of an out-of-line module).
fn cfg_test_mod_end(tokens: &[Token], i: usize) -> Option<usize> {
    let at = |k: usize| tokens.get(i + k);
    if !(at(0)?.is_punct("#")
        && at(1)?.is_punct("[")
        && at(2)?.is_ident("cfg")
        && at(3)?.is_punct("(")
        && at(4)?.is_ident("test")
        && at(5)?.is_punct(")")
        && at(6)?.is_punct("]"))
    {
        return None;
    }
    let mut j = i + 7;
    // Skip any further attributes (e.g. `#[allow(dead_code)]`).
    while tokens.get(j)?.is_punct("#") && tokens.get(j + 1).is_some_and(|t| t.is_punct("[")) {
        let mut depth = 0usize;
        let mut k = j + 1;
        loop {
            let t = tokens.get(k)?;
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    // Skip visibility (`pub`, `pub(crate)`, …).
    if tokens.get(j)?.is_ident("pub") {
        j += 1;
        if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            while !tokens.get(j)?.is_punct(")") {
                j += 1;
            }
            j += 1;
        }
    }
    if !tokens.get(j)?.is_ident("mod") {
        return None;
    }
    j += 1; // module name
    loop {
        let t = tokens.get(j)?;
        if t.is_punct(";") {
            return Some(j);
        }
        if t.is_punct("{") {
            break;
        }
        j += 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    // Unterminated module: treat the rest of the file as the region.
    Some(tokens.len() - 1)
}

/// The set of 1-based lines covered by the given token ranges.
pub fn lines_of_ranges(
    tokens: &[Token],
    ranges: &[(usize, usize)],
) -> std::collections::BTreeSet<usize> {
    let mut lines = std::collections::BTreeSet::new();
    for &(a, b) in ranges {
        if a >= tokens.len() {
            continue;
        }
        let last = b.min(tokens.len() - 1);
        for line in tokens[a].line..=tokens[last].line {
            lines.insert(line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let lexed = lex("let a = \"std::sync\"; // std::sync\n/* std::sync */ let b = 1;\n");
        assert!(!lexed.blanked.contains("std::sync"));
        assert!(lexed.blanked.contains("let a ="));
        assert!(lexed.blanked.contains("let b = 1;"));
        assert_eq!(lexed.blanked.lines().count(), 2);
    }

    #[test]
    fn raw_strings_and_chars() {
        let lexed = lex(
            r####"let s = r#"brace { and "quote" here"#; let c = '{'; let l: &'static str = "";"####,
        );
        assert!(!lexed.blanked.contains('{'));
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs[0].text, "brace { and \"quote\" here");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "static"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "{"));
    }

    #[test]
    fn string_literal_content_is_captured() {
        let lexed = lex("S::mutex_labeled(\"tile_state\", x)");
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(s.text, "tile_state");
    }

    #[test]
    fn cfg_test_region_survives_brace_in_string() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let s = \"{\"; }\n}\nfn after() {}\n";
        let lexed = lex(src);
        let ranges = cfg_test_mod_ranges(&lexed.tokens);
        assert_eq!(ranges.len(), 1);
        let lines = lines_of_ranges(&lexed.tokens, &ranges);
        assert!(lines.contains(&2) && lines.contains(&5));
        // `fn after` on line 6 is *outside* the region.
        assert!(!lines.contains(&6));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert!(lexed.blanked.contains("fn x()"));
        assert!(!lexed.blanked.contains("comment"));
    }
}
