//! `presp-analyze`: the workspace static analyzer CLI.
//!
//! Runs the pattern rules, the static lock-order pass, and the held-guard
//! hazard passes described in `analyze.json` at the workspace root.
//!
//! ```text
//! presp-analyze [--json [FILE]] [--mutants] [--manifest FILE] [--root DIR]
//! ```
//!
//! `--json` emits the machine-readable findings document (to stdout, or to
//! FILE when given); `--mutants` includes acquisitions on
//! `presp-analyze: mutant` lines, which must surface the committed
//! deadlock mutants as findings. Exit status: 0 clean, 1 findings, 2 on
//! usage or manifest errors.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(presp_analyze::run_cli("presp-analyze", &args));
}
