//! The statically derived lock graph.
//!
//! Nodes are lock labels, a directed edge `outer → inner` means some code
//! path acquires `inner` while an `outer` guard is live. Each edge keeps
//! the first witnessing acquisition site (and the call chain when the edge
//! came from one level of call propagation) so findings can spell out the
//! concrete path. Cycle detection is Tarjan SCC, mirroring the dynamic
//! `presp-check` graph so the two analyses stay comparable.

use std::collections::BTreeMap;

/// Where an edge was observed: the inner acquisition site, plus the call
/// chain when the acquisition happened inside a propagated callee.
#[derive(Debug, Clone, Default)]
pub struct EdgeSite {
    /// File containing the inner acquisition (workspace-relative).
    pub file: String,
    /// 1-based line of the inner acquisition (or the call site when
    /// propagated).
    pub line: usize,
    /// Call chain, e.g. `complete -> claim` when the edge crosses a call.
    pub chain: Vec<String>,
}

impl EdgeSite {
    /// Human-readable acquisition chain for findings.
    pub fn describe(&self, outer: &str, inner: &str) -> String {
        if self.chain.is_empty() {
            format!("`{inner}` acquired while `{outer}` is held")
        } else {
            format!(
                "`{inner}` acquired while `{outer}` is held (via {})",
                self.chain.join(" -> ")
            )
        }
    }
}

/// Directed lock-order graph with one witness site per edge.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    edges: BTreeMap<(String, String), EdgeSite>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockGraph::default()
    }

    /// Record `outer → inner`, keeping the first witness site.
    pub fn add_edge(&mut self, outer: &str, inner: &str, site: EdgeSite) {
        self.edges
            .entry((outer.to_string(), inner.to_string()))
            .or_insert(site);
    }

    /// All edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (&(String, String), &EdgeSite)> {
        self.edges.iter()
    }

    /// Edge label pairs only.
    pub fn edge_pairs(&self) -> Vec<(String, String)> {
        self.edges.keys().cloned().collect()
    }

    /// Witness site for an edge, if present.
    pub fn site(&self, outer: &str, inner: &str) -> Option<&EdgeSite> {
        self.edges.get(&(outer.to_string(), inner.to_string()))
    }

    /// True when the graph contains the edge.
    pub fn contains(&self, outer: &str, inner: &str) -> bool {
        self.edges
            .contains_key(&(outer.to_string(), inner.to_string()))
    }

    /// Strongly connected components with more than one node, plus
    /// self-loops — each is a potential-deadlock cycle. Tarjan, iterative.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut nodes: Vec<String> = Vec::new();
        for (outer, inner) in self.edges.keys() {
            if !nodes.contains(outer) {
                nodes.push(outer.clone());
            }
            if !nodes.contains(inner) {
                nodes.push(inner.clone());
            }
        }
        nodes.sort();
        let index_of: BTreeMap<&str, usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut adj = vec![Vec::new(); nodes.len()];
        for (outer, inner) in self.edges.keys() {
            adj[index_of[outer.as_str()]].push(index_of[inner.as_str()]);
        }

        let n = nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // Iterative Tarjan: (node, next-neighbor cursor) frames.
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut frames = vec![(start, 0usize)];
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(*cursor) {
                    *cursor += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    if lowlink[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(scc);
                    }
                    frames.pop();
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }

        let mut cycles = Vec::new();
        for scc in sccs {
            let is_cycle =
                scc.len() > 1 || (scc.len() == 1 && self.contains(&nodes[scc[0]], &nodes[scc[0]]));
            if is_cycle {
                let mut labels: Vec<String> = scc.iter().map(|&i| nodes[i].clone()).collect();
                labels.sort();
                cycles.push(labels);
            }
        }
        cycles.sort();
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_two_node_cycle() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", EdgeSite::default());
        g.add_edge("b", "c", EdgeSite::default());
        g.add_edge("c", "a", EdgeSite::default());
        assert_eq!(
            g.cycles(),
            vec![vec!["a".to_string(), "b".into(), "c".into()]]
        );
    }

    #[test]
    fn dag_has_no_cycles() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", EdgeSite::default());
        g.add_edge("a", "c", EdgeSite::default());
        g.add_edge("b", "c", EdgeSite::default());
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = LockGraph::new();
        g.add_edge("a", "a", EdgeSite::default());
        assert_eq!(g.cycles(), vec![vec!["a".to_string()]]);
    }

    #[test]
    fn first_witness_site_wins() {
        let mut g = LockGraph::new();
        g.add_edge(
            "a",
            "b",
            EdgeSite {
                file: "x.rs".into(),
                line: 3,
                chain: vec![],
            },
        );
        g.add_edge(
            "a",
            "b",
            EdgeSite {
                file: "y.rs".into(),
                line: 9,
                chain: vec![],
            },
        );
        assert_eq!(g.site("a", "b").unwrap().file, "x.rs");
    }
}
