//! The PR-ESP software stack: a user-space rewrite of the paper's Linux
//! runtime reconfiguration manager (Section V).
//!
//! * [`registry`] — the bitstream registry: partial bitstreams are
//!   registered up-front and the manager keeps "a reference between the
//!   bitstreams, their physical addresses, the tiles they will be loaded
//!   into, and their respective drivers".
//! * [`driver`] — the driver table: per-tile accelerator drivers that are
//!   registered/unregistered as accelerators are swapped.
//! * [`manager`] — the reconfiguration manager: wait-for-idle semantics,
//!   per-tile locking during reconfiguration, decouple → DFXC → re-couple →
//!   driver-swap sequencing, and reconfiguration statistics.
//! * [`tile`] / [`device`] — the sharded state split: per-tile
//!   bookkeeping lives in one [`tile::TileState`] per tile, while the
//!   genuinely shared resources (ICAP/DFXC timelines, configuration
//!   memory, NoC, the registry and its verified-bitstream [`cache`])
//!   live in one [`device::DeviceCore`].
//! * [`scheduler`] — the multi-worker scheduler: per-tile request
//!   queues drained by a worker pool, with request coalescing, a
//!   commit-order ticket gate that keeps results identical for any
//!   worker count, and lock-free evaluation of behavioral results.
//! * [`threaded`] — the workqueue front-end over the scheduler: blocking
//!   and asynchronous submission APIs for real OS threads. Generic over
//!   [`sync::SyncFacade`], so the same protocol runs in production
//!   (`std::sync`) and under the `presp-check` model checker.
//! * [`scrubber`] — the configuration-memory scrubber daemon: a
//!   maintenance worker sharing the scheduler's tile shards and device
//!   core that walks configuration frames, repairs SEUs with the
//!   per-frame ECC, and quarantines tiles with uncorrectable damage.
//!   Model-checked alongside the scheduler.
//! * [`defrag`] — the online defragmenter daemon: under amorphous
//!   floorplanning (flexible-boundary regions leased from a
//!   [`presp_floorplan`] allocator instead of fixed sockets), a
//!   maintenance worker that quiesces the commit gate, plans the
//!   allocator's left-slide compaction and relocates idle regions so an
//!   oversized request refused for fragmentation can be admitted.
//!   Model-checked alongside the scheduler.
//! * [`supervisor`] — worker supervision: seeded software-fault plans
//!   (worker panics, hangs, stalls) and the watchdog counters. The
//!   scheduler's supervisor thread heals the commit-order gate by
//!   redispatching claimed-but-uncommitted jobs under their original
//!   tickets and respawns dead workers within a bounded restart budget.
//! * [`sync`] — the sync facade: the runtime's only doorway to
//!   synchronization primitives, enforced by the `presp-lint` tool.
//! * [`app`] — the WAMI application scheduler: maps the Fig. 3 dataflow
//!   onto a reconfigurable SoC given a tile allocation (Table VI), with
//!   prefetch reconfiguration and CPU fallback for unallocated kernels.
//!
//! # Example
//!
//! ```
//! use presp_runtime::manager::ReconfigManager;
//! use presp_runtime::registry::BitstreamRegistry;
//! use presp_soc::config::SocConfig;
//! use presp_soc::sim::Soc;
//! use presp_accel::{AccelOp, AccelValue, AcceleratorKind};
//! # use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
//! # use presp_fpga::frame::FrameAddress;
//!
//! let config = SocConfig::grid_3x3_reconf("demo", 1)?;
//! let soc = Soc::new(&config)?;
//! let tile = config.reconfigurable_tiles()[0];
//!
//! let mut registry = BitstreamRegistry::new();
//! # let device = soc.part().device();
//! # let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
//! # let words = device.part().family().frame_words();
//! # b.add_frame(FrameAddress::new(0, 1, 0), vec![1; words])?;
//! # let bitstream = b.build(true);
//! registry.register(tile, AcceleratorKind::Mac, bitstream)?;
//!
//! let mut manager = ReconfigManager::new(soc, registry);
//! manager.request_reconfiguration(tile, AcceleratorKind::Mac)?;
//! let run = manager.run(tile, &AccelOp::Mac { a: vec![2.0], b: vec![8.0] })?;
//! assert_eq!(run.value, AccelValue::Scalar(16.0));
//! # Ok::<(), presp_runtime::Error>(())
//! ```

pub mod app;
pub mod cache;
pub mod defrag;
pub mod device;
pub mod driver;
pub mod error;
pub mod manager;
pub(crate) mod protocol;
pub mod registry;
pub mod scheduler;
pub mod scrubber;
pub mod supervisor;
pub mod sync;
pub mod threaded;
pub mod tile;

pub use defrag::{DefragStats, Defragmenter};
pub use error::Error;
pub use manager::{ExecPath, ReconfigManager, RecoveryPolicy, RepackReport, TileHealth};
pub use registry::BitstreamRegistry;
pub use scrubber::{ScrubberDaemon, ScrubberStats};
pub use supervisor::{
    install_quiet_panic_hook, SupervisorStats, WorkerFault, WorkerFaultConfig, WorkerFaultPlan,
};
