//! Worker supervision: seeded software-fault plans and the counters the
//! watchdog publishes.
//!
//! PRs 1 and 4 harden the runtime against *fabric* misbehavior (ICAP
//! faults, SEUs); this module is the software-side analogue. A
//! [`WorkerFaultPlan`] decides, per admission ticket, whether the
//! claiming worker panics mid-prepare, parks in a hang before its commit
//! slot, or stalls like an overloaded host thread. The scheduler's
//! supervisor thread (see [`crate::scheduler`]) detects the resulting
//! dead or wedged tickets, returns the claimed-but-uncommitted job to
//! its tile queue under the *same* ticket, and respawns dead workers
//! within a bounded restart budget — so the commit-order gate stays
//! dense and the surviving workers' virtual-time outcomes are
//! byte-identical to a fault-free run (modulo the explicit
//! `sched.worker_died` / `sched.redispatch` trace records).
//!
//! Determinism contract: fault assignment is a pure function of
//! `(seed, ticket)`, with the `max_panics` / `max_hangs` budgets applied
//! in *ticket order* (not claim order, which is wall-clock dependent).
//! Re-deciding a ticket after its fault fired returns `None`, so a
//! redispatched job always makes progress on its second claim.

use presp_fpga::fault::SplitMix64;
use std::collections::{BTreeMap, BTreeSet};
// Not a protocol primitive: guards one-time installation of a global
// panic hook, immutable after init.
use std::sync::OnceLock; // presp-lint: allow — init-once hook guard

/// Domain separator so a worker-fault plan seeded like a fabric fault
/// plan still draws an independent stream.
const WORKER_FAULT_SALT: u64 = 0x5EED_FA17_5EED_FA17;

/// One software fault injected at a worker's claim of one ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The worker panics mid-prepare, before touching any protocol lock;
    /// the claim guard heals the gate and the supervisor respawns it.
    Panic,
    /// The worker parks before its commit slot and stays wedged until
    /// the supervisor steals the claim (or shutdown releases it).
    Hang,
    /// The worker stalls for the given wall-clock microseconds during
    /// prepare — a slow host thread. The commit gate absorbs the delay;
    /// nothing needs healing.
    Stall {
        /// Stall length in microseconds.
        micros: u64,
    },
}

/// Rates and budgets of a seeded [`WorkerFaultPlan`]. All rates are
/// probabilities in `[0, 1]`; the default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkerFaultConfig {
    /// Probability a ticket's claim panics mid-prepare.
    pub panic_rate: f64,
    /// Probability a ticket's claim hangs before its commit slot.
    pub hang_rate: f64,
    /// Probability a ticket's claim stalls during prepare.
    pub stall_rate: f64,
    /// Maximum stall, in microseconds (the draw is uniform in
    /// `[1, max]`; 0 disables stalls even when `stall_rate` is set).
    pub stall_max_micros: u64,
    /// At most this many tickets panic (applied in ticket order).
    pub max_panics: u64,
    /// At most this many tickets hang (applied in ticket order).
    pub max_hangs: u64,
}

/// Counters of faults a plan has actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedWorkerFaults {
    /// Worker panics fired.
    pub panics: u64,
    /// Worker hangs fired.
    pub hangs: u64,
    /// Worker stalls fired.
    pub stalls: u64,
}

/// A deterministic per-ticket software-fault schedule.
///
/// Built either from seeded rates ([`WorkerFaultPlan::seeded`]) or an
/// explicit script ([`WorkerFaultPlan::scripted`], used by the model
/// checker where every interleaving of one fixed fault is explored).
#[derive(Debug)]
pub struct WorkerFaultPlan {
    seed: u64,
    config: WorkerFaultConfig,
    scripted: BTreeMap<u64, WorkerFault>,
    /// Faults assigned so far, extended lazily in ticket order.
    assigned: BTreeMap<u64, WorkerFault>,
    next_unassigned: u64,
    panics_assigned: u64,
    hangs_assigned: u64,
    /// Tickets whose fault already fired; a re-decide returns `None` so
    /// redispatched claims proceed.
    fired: BTreeSet<u64>,
    injected: InjectedWorkerFaults,
}

impl WorkerFaultPlan {
    /// A plan drawing faults at the configured rates, keyed by `seed`.
    pub fn seeded(seed: u64, config: WorkerFaultConfig) -> WorkerFaultPlan {
        WorkerFaultPlan {
            seed,
            config,
            scripted: BTreeMap::new(),
            assigned: BTreeMap::new(),
            next_unassigned: 0,
            panics_assigned: 0,
            hangs_assigned: 0,
            fired: BTreeSet::new(),
            injected: InjectedWorkerFaults::default(),
        }
    }

    /// A plan injecting exactly the listed `(ticket, fault)` pairs,
    /// ignoring rates and budgets.
    pub fn scripted(faults: &[(u64, WorkerFault)]) -> WorkerFaultPlan {
        let mut plan = WorkerFaultPlan::seeded(0, WorkerFaultConfig::default());
        plan.scripted = faults.iter().copied().collect();
        plan
    }

    /// The fault (if any) to fire for this claim of `ticket`. Fires at
    /// most once per ticket: the redispatched re-claim gets `None`.
    pub(crate) fn decide(&mut self, ticket: u64) -> Option<WorkerFault> {
        self.extend_to(ticket);
        if !self.fired.insert(ticket) {
            return None;
        }
        let fault = *self.assigned.get(&ticket)?;
        match fault {
            WorkerFault::Panic => self.injected.panics += 1,
            WorkerFault::Hang => self.injected.hangs += 1,
            WorkerFault::Stall { .. } => self.injected.stalls += 1,
        }
        Some(fault)
    }

    /// Faults fired so far.
    pub fn injected(&self) -> InjectedWorkerFaults {
        self.injected
    }

    /// Assigns faults for every ticket up to and including `ticket`, in
    /// ticket order, so the panic/hang budgets never depend on the
    /// wall-clock order in which workers claim.
    fn extend_to(&mut self, ticket: u64) {
        while self.next_unassigned <= ticket {
            let t = self.next_unassigned;
            self.next_unassigned += 1;
            if let Some(&f) = self.scripted.get(&t) {
                self.assigned.insert(t, f);
                continue;
            }
            let Some(fault) = self.draw(t) else { continue };
            match fault {
                WorkerFault::Panic => {
                    if self.panics_assigned >= self.config.max_panics {
                        continue;
                    }
                    self.panics_assigned += 1;
                }
                WorkerFault::Hang => {
                    if self.hangs_assigned >= self.config.max_hangs {
                        continue;
                    }
                    self.hangs_assigned += 1;
                }
                WorkerFault::Stall { .. } => {}
            }
            self.assigned.insert(t, fault);
        }
    }

    /// The pure per-ticket draw, before budgets.
    fn draw(&self, ticket: u64) -> Option<WorkerFault> {
        let c = &self.config;
        let mut rng = SplitMix64::new(
            self.seed ^ WORKER_FAULT_SALT ^ ticket.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let r = rng.next_f64();
        if r < c.panic_rate {
            Some(WorkerFault::Panic)
        } else if r < c.panic_rate + c.hang_rate {
            Some(WorkerFault::Hang)
        } else if r < c.panic_rate + c.hang_rate + c.stall_rate && c.stall_max_micros > 0 {
            Some(WorkerFault::Stall {
                micros: 1 + rng.below(c.stall_max_micros),
            })
        } else {
            None
        }
    }
}

/// Counters the supervisor publishes (see
/// [`crate::threaded::ThreadedManager::supervisor_stats`]): deaths,
/// respawns and redispatches observed, plus the injection counters of
/// the installed fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Workers that died (panicked) while holding a claim.
    pub worker_deaths: u64,
    /// Workers respawned out of the restart budget.
    pub worker_respawns: u64,
    /// Claims returned to their tile queue after their claimant died or
    /// wedged (same ticket, so commit order is preserved).
    pub redispatches: u64,
    /// Injected panics (from the installed [`WorkerFaultPlan`]).
    pub panics_injected: u64,
    /// Injected hangs.
    pub hangs_injected: u64,
    /// Injected stalls.
    pub stalls_injected: u64,
}

impl SupervisorStats {
    /// Folds a fault plan's injection counters into the snapshot.
    pub(crate) fn merge_injections(&mut self, injected: InjectedWorkerFaults) {
        self.panics_injected = injected.panics;
        self.hangs_injected = injected.hangs;
        self.stalls_injected = injected.stalls;
    }
}

/// Panic payload of an injected worker death; the quiet hook filters it
/// so 200-seed stress runs don't bury real failures in expected
/// backtraces.
pub struct InjectedWorkerPanic;

/// Installs (once) a panic hook that suppresses [`InjectedWorkerPanic`]
/// payloads and forwards everything else to the previous hook. Tests
/// that inject worker panics call this first.
pub fn install_quiet_panic_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<InjectedWorkerPanic>()
                .is_some()
            {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crashy() -> WorkerFaultConfig {
        WorkerFaultConfig {
            panic_rate: 0.3,
            hang_rate: 0.3,
            stall_rate: 0.2,
            stall_max_micros: 50,
            max_panics: 3,
            max_hangs: 3,
        }
    }

    #[test]
    fn assignment_is_a_pure_function_of_seed_and_ticket() {
        let mut a = WorkerFaultPlan::seeded(7, crashy());
        let mut b = WorkerFaultPlan::seeded(7, crashy());
        // Claim order differs; assignments must not.
        let forward: Vec<_> = (0..64).map(|t| a.decide(t)).collect();
        let mut backward: Vec<_> = (0..64).rev().map(|t| b.decide(t)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn budgets_cap_in_ticket_order() {
        let mut plan = WorkerFaultPlan::seeded(11, crashy());
        let mut panics = 0;
        let mut hangs = 0;
        for t in 0..512 {
            match plan.decide(t) {
                Some(WorkerFault::Panic) => panics += 1,
                Some(WorkerFault::Hang) => hangs += 1,
                _ => {}
            }
        }
        assert!(panics <= 3 && hangs <= 3, "{panics} panics, {hangs} hangs");
        assert!(panics + hangs > 0, "rates this high must fire something");
    }

    #[test]
    fn a_fault_fires_once_per_ticket() {
        let mut plan = WorkerFaultPlan::scripted(&[(4, WorkerFault::Hang)]);
        assert_eq!(plan.decide(4), Some(WorkerFault::Hang));
        assert_eq!(plan.decide(4), None, "redispatched claim must proceed");
        assert_eq!(plan.decide(3), None);
        assert_eq!(plan.injected().hangs, 1);
    }

    #[test]
    fn zero_stall_bound_disables_stalls() {
        let mut plan = WorkerFaultPlan::seeded(
            3,
            WorkerFaultConfig {
                stall_rate: 1.0,
                stall_max_micros: 0,
                ..WorkerFaultConfig::default()
            },
        );
        assert!((0..32).all(|t| plan.decide(t).is_none()));
    }
}
