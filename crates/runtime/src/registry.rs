//! The bitstream registry.
//!
//! Before an application starts, its partial bitstreams (mmapped in
//! user-space, copied into kernel memory on the real system) are registered
//! here, keyed by the tile they will be loaded into and the accelerator
//! they implement. One accelerator may be registered on several tiles — its
//! pbs differs per reconfigurable partition, which is why the key is the
//! pair.

use presp_accel::catalog::AcceleratorKind;
use presp_fpga::bitstream::Bitstream;
use presp_soc::config::TileCoord;
use std::collections::BTreeMap;

/// The registry: `(tile, accelerator) → partial bitstream`.
#[derive(Debug, Clone, Default)]
pub struct BitstreamRegistry {
    entries: BTreeMap<(TileCoord, AcceleratorKind), Bitstream>,
}

impl BitstreamRegistry {
    /// An empty registry.
    pub fn new() -> BitstreamRegistry {
        BitstreamRegistry::default()
    }

    /// Registers (or replaces) the bitstream loading `kind` into `tile`.
    ///
    /// Returns the previously registered bitstream, if any.
    pub fn register(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        bitstream: Bitstream,
    ) -> Option<Bitstream> {
        self.entries.insert((tile, kind), bitstream)
    }

    /// Looks up the bitstream for `(tile, kind)`.
    pub fn lookup(&self, tile: TileCoord, kind: AcceleratorKind) -> Option<&Bitstream> {
        self.entries.get(&(tile, kind))
    }

    /// Accelerators registered for a tile.
    pub fn kinds_for_tile(&self, tile: TileCoord) -> Vec<AcceleratorKind> {
        self.entries
            .keys()
            .filter(|(t, _)| *t == tile)
            .map(|(_, k)| *k)
            .collect()
    }

    /// Number of registered bitstreams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of registered bitstreams (the DRAM the loader pins).
    pub fn total_bytes(&self) -> usize {
        self.entries.values().map(|b| b.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_fpga::part::FpgaPart;

    fn bitstream(value: u32) -> Bitstream {
        let device = FpgaPart::Vc707.device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, 1, 0), vec![value; words])
            .unwrap();
        b.build(true)
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(1, 0);
        assert!(reg.lookup(tile, AcceleratorKind::Mac).is_none());
        reg.register(tile, AcceleratorKind::Mac, bitstream(1));
        assert!(reg.lookup(tile, AcceleratorKind::Mac).is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn same_kind_different_tiles_are_distinct() {
        let mut reg = BitstreamRegistry::new();
        reg.register(TileCoord::new(1, 0), AcceleratorKind::Mac, bitstream(1));
        reg.register(TileCoord::new(1, 1), AcceleratorKind::Mac, bitstream(2));
        assert_eq!(reg.len(), 2);
        assert_ne!(
            reg.lookup(TileCoord::new(1, 0), AcceleratorKind::Mac),
            reg.lookup(TileCoord::new(1, 1), AcceleratorKind::Mac)
        );
    }

    #[test]
    fn replacement_returns_old_bitstream() {
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(0, 0);
        assert!(reg
            .register(tile, AcceleratorKind::Sort, bitstream(1))
            .is_none());
        let old = reg.register(tile, AcceleratorKind::Sort, bitstream(2));
        assert!(old.is_some());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn kinds_for_tile_lists_registrations() {
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(2, 2);
        reg.register(tile, AcceleratorKind::Mac, bitstream(1));
        reg.register(tile, AcceleratorKind::Gemm, bitstream(2));
        let kinds = reg.kinds_for_tile(tile);
        assert_eq!(kinds.len(), 2);
        assert!(kinds.contains(&AcceleratorKind::Gemm));
        assert!(reg.kinds_for_tile(TileCoord::new(0, 0)).is_empty());
    }

    #[test]
    fn total_bytes_sums_sizes() {
        let mut reg = BitstreamRegistry::new();
        assert_eq!(reg.total_bytes(), 0);
        assert!(reg.is_empty());
        reg.register(TileCoord::new(0, 0), AcceleratorKind::Fft, bitstream(3));
        assert!(reg.total_bytes() > 0);
    }
}
