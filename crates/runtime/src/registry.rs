//! The bitstream registry.
//!
//! Before an application starts, its partial bitstreams (mmapped in
//! user-space, copied into kernel memory on the real system) are registered
//! here, keyed by the tile they will be loaded into and the accelerator
//! they implement. One accelerator may be registered on several tiles — its
//! pbs differs per reconfigurable partition, which is why the key is the
//! pair.
//!
//! Two integrity rules guard the store:
//!
//! * registering the same `(tile, accelerator)` pair twice is an error —
//!   a silent overwrite would let a stale or malicious stream shadow the
//!   deployed one ([`BitstreamRegistry::replace`] is the explicit path);
//! * every [`BitstreamRegistry::lookup`] re-verifies the bitstream's
//!   build-time integrity checksum, so a stream corrupted after
//!   registration is caught *before* it is ever handed to the DFXC.

use crate::error::Error;
use presp_accel::catalog::AcceleratorKind;
use presp_fpga::bitstream::Bitstream;
use presp_soc::config::TileCoord;
use std::collections::BTreeMap;

/// The registry: `(tile, accelerator) → partial bitstream`.
#[derive(Debug, Clone, Default)]
pub struct BitstreamRegistry {
    entries: BTreeMap<(TileCoord, AcceleratorKind), Bitstream>,
}

impl BitstreamRegistry {
    /// An empty registry.
    pub fn new() -> BitstreamRegistry {
        BitstreamRegistry::default()
    }

    /// Registers the bitstream loading `kind` into `tile`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AlreadyRegistered`] when the pair already holds a
    /// bitstream; replacement must be explicit via
    /// [`BitstreamRegistry::replace`].
    pub fn register(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        bitstream: Bitstream,
    ) -> Result<(), Error> {
        if self.entries.contains_key(&(tile, kind)) {
            return Err(Error::AlreadyRegistered { tile, kind });
        }
        self.entries.insert((tile, kind), bitstream);
        Ok(())
    }

    /// Explicitly replaces the bitstream for `(tile, kind)`, returning the
    /// previous one (if any).
    pub fn replace(
        &mut self,
        tile: TileCoord,
        kind: AcceleratorKind,
        bitstream: Bitstream,
    ) -> Option<Bitstream> {
        self.entries.insert((tile, kind), bitstream)
    }

    /// Looks up the bitstream for `(tile, kind)`, re-verifying its
    /// build-time integrity checksum.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BitstreamNotRegistered`] for unknown pairs and
    /// [`Error::CorruptBitstream`] when the stored stream no longer
    /// matches the checksum computed when it was built.
    pub fn lookup(&self, tile: TileCoord, kind: AcceleratorKind) -> Result<&Bitstream, Error> {
        let bitstream = self
            .entries
            .get(&(tile, kind))
            .ok_or(Error::BitstreamNotRegistered { tile, kind })?;
        if !bitstream.verify_integrity() {
            return Err(Error::CorruptBitstream { tile, kind });
        }
        Ok(bitstream)
    }

    /// Accelerators registered for a tile.
    pub fn kinds_for_tile(&self, tile: TileCoord) -> Vec<AcceleratorKind> {
        self.entries
            .keys()
            .filter(|(t, _)| *t == tile)
            .map(|(_, k)| *k)
            .collect()
    }

    /// Number of registered bitstreams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of registered bitstreams (the DRAM the loader pins).
    pub fn total_bytes(&self) -> usize {
        self.entries.values().map(|b| b.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_fpga::bitstream::{BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_fpga::part::FpgaPart;

    fn bitstream(value: u32) -> Bitstream {
        let device = FpgaPart::Vc707.device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, 1, 0), vec![value; words])
            .unwrap();
        b.build(true)
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(1, 0);
        assert!(matches!(
            reg.lookup(tile, AcceleratorKind::Mac),
            Err(Error::BitstreamNotRegistered { .. })
        ));
        reg.register(tile, AcceleratorKind::Mac, bitstream(1))
            .unwrap();
        assert!(reg.lookup(tile, AcceleratorKind::Mac).is_ok());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn same_kind_different_tiles_are_distinct() {
        let mut reg = BitstreamRegistry::new();
        reg.register(TileCoord::new(1, 0), AcceleratorKind::Mac, bitstream(1))
            .unwrap();
        reg.register(TileCoord::new(1, 1), AcceleratorKind::Mac, bitstream(2))
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert_ne!(
            reg.lookup(TileCoord::new(1, 0), AcceleratorKind::Mac)
                .unwrap(),
            reg.lookup(TileCoord::new(1, 1), AcceleratorKind::Mac)
                .unwrap()
        );
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        // Regression: `register` used to silently overwrite the existing
        // entry, letting a stale stream shadow the deployed one.
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(0, 0);
        reg.register(tile, AcceleratorKind::Sort, bitstream(1))
            .unwrap();
        let err = reg.register(tile, AcceleratorKind::Sort, bitstream(2));
        assert!(matches!(err, Err(Error::AlreadyRegistered { .. })));
        assert_eq!(reg.len(), 1);
        // The original stream is untouched …
        let kept = reg.lookup(tile, AcceleratorKind::Sort).unwrap().clone();
        // … and explicit replacement still works.
        let old = reg.replace(tile, AcceleratorKind::Sort, bitstream(2));
        assert_eq!(old.as_ref(), Some(&kept));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn lookup_detects_storage_corruption() {
        // Regression: lookup never re-validated the stream, so a bitstream
        // corrupted after registration reached the ICAP unchecked.
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(1, 1);
        let good = bitstream(7);
        let mut words = good.words().to_vec();
        let idx = words.len() / 2;
        words[idx] ^= 0x40;
        let corrupted = good.with_words(words);
        reg.register(tile, AcceleratorKind::Fft, corrupted).unwrap();
        assert!(matches!(
            reg.lookup(tile, AcceleratorKind::Fft),
            Err(Error::CorruptBitstream { .. })
        ));
        // A pristine stream on the same tile still verifies.
        reg.replace(tile, AcceleratorKind::Fft, good);
        assert!(reg.lookup(tile, AcceleratorKind::Fft).is_ok());
    }

    #[test]
    fn kinds_for_tile_lists_registrations() {
        let mut reg = BitstreamRegistry::new();
        let tile = TileCoord::new(2, 2);
        reg.register(tile, AcceleratorKind::Mac, bitstream(1))
            .unwrap();
        reg.register(tile, AcceleratorKind::Gemm, bitstream(2))
            .unwrap();
        let kinds = reg.kinds_for_tile(tile);
        assert_eq!(kinds.len(), 2);
        assert!(kinds.contains(&AcceleratorKind::Gemm));
        assert!(reg.kinds_for_tile(TileCoord::new(0, 0)).is_empty());
    }

    #[test]
    fn total_bytes_sums_sizes() {
        let mut reg = BitstreamRegistry::new();
        assert_eq!(reg.total_bytes(), 0);
        assert!(reg.is_empty());
        reg.register(TileCoord::new(0, 0), AcceleratorKind::Fft, bitstream(3))
            .unwrap();
        assert!(reg.total_bytes() > 0);
    }
}
