//! The OS-threaded workqueue front-end.
//!
//! The paper's manager "uses the built-in kernel workqueue to manage
//! multiple reconfiguration requests": application threads enqueue
//! requests; the queue executes them as soon as the PRC is ready; callers
//! wait for completion. This module is the blocking API over the sharded
//! [`crate::scheduler::Scheduler`]: per-tile queues drained by a pool of
//! worker threads, with only the ICAP/NoC critical section serializing
//! (in global ticket order, so results are reproducible for any worker
//! count — see the scheduler docs).
//!
//! The whole protocol is generic over [`SyncFacade`]: production code
//! instantiates [`ThreadedManager`] (= `ThreadedManager<StdSync>`, plain
//! `std::sync` primitives), while the model-check suites instantiate
//! `ThreadedManager<CheckSync>` and run the *same*
//! claim/gate/commit/reply protocol under `presp-check`'s schedule
//! explorer. Lock labels (`"sched_admission"`, `"tile_queue"`, `"gate"`,
//! `"tile_state"`, `"core"`, `"worker"`) feed its lock-order graph.

use crate::cache::CacheStats;
use crate::error::Error;
use crate::manager::{ExecPath, ManagerStats, RecoveryPolicy};
use crate::registry::BitstreamRegistry;
use crate::scheduler::{MutantConfig, Pending, Scheduler, SchedulerStats, DEFAULT_CACHE_CAPACITY};
use crate::sync::{StdSync, SyncFacade};
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};

/// A thread-safe handle to the DPR runtime: clone it into as many
/// application threads as you like. Requests to independent tiles are
/// prepared concurrently by the worker pool; the shared device commits
/// them in admission order.
///
/// # Example
///
/// ```no_run
/// # use presp_runtime::threaded::ThreadedManager;
/// # use presp_runtime::registry::BitstreamRegistry;
/// # use presp_soc::{config::SocConfig, sim::Soc};
/// # use presp_accel::{AccelOp, AcceleratorKind};
/// # fn demo() -> Result<(), presp_runtime::Error> {
/// let config = SocConfig::grid_3x3_reconf("demo", 2)?;
/// let soc = Soc::new(&config)?;
/// let manager = ThreadedManager::spawn(soc, BitstreamRegistry::new());
/// let tile = config.reconfigurable_tiles()[0];
/// manager.reconfigure_blocking(tile, AcceleratorKind::Mac)?;
/// let run = manager.run_blocking(tile, AccelOp::Mac { a: vec![1.0], b: vec![2.0] })?;
/// manager.shutdown();
/// # Ok(()) }
/// ```
pub struct ThreadedManager<S: SyncFacade = StdSync> {
    pub(crate) sched: Scheduler<S>,
}

impl<S: SyncFacade> Clone for ThreadedManager<S> {
    fn clone(&self) -> ThreadedManager<S> {
        ThreadedManager {
            sched: self.sched.clone(),
        }
    }
}

impl ThreadedManager<StdSync> {
    /// Boots the worker pool over a SoC and registry with the default
    /// [`RecoveryPolicy`], one worker per reconfigurable tile and the
    /// default verified-bitstream cache.
    pub fn spawn(soc: Soc, registry: BitstreamRegistry) -> ThreadedManager {
        ThreadedManager::spawn_with_policy(soc, registry, RecoveryPolicy::default())
    }
}

impl<S: SyncFacade> ThreadedManager<S> {
    /// Boots with an explicit recovery policy, under any sync facade.
    /// Worker count defaults to the number of reconfigurable tiles.
    pub fn spawn_with_policy(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
    ) -> ThreadedManager<S> {
        let workers = soc.config().reconfigurable_tiles().len().max(1);
        ThreadedManager::spawn_with_workers(soc, registry, policy, workers)
    }

    /// Boots an explicit number of worker threads. `workers = 1` degrades
    /// to the old single-worker workqueue; any count produces identical
    /// virtual-time results (see [`crate::scheduler`]).
    pub fn spawn_with_workers(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        workers: usize,
    ) -> ThreadedManager<S> {
        ThreadedManager {
            sched: Scheduler::boot(
                soc,
                registry,
                policy,
                workers,
                DEFAULT_CACHE_CAPACITY,
                MutantConfig::default(),
            ),
        }
    }

    /// Boots with every spec-driven knob explicit: worker count and
    /// verified-bitstream cache capacity (`0` disables the cache). This
    /// is the constructor declarative scenario harnesses use — every
    /// argument maps one-to-one onto a scenario-file field.
    pub fn spawn_with_config(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        workers: usize,
        cache_capacity: usize,
    ) -> ThreadedManager<S> {
        ThreadedManager {
            sched: Scheduler::boot(
                soc,
                registry,
                policy,
                workers,
                cache_capacity,
                MutantConfig::default(),
            ),
        }
    }

    /// Boots with explicit mutants enabled — checker-validation only.
    #[doc(hidden)]
    pub fn spawn_with_mutants(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        workers: usize,
        mutants: MutantConfig,
    ) -> ThreadedManager<S> {
        ThreadedManager {
            sched: Scheduler::boot(
                soc,
                registry,
                policy,
                workers,
                DEFAULT_CACHE_CAPACITY,
                mutants,
            ),
        }
    }

    /// The underlying scheduler (asynchronous submissions, scheduling
    /// metrics).
    pub fn scheduler(&self) -> &Scheduler<S> {
        &self.sched
    }

    /// Submits a reconfiguration without blocking; identical pending
    /// requests coalesce into one load.
    pub fn submit_reconfigure(&self, tile: TileCoord, kind: AcceleratorKind) -> Pending<S, ()> {
        self.sched.submit_reconfigure(tile, kind)
    }

    /// Submits an accelerator invocation without blocking.
    pub fn submit_run(&self, tile: TileCoord, op: AccelOp) -> Pending<S, AccelRun> {
        self.sched.submit_run(tile, op)
    }

    /// Submits an ensure-loaded-then-run request without blocking.
    pub fn submit_execute(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Pending<S, (AccelRun, ExecPath)> {
        self.sched.submit_execute(tile, kind, op)
    }

    /// Enqueues a reconfiguration and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager
    /// errors.
    pub fn reconfigure_blocking(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<(), Error> {
        self.sched.submit_reconfigure(tile, kind).wait()
    }

    /// Enqueues an accelerator invocation and blocks for its result.
    ///
    /// If the tile is mid-reconfiguration (its driver is unloaded), the
    /// call waits for the next reconfiguration completion and retries —
    /// the paper's "other threads trying to access it must wait until the
    /// reconfiguration is complete and the new driver is loaded".
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager and
    /// SoC errors.
    pub fn run_blocking(&self, tile: TileCoord, op: AccelOp) -> Result<AccelRun, Error> {
        loop {
            match self.sched.submit_run(tile, op.clone()).wait() {
                Err(Error::NoDriver { .. }) => {
                    // Wait for a reconfiguration to finish, then retry —
                    // unless the tile was quarantined, in which case no
                    // reconfiguration will ever complete here.
                    self.sched.wait_for_reconfig(tile)?;
                }
                other => return other,
            }
        }
    }

    /// Enqueues an ensure-loaded-then-run request and blocks for its
    /// result: the worker reconfigures if needed (with the manager's
    /// retry/backoff recovery) and degrades to the CPU software path when
    /// the accelerator path is unavailable, so the call completes even on
    /// a faulty tile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus
    /// non-degradable manager errors.
    pub fn execute_blocking(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Result<(AccelRun, ExecPath), Error> {
        self.sched.submit_execute(tile, kind, op).wait()
    }

    /// Manager statistics snapshot.
    ///
    /// Read-only post-mortem path: recovers from a poisoned device-core
    /// lock (a panicking worker must not take crash forensics down with
    /// it).
    pub fn stats(&self) -> ManagerStats {
        self.sched.stats()
    }

    /// Wall-clock scheduling metrics: queue-wait percentiles, coalesced
    /// submissions, backlog high-water mark.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.sched.scheduler_stats()
    }

    /// Hit/miss counters of the verified-bitstream cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.sched.cache_stats()
    }

    /// Switches the device core from fixed sockets to amorphous
    /// floorplanning over the whole fabric — see
    /// [`crate::scheduler::Scheduler::enable_regions`]. Must run before
    /// the first load.
    ///
    /// # Errors
    ///
    /// [`presp_soc::Error::RegionConflict`] when any tile already loaded.
    pub fn enable_regions(&self, policy: presp_floorplan::FitPolicy) -> Result<(), Error> {
        self.sched.enable_regions(policy)
    }

    /// [`ThreadedManager::enable_regions`] confined to the column window
    /// `window` — the PR share of the fabric.
    ///
    /// # Errors
    ///
    /// [`presp_soc::Error::RegionConflict`] when any tile already loaded.
    pub fn enable_regions_within(
        &self,
        policy: presp_floorplan::FitPolicy,
        window: std::ops::Range<u32>,
    ) -> Result<(), Error> {
        self.sched.enable_regions_within(policy, window)
    }

    /// Fragmentation snapshot of the region allocator; `None` on the
    /// fixed-socket path.
    pub fn fragmentation(&self) -> Option<presp_floorplan::FragmentationStats> {
        self.sched.fragmentation()
    }

    /// The live region lease of `tile` (amorphous floorplanning only).
    pub fn tile_lease(&self, tile: TileCoord) -> Option<presp_floorplan::RegionLease> {
        self.sched.tile_lease(tile)
    }

    /// Latest completion cycle on the shared virtual clock — the
    /// application makespan across everything the workers dispatched.
    /// OS-thread interleaving varies between runs; this virtual-time
    /// reading is still exact for the operations performed.
    ///
    /// Like [`ThreadedManager::stats`], survives a poisoned core lock.
    pub fn makespan(&self) -> u64 {
        self.sched.makespan()
    }

    /// Attaches a trace sink to the underlying SoC: worker-dispatched
    /// operations emit structured records through it.
    ///
    /// Post-mortem path like [`ThreadedManager::stats`]: recovers from a
    /// poisoned core lock, so a crashed worker cannot make the trace log
    /// unreachable. (This used to go through the panicking lock and died
    /// exactly when forensics were needed.)
    pub fn attach_tracer(&self, sink: presp_events::SharedSink) {
        self.sched.attach_tracer(sink);
    }

    /// Attaches a sharded trace sink: worker `i` commits through shard
    /// `i mod sink.len()`, so concurrent commits never contend on one
    /// sink mutex, and [`presp_events::ShardedSink::drain_merged`]
    /// reproduces the exact single-sink log byte for byte at any worker
    /// count — see [`crate::scheduler::Scheduler::attach_sharded_tracer`].
    pub fn attach_sharded_tracer(&self, sink: &presp_events::ShardedSink) {
        self.sched.attach_sharded_tracer(sink);
    }

    /// Installs (or disarms) a fault plan on the underlying SoC — see
    /// [`crate::scheduler::Scheduler::set_fault_plan`].
    pub fn set_fault_plan(&self, plan: Option<presp_fpga::fault::FaultPlan>) {
        self.sched.set_fault_plan(plan);
    }

    /// Faults the installed plan has injected so far.
    pub fn injected_faults(&self) -> presp_fpga::fault::InjectedFaults {
        self.sched.injected_faults()
    }

    /// Tiles currently quarantined, in coordinate order.
    pub fn quarantined_tiles(&self) -> Vec<TileCoord> {
        self.sched.quarantined_tiles()
    }

    /// Installs (or disarms) a worker-software-fault plan — see
    /// [`crate::scheduler::Scheduler::set_worker_fault_plan`]. Only a
    /// supervised manager (`RecoveryPolicy::supervised`) consults it.
    pub fn set_worker_fault_plan(&self, plan: Option<crate::supervisor::WorkerFaultPlan>) {
        self.sched.set_worker_fault_plan(plan);
    }

    /// Supervision counters (deaths, respawns, steals, redispatches)
    /// with the fault plan's injection counters folded in.
    pub fn supervisor_stats(&self) -> crate::supervisor::SupervisorStats {
        self.sched.supervisor_stats()
    }

    /// Tickets admitted but neither committed nor retired. Zero on any
    /// quiesced manager — the supervision layer's "no orphaned tickets"
    /// invariant.
    pub fn orphaned_tickets(&self) -> u64 {
        self.sched.orphaned_tickets()
    }

    /// Caller-side unlocked read the `unsynced_stats` mutant races with.
    #[doc(hidden)]
    pub fn unsynced_runs(&self) -> u64 {
        self.sched.unsynced_runs()
    }

    /// Stops the workers and joins them. Idempotent, and — like the other
    /// post-mortem paths — tolerant of poisoned locks.
    pub fn shutdown(&self) {
        self.sched.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::OverloadPolicy;
    use crate::supervisor::{install_quiet_panic_hook, WorkerFault, WorkerFaultPlan};
    use presp_accel::AccelValue;
    use presp_check::{CheckSync, Checker, Config, FailureKind};
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
            .unwrap();
        b.build(true)
    }

    fn boot(n: usize) -> (ThreadedManager, Vec<TileCoord>) {
        boot_with(n, RecoveryPolicy::default(), n.max(1))
    }

    fn boot_with(
        n: usize,
        policy: RecoveryPolicy,
        workers: usize,
    ) -> (ThreadedManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("threaded", n).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
                .unwrap();
        }
        (
            ThreadedManager::spawn_with_workers(soc, registry, policy, workers),
            tiles,
        )
    }

    fn supervised_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            supervised: true,
            ..RecoveryPolicy::default()
        }
    }

    /// Polls until `f` holds. Respawns and steals run on the
    /// supervisor's wall-clock watchdog, so tests wait for them briefly.
    fn wait_until(mut f: impl FnMut() -> bool) {
        for _ in 0..2000 {
            if f() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("condition not reached within 2s");
    }

    /// Boots a model-checked manager inside an exploration body.
    fn boot_checked(mutants: MutantConfig) -> (ThreadedManager<CheckSync>, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("model", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
            .unwrap();
        let mgr = ThreadedManager::<CheckSync>::spawn_with_mutants(
            soc,
            registry,
            RecoveryPolicy::default(),
            1,
            mutants,
        );
        (mgr, tiles)
    }

    fn mutant_checker() -> Checker {
        Checker::new(Config {
            max_schedules: 5_000,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
    }

    #[test]
    fn blocking_reconfigure_and_run() {
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let run = mgr
            .run_blocking(
                tiles[0],
                AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        mgr.shutdown();
    }

    #[test]
    fn one_thread_per_tile_runs_concurrently() {
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = tiles
            .iter()
            .enumerate()
            .map(|(i, &tile)| {
                let mgr = mgr.clone();
                std::thread::spawn(move || {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                    let mut total = 0.0f32;
                    for round in 0..5 {
                        let v = (i + round) as f32;
                        let run = mgr
                            .run_blocking(
                                tile,
                                AccelOp::Mac {
                                    a: vec![v; 16],
                                    b: vec![1.0; 16],
                                },
                            )
                            .unwrap();
                        match run.value {
                            AccelValue::Scalar(s) => total += s,
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    total
                })
            })
            .collect();
        let results: Vec<f32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Thread i computes Σ_round 16·(i+round) = 16·(5i + 10).
        assert_eq!(results[0], 160.0);
        assert_eq!(results[1], 240.0);
        assert_eq!(mgr.stats().reconfigurations, 2);
        assert_eq!(mgr.stats().runs, 10);
        mgr.shutdown();
    }

    #[test]
    fn swapping_under_contention_stays_consistent() {
        let (mgr, tiles) = boot(1);
        let tile = tiles[0];
        let swapper = {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Sort)
                        .unwrap();
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                }
            })
        };
        // This thread hammers the tile with MAC work; whenever the swapper
        // has SORT loaded the call returns NoDriver internally and retries.
        let mut successes = 0;
        for _ in 0..20 {
            match mgr.run_blocking(
                tile,
                AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![1.0],
                },
            ) {
                Ok(run) => {
                    assert_eq!(run.value, AccelValue::Scalar(1.0));
                    successes += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        swapper.join().unwrap();
        assert_eq!(successes, 20);
        assert!(mgr.stats().consistent(), "{:?}", mgr.stats());
        mgr.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_requests() {
        let (mgr, tiles) = boot(1);
        mgr.shutdown();
        mgr.shutdown();
        let err = mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac);
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }

    #[test]
    fn shutdown_under_load_answers_every_caller() {
        // Shut down while four threads are mid-burst: every call must get
        // an answer — a result or ManagerStopped — and every thread must
        // join. A dropped reply sender or a hung worker fails this test.
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mgr = mgr.clone();
                let tile = tiles[i % 2];
                std::thread::spawn(move || {
                    let mut answered = 0;
                    for j in 0..50 {
                        let (kind, op) = if (i + j) % 2 == 0 {
                            (
                                AcceleratorKind::Mac,
                                AccelOp::Mac {
                                    a: vec![1.0],
                                    b: vec![2.0],
                                },
                            )
                        } else {
                            (
                                AcceleratorKind::Sort,
                                AccelOp::Sort {
                                    data: vec![2.0, 1.0],
                                },
                            )
                        };
                        match mgr.execute_blocking(tile, kind, op) {
                            Ok(_) | Err(Error::ManagerStopped) => answered += 1,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                    answered
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(2));
        mgr.shutdown();
        for h in handles {
            assert_eq!(h.join().expect("worker thread panicked"), 50);
        }
        // The workers are joined; a fresh request is refused, not lost.
        let err = mgr.run_blocking(
            tiles[0],
            AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
        );
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }

    #[test]
    fn unknown_tile_is_refused_not_hung() {
        let (mgr, _tiles) = boot(1);
        let off_grid = TileCoord::new(9, 9);
        let err = mgr.reconfigure_blocking(off_grid, AcceleratorKind::Mac);
        assert!(matches!(
            err,
            Err(Error::Soc(presp_soc::Error::NoSuchTile { .. }))
        ));
        let err = mgr.run_blocking(
            off_grid,
            AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
        );
        assert!(matches!(
            err,
            Err(Error::Soc(presp_soc::Error::NoSuchTile { .. }))
        ));
        mgr.shutdown();
    }

    #[test]
    fn stats_survive_a_poisoned_core_lock() {
        // Regression: post-mortem paths used `.expect("lock")` and
        // panicked if any thread had crashed inside a critical section,
        // losing exactly the stats needed to debug the crash.
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let poisoner = mgr.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.sched.shared.core.lock().unwrap();
            panic!("crash while holding the core lock");
        })
        .join();
        // The lock is now poisoned; forensics must still work.
        let stats = mgr.stats();
        assert_eq!(stats.reconfigurations, 1);
        assert!(stats.consistent());
        assert!(mgr.makespan() > 0);
        mgr.shutdown();
        mgr.shutdown(); // still idempotent post-poison
    }

    #[test]
    fn attach_tracer_survives_a_poisoned_core_lock() {
        // Regression: `attach_tracer` went through the panicking lock
        // while every other post-mortem path recovered — so a crashed
        // worker made the trace log unreachable exactly when it was
        // needed. It must behave like `stats`/`makespan`.
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let poisoner = mgr.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.sched.shared.core.lock().unwrap();
            panic!("crash while holding the core lock");
        })
        .join();
        // The old implementation panicked right here; attaching must
        // succeed and the sink must really reach the SoC.
        let sink = presp_events::MemorySink::shared();
        mgr.attach_tracer(sink.clone());
        let mut core = match mgr.sched.shared.core.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        core.soc_mut()
            .tracer_mut()
            .instant(presp_events::trace::ClockDomain::SocCycles, 0, || {
                presp_events::TraceEvent::CpuFallback {
                    kind: "post-poison probe".into(),
                }
            });
        drop(core);
        assert!(
            !presp_events::sink::snapshot(&sink).is_empty(),
            "the post-poison tracer must still capture events"
        );
        mgr.shutdown();
    }

    // ---- supervision, deadlines & admission control -------------------

    #[test]
    fn panicking_worker_is_healed_and_respawned() {
        install_quiet_panic_hook();
        let (mgr, tiles) = boot_with(2, supervised_policy(), 2);
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Panic)])));
        // Ticket 0's worker panics mid-prepare: the claim guard heals the
        // gate and the job is redispatched under the same ticket, so the
        // blocked caller still gets its result.
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let run = mgr
            .run_blocking(
                tiles[0],
                AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![4.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(8.0));
        wait_until(|| mgr.supervisor_stats().worker_respawns == 1);
        let sup = mgr.supervisor_stats();
        assert_eq!(sup.worker_deaths, 1);
        assert_eq!(sup.redispatches, 1);
        assert_eq!(sup.panics_injected, 1);
        // Quiescent invariant: the replying worker may still be mid
        // post-commit bookkeeping when the waiter wakes, so poll.
        wait_until(|| mgr.orphaned_tickets() == 0);
        assert!(mgr.stats().consistent(), "{:?}", mgr.stats());
        mgr.shutdown();
    }

    #[test]
    fn hung_worker_claim_is_stolen_and_redispatched() {
        let (mgr, tiles) = boot_with(1, supervised_policy(), 1);
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        // The only worker wedges after prepare; the watchdog steals the
        // claim blocking the gate and the released worker redoes it.
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let sup = mgr.supervisor_stats();
        assert_eq!(sup.hangs_injected, 1);
        assert_eq!(sup.redispatches, 1);
        assert_eq!(sup.worker_deaths, 0);
        // Quiescent invariant: the replying worker may still be mid
        // post-commit bookkeeping when the waiter wakes, so poll.
        wait_until(|| mgr.orphaned_tickets() == 0);
        assert!(mgr.stats().consistent(), "{:?}", mgr.stats());
        mgr.shutdown();
    }

    #[test]
    fn reconfiguration_past_its_deadline_is_cancelled() {
        let policy = RecoveryPolicy {
            deadline_cycles: 1,
            ..supervised_policy()
        };
        let (mgr, tiles) = boot_with(1, policy, 1);
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        // A hangs until the watchdog steals it (wall-clock), so B is
        // admitted meanwhile with a deadline 1 virtual cycle out. A
        // commits first, on time at virtual time 0; B commits after A's
        // whole reconfiguration and has missed.
        let a = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Mac);
        let b = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Sort);
        a.wait().unwrap();
        let err = b.wait();
        assert!(
            matches!(err, Err(Error::DeadlineExceeded { .. })),
            "got {err:?}"
        );
        let stats = mgr.stats();
        assert_eq!(stats.deadline_misses, 1);
        assert!(stats.consistent(), "{stats:?}");
        // Quiescent invariant: the replying worker may still be mid
        // post-commit bookkeeping when the waiter wakes, so poll.
        wait_until(|| mgr.orphaned_tickets() == 0);
        mgr.shutdown();
    }

    #[test]
    fn execute_past_its_deadline_degrades_to_cpu() {
        let policy = RecoveryPolicy {
            deadline_cycles: 1,
            ..supervised_policy()
        };
        let (mgr, tiles) = boot_with(1, policy, 1);
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        let a = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Mac);
        let b = mgr.submit_execute(
            tiles[0],
            AcceleratorKind::Sort,
            AccelOp::Sort {
                data: vec![3.0, 1.0, 2.0],
            },
        );
        a.wait().unwrap();
        // The execute missed its deadline: it skips the accelerator (no
        // reconfiguration, no fabric time) and degrades to the CPU path.
        let (run, path) = b.wait().unwrap();
        assert_eq!(path, ExecPath::CpuFallback);
        assert_eq!(run.value, AccelValue::Vector(vec![1.0, 2.0, 3.0]));
        let stats = mgr.stats();
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.fallback_runs, 1);
        assert!(stats.consistent(), "{stats:?}");
        mgr.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_new_requests_when_full() {
        let policy = RecoveryPolicy {
            queue_capacity: 1,
            ..supervised_policy()
        };
        let (mgr, tiles) = boot_with(1, policy, 1);
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        let a = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Mac);
        // Once A is claimed (and hung) the queue is empty again; B fills
        // the single slot and C finds the door closed.
        wait_until(|| mgr.supervisor_stats().hangs_injected == 1);
        let b = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Sort);
        let err = mgr
            .submit_run(
                tiles[0],
                AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![1.0],
                },
            )
            .wait();
        assert!(matches!(err, Err(Error::Overloaded { .. })), "got {err:?}");
        a.wait().unwrap();
        b.wait().unwrap();
        assert_eq!(mgr.stats().shed, 1);
        // Quiescent invariant: the replying worker may still be mid
        // post-commit bookkeeping when the waiter wakes, so poll.
        wait_until(|| mgr.orphaned_tickets() == 0);
        assert!(mgr.stats().consistent(), "{:?}", mgr.stats());
        mgr.shutdown();
    }

    #[test]
    fn bounded_queue_sheds_oldest_under_shed_oldest_policy() {
        let policy = RecoveryPolicy {
            queue_capacity: 1,
            overload: OverloadPolicy::ShedOldest,
            ..supervised_policy()
        };
        let (mgr, tiles) = boot_with(1, policy, 1);
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        let a = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Mac);
        wait_until(|| mgr.supervisor_stats().hangs_injected == 1);
        let b = mgr.submit_reconfigure(tiles[0], AcceleratorKind::Sort);
        // C displaces the oldest queued request (B): B's waiter learns it
        // was shed, C takes the slot and completes.
        let c = mgr.submit_run(
            tiles[0],
            AccelOp::Mac {
                a: vec![2.0],
                b: vec![3.0],
            },
        );
        let err = b.wait();
        assert!(matches!(err, Err(Error::Overloaded { .. })), "got {err:?}");
        a.wait().unwrap();
        let run = c.wait().unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        assert_eq!(mgr.stats().shed, 1);
        // Quiescent invariant: the replying worker may still be mid
        // post-commit bookkeeping when the waiter wakes, so poll.
        wait_until(|| mgr.orphaned_tickets() == 0);
        assert!(mgr.stats().consistent(), "{:?}", mgr.stats());
        mgr.shutdown();
    }

    #[test]
    fn circuit_breaker_refuses_quarantined_tiles_at_the_door() {
        use presp_fpga::fault::{FaultConfig, FaultPlan};
        let policy = RecoveryPolicy {
            max_retries: 0,
            quarantine_after: 1,
            breaker: true,
            ..supervised_policy()
        };
        let (mgr, tiles) = boot_with(1, policy, 1);
        let mut plan = FaultPlan::new(11, FaultConfig::uniform(0.0));
        for n in 0..4 {
            plan.force_icap_fault(n);
        }
        mgr.set_fault_plan(Some(plan));
        let err = mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac);
        assert!(
            matches!(err, Err(Error::RetriesExhausted { .. })),
            "got {err:?}"
        );
        assert_eq!(mgr.quarantined_tiles(), vec![tiles[0]]);
        // The breaker now refuses at the queue door: no ticket burned, no
        // worker woken, the shed counter records the refusal.
        let err = mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Sort);
        assert!(
            matches!(err, Err(Error::TileQuarantined { .. })),
            "got {err:?}"
        );
        let stats = mgr.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 0, "the breaker fires before the ledger");
        assert!(stats.consistent(), "{stats:?}");
        // Quiescent invariant: the replying worker may still be mid
        // post-commit bookkeeping when the waiter wakes, so poll.
        wait_until(|| mgr.orphaned_tickets() == 0);
        mgr.shutdown();
    }

    // ---- model-checked protocol (CheckSync) ---------------------------

    fn shard_core_inversion_model() {
        let (mgr, tiles) = boot_checked(MutantConfig {
            shard_core_inversion: true,
            ..MutantConfig::default()
        });
        let scrubber = crate::scrubber::ScrubberDaemon::attach(&mgr);
        let app = mgr.clone();
        let tile = tiles[0];
        let h = presp_check::sync::spawn_named("app", move || {
            app.reconfigure_blocking(tile, AcceleratorKind::Mac)
                .unwrap();
        });
        let _ = scrubber.scrub_blocking(tile);
        h.join().unwrap();
        scrubber.shutdown();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_shard_core_inversion_mutant() {
        let report = mutant_checker().explore(shard_core_inversion_model);
        let failure = report
            .failure
            .expect("the inversion mutant must deadlock some schedule");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        // The printed schedule replays the identical deadlock.
        let replay = mutant_checker().replay(&failure.schedule, shard_core_inversion_model);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must reproduce the deadlock: {replay}"
        );
    }

    fn queue_admission_inversion_model() {
        let (mgr, tiles) = boot_checked(MutantConfig {
            queue_admission_inversion: true,
            ..MutantConfig::default()
        });
        let tile = tiles[0];
        let app = mgr.clone();
        // A submitter (sched_admission → tile_queue) racing the worker's
        // mutant completion path (tile_queue → sched_admission).
        let h = presp_check::sync::spawn_named("app", move || {
            let _ = app.reconfigure_blocking(tile, AcceleratorKind::Mac);
        });
        let _ = mgr.execute_blocking(
            tile,
            AcceleratorKind::Mac,
            AccelOp::Mac {
                a: vec![1.0],
                b: vec![2.0],
            },
        );
        h.join().unwrap();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_queue_admission_inversion_mutant() {
        let report = mutant_checker().explore(queue_admission_inversion_model);
        let failure = report
            .failure
            .expect("the queue/admission inversion mutant must deadlock some schedule");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        let replay = mutant_checker().replay(&failure.schedule, queue_admission_inversion_model);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must reproduce the deadlock: {replay}"
        );
    }

    fn unsynced_stats_model() {
        let (mgr, tiles) = boot_checked(MutantConfig {
            unsynced_stats: true,
            ..MutantConfig::default()
        });
        let (run, _path) = mgr
            .execute_blocking(
                tiles[0],
                AcceleratorKind::Mac,
                AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![2.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(2.0));
        let _count = mgr.unsynced_runs();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_unsynced_stats_mutant() {
        let report = mutant_checker().explore(unsynced_stats_model);
        let failure = report.failure.expect("the unsynced-stats mutant must race");
        assert!(
            matches!(failure.kind, FailureKind::Race { .. }),
            "expected race, got: {failure}"
        );
        let replay = mutant_checker().replay(&failure.schedule, unsynced_stats_model);
        assert_eq!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(&failure.kind),
            "replay must reproduce the race: {replay}"
        );
    }

    /// Boots a supervised model-checked manager inside an exploration
    /// body: one tile, one worker, plus the supervisor thread.
    fn boot_checked_supervised(
        mutants: MutantConfig,
    ) -> (ThreadedManager<CheckSync>, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("model", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
            .unwrap();
        let mgr = ThreadedManager::<CheckSync>::spawn_with_mutants(
            soc,
            registry,
            supervised_policy(),
            1,
            mutants,
        );
        (mgr, tiles)
    }

    fn supervised_hang_model() {
        let (mgr, tiles) = boot_checked_supervised(MutantConfig::default());
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        let app = mgr.clone();
        let tile = tiles[0];
        // The only worker wedges; under CheckSync the supervisor's
        // watchdog timeout fires exactly at quiescence — the wedged
        // state — so every schedule exercises the steal/redispatch path.
        let h = presp_check::sync::spawn_named("app", move || {
            app.reconfigure_blocking(tile, AcceleratorKind::Mac)
                .unwrap();
        });
        h.join().unwrap();
        // Shutdown joins the workers, so the post-commit bookkeeping is
        // quiescent and the orphan invariant must hold exactly.
        mgr.shutdown();
        assert_eq!(mgr.orphaned_tickets(), 0, "healed gate left orphans");
        let sup = mgr.supervisor_stats();
        assert_eq!(sup.hangs_injected, 1);
        assert_eq!(sup.redispatches, 1);
    }

    #[test]
    fn supervised_hang_recovery_explores_without_findings() {
        let report = Checker::new(Config {
            max_schedules: 500,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
        .explore(supervised_hang_model);
        assert!(report.ok(), "{report}");
    }

    fn supervisor_gate_inversion_model() {
        let (mgr, tiles) = boot_checked_supervised(MutantConfig {
            supervisor_gate_inversion: true,
            ..MutantConfig::default()
        });
        mgr.set_worker_fault_plan(Some(WorkerFaultPlan::scripted(&[(0, WorkerFault::Hang)])));
        let app = mgr.clone();
        let tile = tiles[0];
        // The hang forces a steal, so the supervisor's scan (supervisor →
        // gate) overlaps the mutant worker's commit path (gate →
        // supervisor): the classic two-lock cycle.
        let h = presp_check::sync::spawn_named("app", move || {
            let _ = app.reconfigure_blocking(tile, AcceleratorKind::Mac);
        });
        h.join().unwrap();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_supervisor_gate_inversion_mutant() {
        let report = mutant_checker().explore(supervisor_gate_inversion_model);
        let failure = report
            .failure
            .expect("the supervisor/gate inversion mutant must deadlock some schedule");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        let replay = mutant_checker().replay(&failure.schedule, supervisor_gate_inversion_model);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must reproduce the deadlock: {replay}"
        );
    }

    #[test]
    fn clean_protocol_explores_without_findings() {
        // Same protocol, mutants off: a quick bounded sweep here; the
        // 10k-schedule multi-worker sweep lives in the workspace-level
        // model_check suite.
        let report = Checker::new(Config {
            max_schedules: 500,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
        .explore(|| {
            let (mgr, tiles) = boot_checked(MutantConfig::default());
            let app = mgr.clone();
            let tile = tiles[0];
            let h = presp_check::sync::spawn_named("app", move || {
                app.reconfigure_blocking(tile, AcceleratorKind::Mac)
                    .unwrap();
            });
            h.join().unwrap();
            let stats = mgr.stats();
            assert!(stats.consistent(), "inconsistent stats: {stats:?}");
            mgr.shutdown();
        });
        assert!(report.ok(), "{report}");
    }
}
