//! The OS-threaded workqueue demonstrator.
//!
//! The paper's manager "uses the built-in kernel workqueue to manage
//! multiple reconfiguration requests": application threads (one per
//! reconfigurable tile) enqueue requests; the queue executes them as soon
//! as the PRC is ready; callers wait for completion while the device is
//! locked. This module reproduces that concurrency structure with real OS
//! threads — a crossbeam channel as the workqueue, a worker thread as the
//! kernel work item, and parking_lot primitives guarding the shared
//! manager — while the deterministic virtual-time manager underneath keeps
//! results reproducible.

use crate::error::Error;
use crate::manager::ReconfigManager;
use crate::registry::BitstreamRegistry;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A request travelling through the workqueue.
enum Request {
    Reconfigure {
        tile: TileCoord,
        kind: AcceleratorKind,
        done: Sender<Result<(), Error>>,
    },
    Run {
        tile: TileCoord,
        op: Box<AccelOp>,
        done: Sender<Result<AccelRun, Error>>,
    },
    Shutdown,
}

/// Shared state guarded like the kernel manager guards its device list.
struct Shared {
    manager: Mutex<ReconfigManager>,
    /// Signalled whenever a reconfiguration completes, waking threads that
    /// blocked on a locked tile.
    reconfig_done: Condvar,
}

/// A thread-safe handle to the DPR runtime: clone it into as many
/// application threads as there are reconfigurable tiles.
///
/// # Example
///
/// ```no_run
/// # use presp_runtime::threaded::ThreadedManager;
/// # use presp_runtime::registry::BitstreamRegistry;
/// # use presp_soc::{config::SocConfig, sim::Soc};
/// # use presp_accel::{AccelOp, AcceleratorKind};
/// # fn demo() -> Result<(), presp_runtime::Error> {
/// let config = SocConfig::grid_3x3_reconf("demo", 2)?;
/// let soc = Soc::new(&config)?;
/// let manager = ThreadedManager::spawn(soc, BitstreamRegistry::new());
/// let tile = config.reconfigurable_tiles()[0];
/// manager.reconfigure_blocking(tile, AcceleratorKind::Mac)?;
/// let run = manager.run_blocking(tile, AccelOp::Mac { a: vec![1.0], b: vec![2.0] })?;
/// manager.shutdown();
/// # Ok(()) }
/// ```
#[derive(Clone)]
pub struct ThreadedManager {
    queue: Sender<Request>,
    shared: Arc<Shared>,
    worker: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl ThreadedManager {
    /// Boots the workqueue worker over a SoC and registry.
    pub fn spawn(soc: Soc, registry: BitstreamRegistry) -> ThreadedManager {
        let shared = Arc::new(Shared {
            manager: Mutex::new(ReconfigManager::new(soc, registry)),
            reconfig_done: Condvar::new(),
        });
        let (tx, rx) = unbounded::<Request>();
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            // The workqueue: requests are "queued up and executed as soon
            // as the PRC is ready" — one at a time, the ICAP is unique.
            while let Ok(request) = rx.recv() {
                match request {
                    Request::Reconfigure { tile, kind, done } => {
                        let result = {
                            let mut mgr = worker_shared.manager.lock();
                            mgr.request_reconfiguration(tile, kind).map(|_| ())
                        };
                        worker_shared.reconfig_done.notify_all();
                        let _ = done.send(result);
                    }
                    Request::Run { tile, op, done } => {
                        let result = {
                            let mut mgr = worker_shared.manager.lock();
                            mgr.run(tile, &op)
                        };
                        let _ = done.send(result);
                    }
                    Request::Shutdown => break,
                }
            }
        });
        ThreadedManager { queue: tx, shared, worker: Arc::new(Mutex::new(Some(handle))) }
    }

    /// Enqueues a reconfiguration and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager
    /// errors.
    pub fn reconfigure_blocking(&self, tile: TileCoord, kind: AcceleratorKind) -> Result<(), Error> {
        let (done_tx, done_rx) = unbounded();
        self.queue
            .send(Request::Reconfigure { tile, kind, done: done_tx })
            .map_err(|_| Error::ManagerStopped)?;
        done_rx.recv().map_err(|_| Error::ManagerStopped)?
    }

    /// Enqueues an accelerator invocation and blocks for its result.
    ///
    /// If the tile is mid-reconfiguration (its driver is unloaded), the
    /// call waits for the next reconfiguration completion and retries —
    /// the paper's "other threads trying to access it must wait until the
    /// reconfiguration is complete and the new driver is loaded".
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager and
    /// SoC errors.
    pub fn run_blocking(&self, tile: TileCoord, op: AccelOp) -> Result<AccelRun, Error> {
        loop {
            let (done_tx, done_rx) = unbounded();
            self.queue
                .send(Request::Run { tile, op: Box::new(op.clone()), done: done_tx })
                .map_err(|_| Error::ManagerStopped)?;
            match done_rx.recv().map_err(|_| Error::ManagerStopped)? {
                Err(Error::NoDriver { .. }) => {
                    // Wait for a reconfiguration to finish, then retry.
                    let mut guard = self.shared.manager.lock();
                    self.shared.reconfig_done.wait_for(&mut guard, std::time::Duration::from_millis(50));
                }
                other => return other,
            }
        }
    }

    /// Manager statistics snapshot.
    pub fn stats(&self) -> crate::manager::ManagerStats {
        self.shared.manager.lock().stats()
    }

    /// Stops the worker and joins it. Idempotent.
    pub fn shutdown(&self) {
        let _ = self.queue.send(Request::Shutdown);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_accel::AccelValue;
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, col, 0), vec![col; words]).unwrap();
        b.build(true)
    }

    fn boot(n: usize) -> (ThreadedManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("threaded", n).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry.register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32));
            registry.register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32));
        }
        (ThreadedManager::spawn(soc, registry), tiles)
    }

    #[test]
    fn blocking_reconfigure_and_run() {
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac).unwrap();
        let run = mgr.run_blocking(tiles[0], AccelOp::Mac { a: vec![2.0], b: vec![3.0] }).unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        mgr.shutdown();
    }

    #[test]
    fn one_thread_per_tile_runs_concurrently() {
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = tiles
            .iter()
            .enumerate()
            .map(|(i, &tile)| {
                let mgr = mgr.clone();
                std::thread::spawn(move || {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac).unwrap();
                    let mut total = 0.0f32;
                    for round in 0..5 {
                        let v = (i + round) as f32;
                        let run = mgr
                            .run_blocking(tile, AccelOp::Mac { a: vec![v; 16], b: vec![1.0; 16] })
                            .unwrap();
                        match run.value {
                            AccelValue::Scalar(s) => total += s,
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    total
                })
            })
            .collect();
        let results: Vec<f32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Thread i computes Σ_round 16·(i+round) = 16·(5i + 10).
        assert_eq!(results[0], 160.0);
        assert_eq!(results[1], 240.0);
        assert_eq!(mgr.stats().reconfigurations, 2);
        assert_eq!(mgr.stats().runs, 10);
        mgr.shutdown();
    }

    #[test]
    fn swapping_under_contention_stays_consistent() {
        let (mgr, tiles) = boot(1);
        let tile = tiles[0];
        let swapper = {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Sort).unwrap();
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac).unwrap();
                }
            })
        };
        // This thread hammers the tile with MAC work; whenever the swapper
        // has SORT loaded the call returns NoDriver internally and retries.
        let mut successes = 0;
        for _ in 0..20 {
            match mgr.run_blocking(tile, AccelOp::Mac { a: vec![1.0], b: vec![1.0] }) {
                Ok(run) => {
                    assert_eq!(run.value, AccelValue::Scalar(1.0));
                    successes += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        swapper.join().unwrap();
        assert_eq!(successes, 20);
        mgr.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_requests() {
        let (mgr, tiles) = boot(1);
        mgr.shutdown();
        mgr.shutdown();
        let err = mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac);
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }
}
