//! The OS-threaded workqueue demonstrator.
//!
//! The paper's manager "uses the built-in kernel workqueue to manage
//! multiple reconfiguration requests": application threads (one per
//! reconfigurable tile) enqueue requests; the queue executes them as soon
//! as the PRC is ready; callers wait for completion while the device is
//! locked. This module reproduces that concurrency structure with real OS
//! threads — an mpsc channel as the workqueue, a worker thread as the
//! kernel work item, and a mutex/condvar pair guarding the shared
//! manager — while the deterministic virtual-time manager underneath keeps
//! results reproducible.
//!
//! The whole protocol is generic over [`SyncFacade`]: production code
//! instantiates [`ThreadedManager`] (= `ThreadedManager<StdSync>`, plain
//! `std::sync` primitives), while the model-check suites instantiate
//! `ThreadedManager<CheckSync>` and run the *same* request/reply/notify
//! protocol under `presp-check`'s schedule explorer. Lock labels
//! (`"manager"`, `"worker"`) feed its lock-order graph.

use crate::error::Error;
use crate::manager::{ExecPath, ReconfigManager, RecoveryPolicy};
use crate::registry::BitstreamRegistry;
use crate::sync::{Arc, StdSync, SyncFacade, TryRecv};
use presp_accel::catalog::AcceleratorKind;
use presp_accel::AccelOp;
use presp_soc::config::TileCoord;
use presp_soc::sim::{AccelRun, Soc};
use std::time::Duration;

/// A request travelling through the workqueue.
enum Request<S: SyncFacade> {
    Reconfigure {
        tile: TileCoord,
        kind: AcceleratorKind,
        done: S::Sender<Result<(), Error>>,
    },
    Run {
        tile: TileCoord,
        op: Box<AccelOp>,
        done: S::Sender<Result<AccelRun, Error>>,
    },
    Execute {
        tile: TileCoord,
        kind: AcceleratorKind,
        op: Box<AccelOp>,
        done: S::Sender<Result<(AccelRun, ExecPath), Error>>,
    },
    Shutdown,
}

/// Deliberate concurrency-bug switches for checker validation: the
/// mutants below are *committed known-bad protocol variants* that the
/// model-check suite must detect (and replay deterministically). They are
/// compiled only into this crate's own test build and are all off by
/// default.
#[cfg(test)]
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MutantConfig {
    /// The worker acquires `manager` → `audit` while a caller-side probe
    /// acquires `audit` → `manager`: a classic lock-order inversion.
    pub lock_inversion: bool,
    /// The worker bumps a run counter *after* replying, outside any lock,
    /// while callers read it after `recv` — no happens-before edge.
    pub unsynced_stats: bool,
}

/// Shared state guarded like the kernel manager guards its device list.
///
/// `pub(crate)` so the scrubber daemon ([`crate::scrubber`]) can attach to
/// the *same* device lock — both workers serialize on `manager`, exactly
/// like two kernel work items contending for one PRC.
pub(crate) struct Shared<S: SyncFacade> {
    pub(crate) manager: S::Mutex<ReconfigManager>,
    /// Signalled whenever a reconfiguration completes, waking threads that
    /// blocked on a locked tile.
    pub(crate) reconfig_done: S::Condvar,
    #[cfg(test)]
    mutants: MutantConfig,
    /// A secondary lock only the mutants touch (stands in for any
    /// ancillary structure a real driver would guard separately).
    #[cfg(test)]
    audit: S::Mutex<Vec<&'static str>>,
    /// Storage the `unsynced_stats` mutant shares without a lock; under
    /// the checker every access is happens-before verified.
    #[cfg(test)]
    racy_runs: presp_check::RaceCell<u64>,
}

/// A thread-safe handle to the DPR runtime: clone it into as many
/// application threads as there are reconfigurable tiles.
///
/// # Example
///
/// ```no_run
/// # use presp_runtime::threaded::ThreadedManager;
/// # use presp_runtime::registry::BitstreamRegistry;
/// # use presp_soc::{config::SocConfig, sim::Soc};
/// # use presp_accel::{AccelOp, AcceleratorKind};
/// # fn demo() -> Result<(), presp_runtime::Error> {
/// let config = SocConfig::grid_3x3_reconf("demo", 2)?;
/// let soc = Soc::new(&config)?;
/// let manager = ThreadedManager::spawn(soc, BitstreamRegistry::new());
/// let tile = config.reconfigurable_tiles()[0];
/// manager.reconfigure_blocking(tile, AcceleratorKind::Mac)?;
/// let run = manager.run_blocking(tile, AccelOp::Mac { a: vec![1.0], b: vec![2.0] })?;
/// manager.shutdown();
/// # Ok(()) }
/// ```
pub struct ThreadedManager<S: SyncFacade = StdSync> {
    queue: S::Sender<Request<S>>,
    pub(crate) shared: Arc<Shared<S>>,
    worker: Arc<S::Mutex<Option<S::JoinHandle<()>>>>,
}

impl<S: SyncFacade> Clone for ThreadedManager<S> {
    fn clone(&self) -> ThreadedManager<S> {
        ThreadedManager {
            queue: S::clone_sender(&self.queue),
            shared: Arc::clone(&self.shared),
            worker: Arc::clone(&self.worker),
        }
    }
}

impl ThreadedManager<StdSync> {
    /// Boots the workqueue worker over a SoC and registry, with the
    /// default [`RecoveryPolicy`].
    pub fn spawn(soc: Soc, registry: BitstreamRegistry) -> ThreadedManager {
        ThreadedManager::spawn_with_policy(soc, registry, RecoveryPolicy::default())
    }
}

impl<S: SyncFacade> ThreadedManager<S> {
    /// Boots the workqueue worker with an explicit recovery policy, under
    /// any sync facade.
    pub fn spawn_with_policy(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
    ) -> ThreadedManager<S> {
        Self::boot(
            soc,
            registry,
            policy,
            #[cfg(test)]
            MutantConfig::default(),
        )
    }

    /// Boots with explicit mutants enabled — checker-validation only.
    #[cfg(test)]
    pub(crate) fn spawn_with_mutants(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        mutants: MutantConfig,
    ) -> ThreadedManager<S> {
        Self::boot(soc, registry, policy, mutants)
    }

    fn boot(
        soc: Soc,
        registry: BitstreamRegistry,
        policy: RecoveryPolicy,
        #[cfg(test)] mutants: MutantConfig,
    ) -> ThreadedManager<S> {
        let shared = Arc::new(Shared::<S> {
            manager: S::mutex_labeled(
                "manager",
                ReconfigManager::with_policy(soc, registry, policy),
            ),
            reconfig_done: S::condvar(),
            #[cfg(test)]
            mutants,
            #[cfg(test)]
            audit: S::mutex_labeled("audit", Vec::new()),
            #[cfg(test)]
            racy_runs: presp_check::RaceCell::new("racy_runs", 0),
        });
        let (tx, rx) = S::channel::<Request<S>>();
        let worker_shared = Arc::clone(&shared);
        let handle = S::spawn("presp-worker", move || {
            // The workqueue: requests are "queued up and executed as soon
            // as the PRC is ready" — one at a time, the ICAP is unique.
            while let Some(request) = S::recv(&rx) {
                match request {
                    Request::Reconfigure { tile, kind, done } => {
                        let result = {
                            let mut mgr = S::lock(&worker_shared.manager);
                            #[cfg(test)]
                            if worker_shared.mutants.lock_inversion {
                                // MUTANT: nested acquisition opposite to
                                // `audit_probe` — manager → audit.
                                S::lock(&worker_shared.audit).push("reconfigure");
                            }
                            mgr.request_reconfiguration(tile, kind).map(|_| ())
                        };
                        S::notify_all(&worker_shared.reconfig_done);
                        let _ = S::send(&done, result);
                    }
                    Request::Run { tile, op, done } => {
                        let result = {
                            let mut mgr = S::lock(&worker_shared.manager);
                            mgr.run(tile, &op)
                        };
                        let _ = S::send(&done, result);
                    }
                    Request::Execute {
                        tile,
                        kind,
                        op,
                        done,
                    } => {
                        let result = {
                            let mut mgr = S::lock(&worker_shared.manager);
                            mgr.run_with_fallback(tile, kind, &op)
                        };
                        S::notify_all(&worker_shared.reconfig_done);
                        let _ = S::send(&done, result);
                        #[cfg(test)]
                        if worker_shared.mutants.unsynced_stats {
                            // MUTANT: bookkeeping after the reply, outside
                            // any lock — races with `unsynced_runs()`.
                            let n = worker_shared.racy_runs.read();
                            worker_shared.racy_runs.write(n + 1);
                        }
                    }
                    Request::Shutdown => break,
                }
            }
            // Drain the queue so no caller is left waiting on a dropped
            // `done` sender: every pending request is answered with
            // `ManagerStopped` before the worker exits.
            loop {
                match S::try_recv(&rx) {
                    TryRecv::Value(Request::Reconfigure { done, .. }) => {
                        let _ = S::send(&done, Err(Error::ManagerStopped));
                    }
                    TryRecv::Value(Request::Run { done, .. }) => {
                        let _ = S::send(&done, Err(Error::ManagerStopped));
                    }
                    TryRecv::Value(Request::Execute { done, .. }) => {
                        let _ = S::send(&done, Err(Error::ManagerStopped));
                    }
                    TryRecv::Value(Request::Shutdown) => {}
                    TryRecv::Empty | TryRecv::Disconnected => break,
                }
            }
            // Unblock any thread parked in `run_blocking`'s wait loop.
            S::notify_all(&worker_shared.reconfig_done);
        });
        ThreadedManager {
            queue: tx,
            shared,
            worker: Arc::new(S::mutex_labeled("worker", Some(handle))),
        }
    }

    /// Enqueues a reconfiguration and blocks until it completes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager
    /// errors.
    pub fn reconfigure_blocking(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
    ) -> Result<(), Error> {
        let (done_tx, done_rx) = S::channel();
        S::send(
            &self.queue,
            Request::Reconfigure {
                tile,
                kind,
                done: done_tx,
            },
        )
        .map_err(|_| Error::ManagerStopped)?;
        S::recv(&done_rx).ok_or(Error::ManagerStopped)?
    }

    /// Enqueues an accelerator invocation and blocks for its result.
    ///
    /// If the tile is mid-reconfiguration (its driver is unloaded), the
    /// call waits for the next reconfiguration completion and retries —
    /// the paper's "other threads trying to access it must wait until the
    /// reconfiguration is complete and the new driver is loaded".
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus manager and
    /// SoC errors.
    pub fn run_blocking(&self, tile: TileCoord, op: AccelOp) -> Result<AccelRun, Error> {
        loop {
            let (done_tx, done_rx) = S::channel();
            S::send(
                &self.queue,
                Request::Run {
                    tile,
                    op: Box::new(op.clone()),
                    done: done_tx,
                },
            )
            .map_err(|_| Error::ManagerStopped)?;
            match S::recv(&done_rx).ok_or(Error::ManagerStopped)? {
                Err(Error::NoDriver { .. }) => {
                    // Wait for a reconfiguration to finish, then retry —
                    // unless the tile was quarantined, in which case no
                    // reconfiguration will ever complete here.
                    let guard = S::lock(&self.shared.manager);
                    if guard.is_quarantined(tile) {
                        return Err(Error::TileQuarantined { tile });
                    }
                    let _unused = S::wait_timeout(
                        &self.shared.reconfig_done,
                        guard,
                        Duration::from_millis(50),
                    );
                }
                other => return other,
            }
        }
    }

    /// Enqueues an ensure-loaded-then-run request and blocks for its
    /// result: the worker reconfigures if needed (with the manager's
    /// retry/backoff recovery) and degrades to the CPU software path when
    /// the accelerator path is unavailable, so the call completes even on
    /// a faulty tile.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ManagerStopped`] after shutdown, plus
    /// non-degradable manager errors.
    pub fn execute_blocking(
        &self,
        tile: TileCoord,
        kind: AcceleratorKind,
        op: AccelOp,
    ) -> Result<(AccelRun, ExecPath), Error> {
        let (done_tx, done_rx) = S::channel();
        S::send(
            &self.queue,
            Request::Execute {
                tile,
                kind,
                op: Box::new(op),
                done: done_tx,
            },
        )
        .map_err(|_| Error::ManagerStopped)?;
        S::recv(&done_rx).ok_or(Error::ManagerStopped)?
    }

    /// Manager statistics snapshot.
    ///
    /// Read-only post-mortem path: recovers from a poisoned manager lock
    /// (a panicking worker must not take crash forensics down with it).
    pub fn stats(&self) -> crate::manager::ManagerStats {
        S::lock_recover(&self.shared.manager).stats()
    }

    /// Latest completion cycle on the shared virtual clock — the
    /// application makespan across everything the worker dispatched.
    /// OS-thread interleaving varies between runs; this virtual-time
    /// reading is still exact for the operations performed.
    ///
    /// Like [`ThreadedManager::stats`], survives a poisoned manager lock.
    pub fn makespan(&self) -> u64 {
        S::lock_recover(&self.shared.manager).makespan()
    }

    /// Attaches a trace sink to the underlying SoC: worker-dispatched
    /// operations emit structured records through it.
    pub fn attach_tracer(&self, sink: presp_events::SharedSink) {
        S::lock(&self.shared.manager).soc_mut().attach_tracer(sink);
    }

    /// Stops the worker and joins it. Idempotent, and — like the other
    /// post-mortem paths — tolerant of poisoned locks.
    pub fn shutdown(&self) {
        let _ = S::send(&self.queue, Request::Shutdown);
        if let Some(handle) = S::lock_recover(&self.worker).take() {
            let _ = S::join(handle);
        }
    }

    /// Caller-side probe of the mutant-only audit log: acquires `audit` →
    /// `manager`, the reverse of the `lock_inversion` worker path.
    #[cfg(test)]
    pub(crate) fn audit_probe(&self) -> (usize, u64) {
        let audit = S::lock(&self.shared.audit);
        let mgr = S::lock(&self.shared.manager);
        (audit.len(), mgr.stats().reconfigurations)
    }

    /// Caller-side unlocked read the `unsynced_stats` mutant races with.
    #[cfg(test)]
    pub(crate) fn unsynced_runs(&self) -> u64 {
        self.shared.racy_runs.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presp_accel::AccelValue;
    use presp_check::{CheckSync, Checker, Config, FailureKind};
    use presp_fpga::bitstream::{Bitstream, BitstreamBuilder, BitstreamKind};
    use presp_fpga::frame::FrameAddress;
    use presp_soc::config::SocConfig;

    fn bitstream(soc: &Soc, col: u32) -> Bitstream {
        let device = soc.part().device();
        let mut b = BitstreamBuilder::new(&device, BitstreamKind::Partial);
        let words = device.part().family().frame_words();
        b.add_frame(FrameAddress::new(0, col, 0), vec![col; words])
            .unwrap();
        b.build(true)
    }

    fn boot(n: usize) -> (ThreadedManager, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("threaded", n).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        for (i, &tile) in tiles.iter().enumerate() {
            registry
                .register(tile, AcceleratorKind::Mac, bitstream(&soc, 2 + i as u32))
                .unwrap();
            registry
                .register(tile, AcceleratorKind::Sort, bitstream(&soc, 30 + i as u32))
                .unwrap();
        }
        (ThreadedManager::spawn(soc, registry), tiles)
    }

    /// Boots a model-checked manager inside an exploration body.
    fn boot_checked(mutants: MutantConfig) -> (ThreadedManager<CheckSync>, Vec<TileCoord>) {
        let cfg = SocConfig::grid_3x3_reconf("model", 1).unwrap();
        let soc = Soc::new(&cfg).unwrap();
        let tiles = cfg.reconfigurable_tiles();
        let mut registry = BitstreamRegistry::new();
        registry
            .register(tiles[0], AcceleratorKind::Mac, bitstream(&soc, 2))
            .unwrap();
        let mgr = ThreadedManager::<CheckSync>::spawn_with_mutants(
            soc,
            registry,
            RecoveryPolicy::default(),
            mutants,
        );
        (mgr, tiles)
    }

    fn mutant_checker() -> Checker {
        Checker::new(Config {
            max_schedules: 5_000,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
    }

    #[test]
    fn blocking_reconfigure_and_run() {
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let run = mgr
            .run_blocking(
                tiles[0],
                AccelOp::Mac {
                    a: vec![2.0],
                    b: vec![3.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(6.0));
        mgr.shutdown();
    }

    #[test]
    fn one_thread_per_tile_runs_concurrently() {
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = tiles
            .iter()
            .enumerate()
            .map(|(i, &tile)| {
                let mgr = mgr.clone();
                std::thread::spawn(move || {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                    let mut total = 0.0f32;
                    for round in 0..5 {
                        let v = (i + round) as f32;
                        let run = mgr
                            .run_blocking(
                                tile,
                                AccelOp::Mac {
                                    a: vec![v; 16],
                                    b: vec![1.0; 16],
                                },
                            )
                            .unwrap();
                        match run.value {
                            AccelValue::Scalar(s) => total += s,
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    total
                })
            })
            .collect();
        let results: Vec<f32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Thread i computes Σ_round 16·(i+round) = 16·(5i + 10).
        assert_eq!(results[0], 160.0);
        assert_eq!(results[1], 240.0);
        assert_eq!(mgr.stats().reconfigurations, 2);
        assert_eq!(mgr.stats().runs, 10);
        mgr.shutdown();
    }

    #[test]
    fn swapping_under_contention_stays_consistent() {
        let (mgr, tiles) = boot(1);
        let tile = tiles[0];
        let swapper = {
            let mgr = mgr.clone();
            std::thread::spawn(move || {
                for _ in 0..4 {
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Sort)
                        .unwrap();
                    mgr.reconfigure_blocking(tile, AcceleratorKind::Mac)
                        .unwrap();
                }
            })
        };
        // This thread hammers the tile with MAC work; whenever the swapper
        // has SORT loaded the call returns NoDriver internally and retries.
        let mut successes = 0;
        for _ in 0..20 {
            match mgr.run_blocking(
                tile,
                AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![1.0],
                },
            ) {
                Ok(run) => {
                    assert_eq!(run.value, AccelValue::Scalar(1.0));
                    successes += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        swapper.join().unwrap();
        assert_eq!(successes, 20);
        mgr.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_requests() {
        let (mgr, tiles) = boot(1);
        mgr.shutdown();
        mgr.shutdown();
        let err = mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac);
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }

    #[test]
    fn shutdown_under_load_answers_every_caller() {
        // Shut down while four threads are mid-burst: every call must get
        // an answer — a result or ManagerStopped — and every thread must
        // join. A dropped `done` sender or a hung worker fails this test.
        let (mgr, tiles) = boot(2);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mgr = mgr.clone();
                let tile = tiles[i % 2];
                std::thread::spawn(move || {
                    let mut answered = 0;
                    for j in 0..50 {
                        let (kind, op) = if (i + j) % 2 == 0 {
                            (
                                AcceleratorKind::Mac,
                                AccelOp::Mac {
                                    a: vec![1.0],
                                    b: vec![2.0],
                                },
                            )
                        } else {
                            (
                                AcceleratorKind::Sort,
                                AccelOp::Sort {
                                    data: vec![2.0, 1.0],
                                },
                            )
                        };
                        match mgr.execute_blocking(tile, kind, op) {
                            Ok(_) | Err(Error::ManagerStopped) => answered += 1,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                    answered
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(2));
        mgr.shutdown();
        for h in handles {
            assert_eq!(h.join().expect("worker thread panicked"), 50);
        }
        // The worker is joined; a fresh request is refused, not lost.
        let err = mgr.run_blocking(
            tiles[0],
            AccelOp::Mac {
                a: vec![1.0],
                b: vec![1.0],
            },
        );
        assert!(matches!(err, Err(Error::ManagerStopped)));
    }

    #[test]
    fn stats_survive_a_poisoned_manager_lock() {
        // Regression: post-mortem paths used `.expect("manager lock")` and
        // panicked if any thread had crashed inside a critical section,
        // losing exactly the stats needed to debug the crash.
        let (mgr, tiles) = boot(1);
        mgr.reconfigure_blocking(tiles[0], AcceleratorKind::Mac)
            .unwrap();
        let poisoner = mgr.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shared.manager.lock().unwrap();
            panic!("crash while holding the manager lock");
        })
        .join();
        // The lock is now poisoned; forensics must still work.
        let stats = mgr.stats();
        assert_eq!(stats.reconfigurations, 1);
        assert!(stats.consistent());
        assert!(mgr.makespan() > 0);
        mgr.shutdown();
        mgr.shutdown(); // still idempotent post-poison
    }

    // ---- model-checked protocol (CheckSync) ---------------------------

    fn lock_inversion_model() {
        let (mgr, tiles) = boot_checked(MutantConfig {
            lock_inversion: true,
            ..MutantConfig::default()
        });
        let app = mgr.clone();
        let tile = tiles[0];
        let h = presp_check::sync::spawn_named("app", move || {
            app.reconfigure_blocking(tile, AcceleratorKind::Mac)
                .unwrap();
        });
        let _probe = mgr.audit_probe();
        h.join().unwrap();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_lock_order_inversion_mutant() {
        let report = mutant_checker().explore(lock_inversion_model);
        let failure = report
            .failure
            .expect("the inversion mutant must deadlock some schedule");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "expected deadlock, got: {failure}"
        );
        // The printed schedule replays the identical deadlock.
        let replay = mutant_checker().replay(&failure.schedule, lock_inversion_model);
        assert!(
            matches!(
                replay.failure.as_ref().map(|f| &f.kind),
                Some(FailureKind::Deadlock { .. })
            ),
            "replay must reproduce the deadlock: {replay}"
        );
    }

    fn unsynced_stats_model() {
        let (mgr, tiles) = boot_checked(MutantConfig {
            unsynced_stats: true,
            ..MutantConfig::default()
        });
        let (run, _path) = mgr
            .execute_blocking(
                tiles[0],
                AcceleratorKind::Mac,
                AccelOp::Mac {
                    a: vec![1.0],
                    b: vec![2.0],
                },
            )
            .unwrap();
        assert_eq!(run.value, AccelValue::Scalar(2.0));
        let _count = mgr.unsynced_runs();
        mgr.shutdown();
    }

    #[test]
    fn checker_catches_unsynced_stats_mutant() {
        let report = mutant_checker().explore(unsynced_stats_model);
        let failure = report.failure.expect("the unsynced-stats mutant must race");
        assert!(
            matches!(failure.kind, FailureKind::Race { .. }),
            "expected race, got: {failure}"
        );
        let replay = mutant_checker().replay(&failure.schedule, unsynced_stats_model);
        assert_eq!(
            replay.failure.as_ref().map(|f| &f.kind),
            Some(&failure.kind),
            "replay must reproduce the race: {replay}"
        );
    }

    #[test]
    fn clean_protocol_explores_without_findings() {
        // Same protocol, mutants off: a quick bounded sweep here; the
        // 10k-schedule sweep lives in the workspace-level model_check
        // suite.
        let report = Checker::new(Config {
            max_schedules: 500,
            preemption_bound: Some(2),
            max_steps: 20_000,
        })
        .explore(|| {
            let (mgr, tiles) = boot_checked(MutantConfig::default());
            let app = mgr.clone();
            let tile = tiles[0];
            let h = presp_check::sync::spawn_named("app", move || {
                app.reconfigure_blocking(tile, AcceleratorKind::Mac)
                    .unwrap();
            });
            h.join().unwrap();
            let stats = mgr.stats();
            assert!(stats.consistent(), "inconsistent stats: {stats:?}");
            mgr.shutdown();
        });
        assert!(report.ok(), "{report}");
    }
}
